//! Native int8 inference: serve quantized MLPs on their packed codes.
//!
//! [`crate::quantize_network_tensors`] produces per-tensor affine codes,
//! but until this module the only way to *run* the quantized model was
//! to dequantize back to f32 and pay full-precision compute and memory
//! traffic. [`QuantizedMlp`] closes that gap: weights stay as packed
//! [`QuantizedTensor`] codes, each forward dynamically quantizes the
//! activation batch to 8 bits, and the layer product runs on
//! [`dl_tensor::par::matmul_q8`] — integer accumulation over the codes
//! with one affine rescale per output. The compute-on-compressed idea
//! from SystemML's compressed linear algebra, applied to the serving
//! path.
//!
//! The bias vector is dequantized **once at construction** — a
//! `[fan_out]` vector, negligible next to the `[fan_in, fan_out]` weight
//! matrix that this module keeps packed through the hot path.
//!
//! Inference is deterministic: the int8 GEMM is exact integer
//! arithmetic (bitwise identical at every `DL_THREADS` count) and the
//! surrounding elementwise ops are order-free, so predictions are
//! independent of both the thread knob and the `DL_KERNEL` knob.

use crate::quant::QuantizedTensor;
use dl_nn::layers::{Dense, Layer, ReLU};
use dl_nn::Network;
use dl_tensor::{acct, par, Tensor};

/// One dense layer held in packed int8 form.
#[derive(Debug, Clone)]
pub struct QuantizedDense {
    /// Packed affine codes of the `[in, out]` weight matrix.
    pub weight: QuantizedTensor,
    /// Bias vector `[out]`, dequantized once at construction.
    pub bias: Tensor,
    /// Whether a ReLU follows this layer in the source network.
    pub relu: bool,
}

impl QuantizedDense {
    /// Applies the layer to a `[batch, in]` activation matrix: dynamic
    /// 8-bit activation quantization, native int8 GEMM on the packed
    /// weight codes, bias add, then ReLU when the source network had
    /// one (`max(0, x)`, the exact [`dl_nn::layers::ReLU`] formula).
    ///
    /// # Panics
    /// Panics when `x` is not `[batch, in]` for this layer's `in`.
    #[must_use]
    pub fn apply(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 2, "quantized dense input must be a matrix");
        let (m, k) = (x.dims()[0], x.dims()[1]);
        let wd = self.weight.dims();
        assert_eq!(
            k, wd[0],
            "quantized dense input width {k} does not match weight {wd:?}"
        );
        let n = wd[1];
        let xq = quantize_activations(x);
        let data = par::matmul_q8(
            xq.codes(),
            xq.scale(),
            xq.zero_point(),
            self.weight.codes(),
            self.weight.scale(),
            self.weight.zero_point(),
            m,
            k,
            n,
        );
        let y = Tensor::from_vec(data, [m, n]).expect("q8 gemm output length matches");
        let y = &y + &self.bias;
        if self.relu {
            y.map(|v| v.max(0.0))
        } else {
            y
        }
    }
}

/// Dynamically quantizes one activation batch to 8-bit affine codes,
/// charging the rule documented in [`dl_tensor::acct`]: `3·n` flops,
/// `8·n` bytes read (range scan + encode pass), `n` bytes written.
fn quantize_activations(x: &Tensor) -> QuantizedTensor {
    let q = QuantizedTensor::quantize(x, 8);
    let n = x.len() as u64;
    acct::charge(3 * n, 8 * n, n);
    q
}

/// A feed-forward Dense/ReLU network executing natively on packed int8
/// weight codes.
#[derive(Debug, Clone)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedDense>,
    input_dim: usize,
}

impl QuantizedMlp {
    /// Builds a native int8 model from a Dense/ReLU network and the
    /// quantized tensors [`crate::quantize_network_tensors`] produced
    /// for it (in `params_and_grads` order: weight, bias per Dense).
    /// The network supplies only the architecture; all weight math runs
    /// on the packed codes.
    ///
    /// # Panics
    /// Panics when the network contains layers other than Dense/ReLU,
    /// when a ReLU precedes the first Dense, or when the tensor list
    /// does not match the network's parameter list.
    #[must_use]
    pub fn from_network_tensors(net: &Network, quantized: &[QuantizedTensor]) -> Self {
        let mut layers: Vec<QuantizedDense> = Vec::new();
        let mut qi = 0usize;
        for layer in net.layers() {
            match layer {
                Layer::Dense(d) => {
                    assert!(
                        qi + 2 <= quantized.len(),
                        "quantized tensor list is shorter than the network's parameters"
                    );
                    let weight = quantized[qi].clone();
                    let bias_q = &quantized[qi + 1];
                    qi += 2;
                    assert_eq!(
                        weight.dims(),
                        d.weight.dims(),
                        "quantized weight dims do not match the network"
                    );
                    layers.push(QuantizedDense {
                        weight,
                        bias: bias_q.dequantize(),
                        relu: false,
                    });
                }
                Layer::ReLU(_) => {
                    let last = layers
                        .last_mut()
                        .expect("ReLU must follow a Dense layer in a quantized MLP");
                    last.relu = true;
                }
                other => panic!(
                    "native int8 serving supports Dense/ReLU MLPs; got a {} layer",
                    other.name()
                ),
            }
        }
        assert_eq!(
            qi,
            quantized.len(),
            "quantized tensor list is longer than the network's parameters"
        );
        QuantizedMlp {
            layers,
            input_dim: net.input_dim,
        }
    }

    /// Logits for a `[batch, input_dim]` matrix, computed natively on
    /// the packed codes layer by layer.
    ///
    /// # Panics
    /// Panics when `x` is not `[batch, input_dim]`.
    #[must_use]
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 2, "quantized forward input must be a matrix");
        assert_eq!(
            x.dims()[1],
            self.input_dim,
            "quantized forward input width does not match the model"
        );
        let mut cur = x.clone();
        for layer in &self.layers {
            cur = layer.apply(&cur);
        }
        cur
    }

    /// Class predictions (row-wise argmax of the native int8 logits).
    #[must_use]
    pub fn predict(&self, x: &Tensor) -> Vec<usize> {
        self.forward(x).argmax_rows()
    }

    /// Total stored parameter count (packed weight codes + bias values).
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weight.codes().len() + l.bias.len())
            .sum()
    }

    /// Input width the model expects.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The dense layers in order (packed weights, dequantized biases).
    #[must_use]
    pub fn layers(&self) -> &[QuantizedDense] {
        &self.layers
    }

    /// Reconstructs the dequantized f32 shadow network — the exact
    /// Dense/ReLU network [`crate::quantize_network_tensors`] returns as
    /// its reconstruction. Used for structural profiling and for the
    /// artifact codec (which re-derives codes from the same tensors);
    /// never on the serving hot path.
    #[must_use]
    pub fn to_network(&self) -> Network {
        let mut net = Network::new(self.input_dim);
        for l in &self.layers {
            net = net.push(Layer::Dense(Dense::from_parts(
                l.weight.dequantize(),
                l.bias.clone(),
            )));
            if l.relu {
                net = net.push(Layer::ReLU(ReLU::new()));
            }
        }
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::quantize_network_tensors;
    use dl_tensor::init;
    use proptest::prelude::*;

    fn mlp(seed: u64) -> Network {
        let mut r = init::rng(seed);
        Network::new(6)
            .push(Layer::Dense(Dense::new(6, 10, &mut r)))
            .push(Layer::ReLU(ReLU::new()))
            .push(Layer::Dense(Dense::new(10, 4, &mut r)))
    }

    #[test]
    fn native_predictions_match_shadow_network_closely() {
        let net = mlp(3);
        let (shadow, _, qts) = quantize_network_tensors(&net, 8);
        let q = QuantizedMlp::from_network_tensors(&net, &qts);
        let mut r = init::rng(9);
        let x = init::uniform([32, 6], -1.5, 1.5, &mut r);
        let native = q.forward(&x);
        let mut shadow = shadow;
        let reference = shadow.forward(&x, false);
        assert_eq!(native.dims(), reference.dims());
        // The weights are the *same* quantized values; only the
        // activation re-quantization (8-bit, step/2 rounding) and the
        // kernel arithmetic differ.
        let mut agree = 0usize;
        let preds = q.predict(&x);
        let want = shadow.predict(&x);
        for (p, w) in preds.iter().zip(&want) {
            if p == w {
                agree += 1;
            }
        }
        assert!(
            agree * 10 >= preds.len() * 9,
            "native int8 predictions diverged from the shadow: {agree}/{}",
            preds.len()
        );
    }

    #[test]
    fn forward_is_deterministic_across_thread_and_kernel_knobs() {
        let net = mlp(5);
        let (_, _, qts) = quantize_network_tensors(&net, 8);
        let q = QuantizedMlp::from_network_tensors(&net, &qts);
        let mut r = init::rng(11);
        let x = init::uniform([17, 6], -2.0, 2.0, &mut r);
        let want = par::with_threads(1, || q.forward(&x));
        for t in [2usize, 4, 7] {
            let got = par::with_threads(t, || q.forward(&x));
            assert_eq!(got.data(), want.data(), "threads {t} changed int8 bits");
        }
        let got = par::with_kernel(par::Kernel::Unrolled, || q.forward(&x));
        assert_eq!(got.data(), want.data(), "DL_KERNEL changed int8 bits");
    }

    #[test]
    fn to_network_reconstructs_the_dequantized_shadow_bitwise() {
        let net = mlp(7);
        let (shadow, _, qts) = quantize_network_tensors(&net, 8);
        let q = QuantizedMlp::from_network_tensors(&net, &qts);
        let rebuilt = q.to_network();
        assert_eq!(rebuilt.input_dim, shadow.input_dim);
        assert_eq!(rebuilt.layers().len(), shadow.layers().len());
        let a: Vec<u32> = rebuilt.flat_params().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = shadow.flat_params().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "shadow reconstruction must be bitwise");
    }

    #[test]
    fn int8_forward_reads_fewer_bytes_than_the_shadow() {
        // Wide enough that weight traffic dominates activation traffic —
        // the regime the serve variants live in.
        let mut rr = init::rng(13);
        let net = Network::mlp(&[32, 64, 8], &mut rr);
        let (mut shadow, _, qts) = quantize_network_tensors(&net, 8);
        let q = QuantizedMlp::from_network_tensors(&net, &qts);
        let mut r = init::rng(15);
        let x = init::uniform([8, 32], -1.0, 1.0, &mut r);
        let (_, native) = acct::measure(|| q.forward(&x));
        let (_, f32_cost) = acct::measure(|| shadow.forward(&x, false));
        assert!(
            native.bytes_read < f32_cost.bytes_read,
            "packed codes must stream fewer bytes: {} vs {}",
            native.bytes_read,
            f32_cost.bytes_read
        );
    }

    #[test]
    #[should_panic(expected = "Dense/ReLU")]
    fn non_mlp_layers_are_rejected() {
        let mut r = init::rng(1);
        let net = Network::new(4)
            .push(Layer::Dense(Dense::new(4, 4, &mut r)))
            .push(Layer::Tanh(dl_nn::layers::Tanh::new()));
        let (_, _, qts) = quantize_network_tensors(&net, 8);
        let _ = QuantizedMlp::from_network_tensors(&net, &qts);
    }

    proptest! {
        /// Satellite (b): the native int8 GEMM (with dynamic activation
        /// quantization) stays within the step/2-derived affine bound of
        /// the dequantize-then-f32 reference, over arbitrary scales,
        /// zero points and shapes including empty dims.
        #[test]
        fn native_qlinear_within_affine_bound_of_f32_reference(
            m in 0usize..6,
            k in 0usize..7,
            n in 0usize..6,
            w_scale in 1e-4f32..2.0,
            w_zero in -8.0f32..8.0,
            seed in 0u64..500,
        ) {
            let mut r = init::rng(seed);
            let x = init::uniform([m, k], -3.0, 3.0, &mut r);
            let w_codes: Vec<u8> = (0..k * n)
                .map(|i| ((i as u64).wrapping_mul(31).wrapping_add(seed) % 256) as u8)
                .collect();
            let wq = QuantizedTensor::from_parts(
                w_codes, w_scale, w_zero, 8, vec![k, n],
            );
            let layer = QuantizedDense {
                weight: wq.clone(),
                bias: Tensor::zeros([n]),
                relu: false,
            };
            let native = layer.apply(&x);
            let reference = x.matmul(&wq.dequantize());
            // Activation quantization step for this batch: the only
            // lossy stage (weight codes are shared by both sides).
            let sx = QuantizedTensor::quantize(&x, 8).scale();
            let w_hat = wq.dequantize();
            for i in 0..m {
                for j in 0..n {
                    let got = native.data()[i * n + j];
                    let want = reference.data()[i * n + j];
                    // step/2 per activation element, propagated through
                    // the |w| column, plus float rounding slack.
                    let mut bound = 1e-4f64;
                    for kk in 0..k {
                        let wv = f64::from(w_hat.data()[kk * n + j].abs());
                        let xv = f64::from(x.data()[i * k + kk].abs());
                        bound += 0.5 * f64::from(sx) * 1.01 * wv + 1e-5 * xv * wv;
                    }
                    prop_assert!(
                        f64::from((got - want).abs()) <= bound,
                        "({i},{j}): native {got} vs reference {want}, bound {bound}"
                    );
                }
            }
        }
    }
}
