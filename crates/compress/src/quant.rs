//! Quantization: affine integer codes, k-means codebooks, binarization and
//! Huffman coding.
//!
//! The tutorial (§2.1) describes quantization as replacing the original data
//! with *quantization codes plus a codebook*, where the codebook can be
//! lossless (Huffman) or lossy (low-bit fixed point, k-means). This module
//! implements each of those points on the spectrum:
//!
//! * [`QuantizedTensor`] — per-tensor affine codes at 1-8 bits,
//! * [`CodebookQuantizer`] — 1-D k-means (Lloyd) centroids, the scalar form
//!   of vector quantization,
//! * [`binarize_network`] — sign(w) times a per-tensor scale, the Binary
//!   Neural Network extreme,
//! * [`HuffmanCode`] — entropy coding of the codes, measuring how far the
//!   lossless half can shrink things.

use dl_nn::Network;
use dl_tensor::Tensor;

/// Quantization schemes the network-level API supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantScheme {
    /// Affine (scale + zero point) integer quantization at `bits` (1-8).
    Affine {
        /// Bit width of each code.
        bits: u8,
    },
    /// K-means codebook with `k` centroids (codes are `ceil(log2 k)` bits).
    KMeans {
        /// Codebook size.
        k: usize,
    },
    /// Sign binarization with one scale per tensor (1-bit codes).
    Binary,
}

impl QuantScheme {
    /// Human-readable scheme name for experiment reports.
    pub fn name(&self) -> String {
        match self {
            QuantScheme::Affine { bits } => format!("affine{bits}"),
            QuantScheme::KMeans { k } => format!("kmeans{k}"),
            QuantScheme::Binary => "binary".to_string(),
        }
    }
}

/// A tensor stored as low-bit affine codes: `value = scale * (code - zero)`.
#[derive(Debug, Clone)]
pub struct QuantizedTensor {
    codes: Vec<u8>,
    scale: f32,
    zero: f32,
    bits: u8,
    dims: Vec<usize>,
}

impl QuantizedTensor {
    /// Quantizes `t` to `bits`-wide affine codes (1-8 bits).
    ///
    /// The range is calibrated to the tensor's min/max (the standard
    /// post-training calibration).
    ///
    /// # Panics
    /// Panics unless `1 <= bits <= 8`.
    pub fn quantize(t: &Tensor, bits: u8) -> Self {
        assert!((1..=8).contains(&bits), "bits must be 1-8, got {bits}");
        let levels = (1u32 << bits) - 1;
        let (lo, hi) = (t.min(), t.max());
        let range = (hi - lo).max(1e-12);
        let scale = range / levels as f32;
        let zero = lo;
        let codes = t
            .data()
            .iter()
            .map(|&v| (((v - zero) / scale).round() as u32).min(levels) as u8)
            .collect();
        QuantizedTensor {
            codes,
            scale,
            zero,
            bits,
            dims: t.dims().to_vec(),
        }
    }

    /// Reconstructs the (lossy) `f32` tensor.
    pub fn dequantize(&self) -> Tensor {
        let data = self
            .codes
            .iter()
            .map(|&c| self.zero + self.scale * f32::from(c))
            .collect();
        Tensor::from_vec(data, self.dims.as_slice()).expect("length preserved")
    }

    /// Reassembles a quantized tensor from its stored parts — the inverse
    /// of reading [`QuantizedTensor::codes`] plus the quant params, used
    /// by the artifact loader so int8 payloads never take a dequantize
    /// round-trip through `f32` on the way to disk and back.
    ///
    /// # Panics
    /// Panics unless `1 <= bits <= 8`, the code count matches the product
    /// of `dims`, and every code fits in `bits`.
    #[must_use]
    pub fn from_parts(codes: Vec<u8>, scale: f32, zero: f32, bits: u8, dims: Vec<usize>) -> Self {
        assert!((1..=8).contains(&bits), "bits must be 1-8, got {bits}");
        let len: usize = dims.iter().product();
        assert_eq!(codes.len(), len, "code count must match the dims product");
        let levels = ((1u32 << bits) - 1) as u8;
        assert!(
            codes.iter().all(|&c| c <= levels),
            "codes must fit in {bits} bits"
        );
        QuantizedTensor {
            codes,
            scale,
            zero,
            bits,
            dims,
        }
    }

    /// The raw codes (one byte each before bit packing).
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// The affine scale (`value = zero + scale * code`).
    #[must_use]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The affine zero point (`value = zero + scale * code`).
    #[must_use]
    pub fn zero_point(&self) -> f32 {
        self.zero
    }

    /// The logical tensor dimensions the codes reshape into.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Storage in bytes after bit packing: `ceil(len * bits / 8)` plus the
    /// 8-byte scale/zero header.
    pub fn storage_bytes(&self) -> usize {
        (self.codes.len() * self.bits as usize).div_ceil(8) + 8
    }

    /// Bit width of each code.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Worst-case absolute reconstruction error (half a quantization step).
    pub fn max_error_bound(&self) -> f32 {
        self.scale / 2.0
    }
}

/// 1-D k-means (Lloyd's algorithm) codebook over a tensor's values.
#[derive(Debug, Clone)]
pub struct CodebookQuantizer {
    /// Learned centroids, sorted ascending.
    pub centroids: Vec<f32>,
}

impl CodebookQuantizer {
    /// Fits `k` centroids to the tensor's value distribution.
    ///
    /// Initialization is k evenly spaced quantiles (deterministic); Lloyd
    /// iterations run until assignment stabilizes or 50 rounds.
    ///
    /// # Panics
    /// Panics when `k == 0` or the tensor is empty.
    pub fn fit(t: &Tensor, k: usize) -> Self {
        assert!(k > 0, "codebook needs at least one centroid");
        assert!(!t.is_empty(), "cannot fit a codebook to an empty tensor");
        let mut sorted: Vec<f32> = t.data().to_vec();
        sorted.sort_by(f32::total_cmp);
        let mut centroids: Vec<f32> = (0..k)
            .map(|i| sorted[(i * (sorted.len() - 1)) / k.max(1)])
            .collect();
        centroids.dedup();
        for _ in 0..50 {
            // assign + recompute (values are sorted, centroids stay sorted)
            let mut sums = vec![0.0f64; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for &v in &sorted {
                let c = nearest(&centroids, v);
                sums[c] += f64::from(v);
                counts[c] += 1;
            }
            let mut moved = false;
            for (i, c) in centroids.iter_mut().enumerate() {
                if counts[i] > 0 {
                    let new = (sums[i] / counts[i] as f64) as f32;
                    if (new - *c).abs() > 1e-7 {
                        moved = true;
                    }
                    *c = new;
                }
            }
            centroids.sort_by(f32::total_cmp);
            if !moved {
                break;
            }
        }
        CodebookQuantizer { centroids }
    }

    /// Encodes each value as its nearest centroid index.
    pub fn encode(&self, t: &Tensor) -> Vec<u8> {
        t.data()
            .iter()
            .map(|&v| nearest(&self.centroids, v) as u8)
            .collect()
    }

    /// Decodes centroid indices back to values.
    pub fn decode(&self, codes: &[u8], dims: &[usize]) -> Tensor {
        let data = codes
            .iter()
            .map(|&c| self.centroids[c as usize])
            .collect();
        Tensor::from_vec(data, dims).expect("caller supplies matching dims")
    }

    /// Round-trips a tensor through the codebook.
    pub fn quantize(&self, t: &Tensor) -> Tensor {
        self.decode(&self.encode(t), t.dims())
    }

    /// Bits per code for this codebook size.
    pub fn bits(&self) -> u8 {
        (usize::BITS - (self.centroids.len() - 1).leading_zeros()).max(1) as u8
    }
}

/// Index of the nearest centroid (binary search over the sorted list).
fn nearest(centroids: &[f32], v: f32) -> usize {
    match centroids.binary_search_by(|c| c.total_cmp(&v)) {
        Ok(i) => i,
        Err(i) => {
            if i == 0 {
                0
            } else if i == centroids.len() {
                centroids.len() - 1
            } else if (v - centroids[i - 1]).abs() <= (centroids[i] - v).abs() {
                i - 1
            } else {
                i
            }
        }
    }
}

/// A canonical Huffman code over byte symbols.
#[derive(Debug, Clone)]
pub struct HuffmanCode {
    /// Code length (bits) per symbol; 0 for unused symbols.
    lengths: [u8; 256],
    /// Codeword per symbol (low bits used, MSB-first within the length).
    codes: [u32; 256],
}

impl HuffmanCode {
    /// Builds a code from symbol frequencies in `data`.
    ///
    /// # Panics
    /// Panics when `data` is empty.
    pub fn build(data: &[u8]) -> Self {
        assert!(!data.is_empty(), "cannot build a Huffman code for no data");
        let mut freq = [0u64; 256];
        for &b in data {
            freq[b as usize] += 1;
        }
        // package-merge-free simple approach: repeatedly merge two lightest.
        #[derive(PartialEq, Eq)]
        struct Node {
            weight: u64,
            id: usize,
        }
        impl Ord for Node {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other
                    .weight
                    .cmp(&self.weight)
                    .then(other.id.cmp(&self.id))
            }
        }
        impl PartialOrd for Node {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let mut heap = std::collections::BinaryHeap::new();
        let mut children: Vec<Option<(usize, usize)>> = Vec::new();
        let mut symbol_of: Vec<Option<u8>> = Vec::new();
        for (s, &weight) in freq.iter().enumerate() {
            if weight > 0 {
                let id = children.len();
                children.push(None);
                symbol_of.push(Some(s as u8));
                heap.push(Node { weight, id });
            }
        }
        if heap.len() == 1 {
            // single-symbol stream: 1-bit code by convention
            let mut lengths = [0u8; 256];
            let mut codes = [0u32; 256];
            let s = symbol_of[0].expect("leaf");
            lengths[s as usize] = 1;
            codes[s as usize] = 0;
            return HuffmanCode { lengths, codes };
        }
        while heap.len() > 1 {
            let a = heap.pop().expect("len > 1");
            let b = heap.pop().expect("len > 1");
            let id = children.len();
            children.push(Some((a.id, b.id)));
            symbol_of.push(None);
            heap.push(Node {
                weight: a.weight + b.weight,
                id,
            });
        }
        let root = heap.pop().expect("one root remains").id;
        // walk the tree to assign lengths, then build canonical codes
        let mut lengths = [0u8; 256];
        let mut stack = vec![(root, 0u8)];
        while let Some((id, depth)) = stack.pop() {
            match children[id] {
                Some((l, r)) => {
                    stack.push((l, depth + 1));
                    stack.push((r, depth + 1));
                }
                None => {
                    let s = symbol_of[id].expect("leaf has symbol");
                    lengths[s as usize] = depth.max(1);
                }
            }
        }
        let mut codes = [0u32; 256];
        // canonical assignment: sort by (length, symbol)
        let mut symbols: Vec<u8> = (0u16..256)
            .filter(|&s| lengths[s as usize] > 0)
            .map(|s| s as u8)
            .collect();
        symbols.sort_by_key(|&s| (lengths[s as usize], s));
        let mut code = 0u32;
        let mut prev_len = 0u8;
        for &s in &symbols {
            let len = lengths[s as usize];
            code <<= len - prev_len;
            codes[s as usize] = code;
            code += 1;
            prev_len = len;
        }
        HuffmanCode { lengths, codes }
    }

    /// Total encoded size of `data` in bits.
    pub fn encoded_bits(&self, data: &[u8]) -> u64 {
        data.iter()
            .map(|&b| u64::from(self.lengths[b as usize]))
            .sum()
    }

    /// Encodes `data` to a bit vector (MSB-first per codeword).
    pub fn encode(&self, data: &[u8]) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.encoded_bits(data) as usize);
        for &b in data {
            let len = self.lengths[b as usize];
            assert!(len > 0, "symbol {b} not in code");
            let code = self.codes[b as usize];
            for i in (0..len).rev() {
                out.push((code >> i) & 1 == 1);
            }
        }
        out
    }

    /// Decodes `n` symbols from a bit stream produced by [`Self::encode`].
    ///
    /// # Panics
    /// Panics on a corrupt stream.
    pub fn decode(&self, bits: &[bool], n: usize) -> Vec<u8> {
        // simple table-free decode: match (length, prefix) pairs
        let mut by_len: Vec<Vec<(u32, u8)>> = vec![Vec::new(); 33];
        for s in 0..256 {
            let len = self.lengths[s];
            if len > 0 {
                by_len[len as usize].push((self.codes[s], s as u8));
            }
        }
        let mut out = Vec::with_capacity(n);
        let mut pos = 0;
        'outer: while out.len() < n {
            let mut acc = 0u32;
            for group in by_len.iter().skip(1) {
                assert!(pos < bits.len(), "bit stream truncated");
                acc = (acc << 1) | u32::from(bits[pos]);
                pos += 1;
                for &(code, sym) in group {
                    if code == acc {
                        out.push(sym);
                        continue 'outer;
                    }
                }
            }
            panic!("no codeword matched within 32 bits");
        }
        out
    }
}

/// Report from quantizing a whole network.
#[derive(Debug, Clone)]
pub struct QuantReport {
    /// Scheme applied.
    pub scheme: String,
    /// Original parameter bytes (f32).
    pub original_bytes: usize,
    /// Compressed parameter bytes (packed codes + codebooks/headers).
    pub compressed_bytes: usize,
    /// Compressed bytes after Huffman-coding the code stream.
    pub huffman_bytes: usize,
}

impl QuantReport {
    /// Compression ratio (original / compressed).
    pub fn ratio(&self) -> f64 {
        self.original_bytes as f64 / self.compressed_bytes as f64
    }
}

/// Quantizes every weight/bias tensor of `net` under `scheme`, returning the
/// simulated-quantization network (weights replaced by their reconstruction,
/// so accuracy effects are real) plus a size report.
///
/// Biases are small; they are quantized too for honesty but dominate nothing.
pub fn quantize_network(net: &Network, scheme: QuantScheme) -> (Network, QuantReport) {
    if let QuantScheme::Affine { bits } = scheme {
        let (out, report, _) = quantize_network_tensors(net, bits);
        return (out, report);
    }
    let mut out = net.clone();
    let mut original = 0usize;
    let mut compressed = 0usize;
    let mut all_codes: Vec<u8> = Vec::new();
    for layer in out.layers_mut() {
        for (p, _) in layer.params_and_grads() {
            original += p.len() * 4;
            match scheme {
                QuantScheme::Affine { bits } => {
                    let q = QuantizedTensor::quantize(p, bits);
                    compressed += q.storage_bytes();
                    all_codes.extend_from_slice(q.codes());
                    *p = q.dequantize();
                }
                QuantScheme::KMeans { k } => {
                    let cb = CodebookQuantizer::fit(p, k);
                    let codes = cb.encode(p);
                    compressed +=
                        (codes.len() * cb.bits() as usize).div_ceil(8) + 4 * cb.centroids.len();
                    *p = cb.decode(&codes, p.dims());
                    all_codes.extend_from_slice(&codes);
                }
                QuantScheme::Binary => {
                    let scale = p.map(f32::abs).mean().max(1e-12);
                    all_codes.extend(p.data().iter().map(|&v| u8::from(v >= 0.0)));
                    compressed += p.len().div_ceil(8) + 4;
                    *p = p.map(|v| if v >= 0.0 { scale } else { -scale });
                }
            }
        }
    }
    let huffman_bytes = if all_codes.is_empty() {
        0
    } else {
        let h = HuffmanCode::build(&all_codes);
        (h.encoded_bits(&all_codes).div_ceil(8)) as usize + 256 // + length table
    };
    (
        out,
        QuantReport {
            scheme: scheme.name(),
            original_bytes: original,
            compressed_bytes: compressed,
            huffman_bytes,
        },
    )
}

/// The affine path of [`quantize_network`], additionally returning the
/// [`QuantizedTensor`]s themselves (one per parameter tensor, in
/// `params_and_grads` order) so callers that persist the model can store
/// the packed codes natively instead of re-deriving them from the
/// dequantized reconstruction.
///
/// The returned network and report are identical to
/// `quantize_network(net, QuantScheme::Affine { bits })`.
///
/// # Panics
/// Panics unless `1 <= bits <= 8`.
#[must_use]
pub fn quantize_network_tensors(
    net: &Network,
    bits: u8,
) -> (Network, QuantReport, Vec<QuantizedTensor>) {
    let mut out = net.clone();
    let mut original = 0usize;
    let mut compressed = 0usize;
    let mut all_codes: Vec<u8> = Vec::new();
    let mut tensors: Vec<QuantizedTensor> = Vec::new();
    for layer in out.layers_mut() {
        for (p, _) in layer.params_and_grads() {
            original += p.len() * 4;
            let q = QuantizedTensor::quantize(p, bits);
            compressed += q.storage_bytes();
            all_codes.extend_from_slice(q.codes());
            *p = q.dequantize();
            tensors.push(q);
        }
    }
    let huffman_bytes = if all_codes.is_empty() {
        0
    } else {
        let h = HuffmanCode::build(&all_codes);
        (h.encoded_bits(&all_codes).div_ceil(8)) as usize + 256 // + length table
    };
    (
        out,
        QuantReport {
            scheme: QuantScheme::Affine { bits }.name(),
            original_bytes: original,
            compressed_bytes: compressed,
            huffman_bytes,
        },
        tensors,
    )
}

/// Convenience wrapper: [`quantize_network`] with [`QuantScheme::Binary`].
pub fn binarize_network(net: &Network) -> (Network, QuantReport) {
    quantize_network(net, QuantScheme::Binary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_tensor::init::{self, rng};
    use proptest::prelude::*;

    #[test]
    fn affine_roundtrip_error_bounded() {
        let mut r = rng(0);
        let t = init::uniform([100], -2.0, 2.0, &mut r);
        for bits in [2u8, 4, 8] {
            let q = QuantizedTensor::quantize(&t, bits);
            let back = q.dequantize();
            let bound = q.max_error_bound() + 1e-6;
            for (a, b) in t.data().iter().zip(back.data()) {
                assert!((a - b).abs() <= bound, "{bits}-bit error {}", (a - b).abs());
            }
        }
    }

    #[test]
    fn more_bits_less_error() {
        let mut r = rng(1);
        let t = init::normal([500], 0.0, 1.0, &mut r);
        let err = |bits| {
            let q = QuantizedTensor::quantize(&t, bits);
            (&q.dequantize() - &t).map(f32::abs).mean()
        };
        assert!(err(8) < err(4));
        assert!(err(4) < err(2));
        assert!(err(2) < err(1));
    }

    #[test]
    fn storage_bytes_packs_bits() {
        let t = Tensor::zeros([100]);
        assert_eq!(QuantizedTensor::quantize(&t, 8).storage_bytes(), 100 + 8);
        assert_eq!(QuantizedTensor::quantize(&t, 4).storage_bytes(), 50 + 8);
        assert_eq!(QuantizedTensor::quantize(&t, 1).storage_bytes(), 13 + 8);
    }

    #[test]
    fn constant_tensor_quantizes_exactly() {
        let t = Tensor::full([10], 3.25);
        let q = QuantizedTensor::quantize(&t, 2);
        assert!(q.dequantize().approx_eq(&t, 1e-6));
    }

    #[test]
    #[should_panic(expected = "bits must be")]
    fn affine_rejects_zero_bits() {
        QuantizedTensor::quantize(&Tensor::ones([4]), 0);
    }

    #[test]
    fn kmeans_clusters_bimodal_data() {
        // values near -1 and +1: two centroids land near the modes
        let mut data = vec![];
        for i in 0..100 {
            data.push(if i % 2 == 0 { -1.0 } else { 1.0 } + (i as f32) * 1e-4);
        }
        let t = Tensor::from_vec(data, [100]).unwrap();
        let cb = CodebookQuantizer::fit(&t, 2);
        assert_eq!(cb.centroids.len(), 2);
        assert!((cb.centroids[0] + 1.0).abs() < 0.1);
        assert!((cb.centroids[1] - 1.0).abs() < 0.1);
        let q = cb.quantize(&t);
        assert!((&q - &t).map(f32::abs).mean() < 0.05);
    }

    #[test]
    fn kmeans_more_centroids_less_error() {
        let mut r = rng(2);
        let t = init::normal([400], 0.0, 1.0, &mut r);
        let err = |k| {
            let cb = CodebookQuantizer::fit(&t, k);
            (&cb.quantize(&t) - &t).map(f32::abs).mean()
        };
        assert!(err(16) < err(4));
        assert!(err(4) < err(2));
    }

    #[test]
    fn codebook_bits() {
        let t = Tensor::arange(0.0, 1.0, 64);
        assert_eq!(CodebookQuantizer::fit(&t, 2).bits(), 1);
        assert_eq!(CodebookQuantizer::fit(&t, 16).bits(), 4);
    }

    #[test]
    fn nearest_picks_closest() {
        let cs = [0.0f32, 1.0, 10.0];
        assert_eq!(nearest(&cs, -5.0), 0);
        assert_eq!(nearest(&cs, 0.4), 0);
        assert_eq!(nearest(&cs, 0.6), 1);
        assert_eq!(nearest(&cs, 5.4), 1);
        assert_eq!(nearest(&cs, 999.0), 2);
        assert_eq!(nearest(&cs, 1.0), 1);
    }

    #[test]
    fn huffman_roundtrip() {
        let data: Vec<u8> = b"abracadabra abracadabra".to_vec();
        let h = HuffmanCode::build(&data);
        let bits = h.encode(&data);
        let back = h.decode(&bits, data.len());
        assert_eq!(back, data);
    }

    #[test]
    fn huffman_beats_fixed_width_on_skewed_data() {
        // 90% zeros: entropy coding should crush 8-bit fixed width
        let mut data = vec![0u8; 900];
        data.extend(std::iter::repeat_n(1u8, 50));
        data.extend(std::iter::repeat_n(2u8, 50));
        let h = HuffmanCode::build(&data);
        let bits = h.encoded_bits(&data);
        assert!(bits < 8 * data.len() as u64 / 4, "bits {bits}");
    }

    #[test]
    fn huffman_single_symbol_stream() {
        let data = vec![7u8; 100];
        let h = HuffmanCode::build(&data);
        let bits = h.encode(&data);
        assert_eq!(bits.len(), 100);
        assert_eq!(h.decode(&bits, 100), data);
    }

    proptest! {
        #[test]
        fn huffman_roundtrip_random(data in proptest::collection::vec(0u8..16, 1..300)) {
            let h = HuffmanCode::build(&data);
            let bits = h.encode(&data);
            prop_assert_eq!(h.decode(&bits, data.len()), data);
        }

        #[test]
        fn affine_error_bound_random(
            seed in 0u64..500, bits in 1u8..9,
        ) {
            let mut r = rng(seed);
            let t = init::uniform([64], -3.0, 3.0, &mut r);
            let q = QuantizedTensor::quantize(&t, bits);
            let back = q.dequantize();
            let bound = q.max_error_bound() + 1e-5;
            for (a, b) in t.data().iter().zip(back.data()) {
                prop_assert!((a - b).abs() <= bound);
            }
        }

        #[test]
        fn from_parts_roundtrip_dequantizes_bitwise(
            seed in 0u64..500, bits in 1u8..9,
        ) {
            // The persistence contract: a quantized tensor rebuilt from
            // its stored parts (codes + scale/zero/bits/dims) dequantizes
            // to exactly the same f32 bits as the original — no
            // dequantize round-trip happens on the way through storage.
            let mut r = rng(seed);
            let t = init::uniform([8, 9], -4.0, 4.0, &mut r);
            let q = QuantizedTensor::quantize(&t, bits);
            let rebuilt = QuantizedTensor::from_parts(
                q.codes().to_vec(),
                q.scale(),
                q.zero_point(),
                q.bits(),
                q.dims().to_vec(),
            );
            let a = q.dequantize();
            let b = rebuilt.dequantize();
            prop_assert_eq!(a.dims(), b.dims());
            for (x, y) in a.data().iter().zip(b.data()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        #[test]
        fn int8_roundtrip_bounded_by_step_for_arbitrary_ranges(
            values in proptest::collection::vec(-1e30f32..1e30f32, 1..200),
        ) {
            // The int8 path the serving engine ships: for *any* finite
            // weight vector — tiny ranges, huge magnitudes, constants —
            // quantize→dequantize lands within half a step of the input
            // (plus float-rounding slack proportional to the step).
            let n = values.len();
            let t = Tensor::from_vec(values, [n]).unwrap();
            let q = QuantizedTensor::quantize(&t, 8);
            let back = q.dequantize();
            let bound = q.max_error_bound() * (1.0 + 1e-4) + 1e-6;
            for (a, b) in t.data().iter().zip(back.data()) {
                prop_assert!(
                    (a - b).abs() <= bound,
                    "|{} - {}| = {} > step/2 = {}",
                    a, b, (a - b).abs(), bound
                );
            }
            // Packed int8 storage is one byte per weight plus the header.
            prop_assert_eq!(q.storage_bytes(), n + 8);
        }
    }

    #[test]
    fn quantize_network_shrinks_and_still_predicts() {
        use dl_data::digits_dataset;
        use dl_nn::{Optimizer, TrainConfig, Trainer};
        let data = digits_dataset(200, 0.05, 0);
        let mut r = rng(3);
        let mut net = dl_nn::Network::mlp(&[144, 32, 10], &mut r);
        let mut trainer = Trainer::new(
            TrainConfig {
                epochs: 10,
                ..TrainConfig::default()
            },
            Optimizer::adam(0.01),
        );
        trainer.fit(&mut net, &data);
        let base_acc = Trainer::evaluate(&mut net, &data);
        let (mut q8, rep8) = quantize_network(&net, QuantScheme::Affine { bits: 8 });
        let acc8 = Trainer::evaluate(&mut q8, &data);
        assert!(rep8.ratio() > 3.5, "8-bit ratio {}", rep8.ratio());
        assert!(base_acc - acc8 < 0.02, "8-bit hurt too much: {base_acc} -> {acc8}");
        let (mut q1, rep1) = binarize_network(&net);
        let acc1 = Trainer::evaluate(&mut q1, &data);
        assert!(rep1.ratio() > 20.0);
        // binary is allowed to hurt, but the report must still be coherent
        assert!(acc1 <= 1.0);
        assert!(rep1.compressed_bytes < rep8.compressed_bytes);
    }

    #[test]
    fn quantize_network_tensors_matches_the_affine_path_bitwise() {
        let mut r = rng(9);
        let net = dl_nn::Network::mlp(&[10, 12, 4], &mut r);
        let (via_scheme, rep_scheme) = quantize_network(&net, QuantScheme::Affine { bits: 8 });
        let (via_tensors, rep_tensors, qts) = quantize_network_tensors(&net, 8);
        assert_eq!(rep_scheme.scheme, rep_tensors.scheme);
        assert_eq!(rep_scheme.compressed_bytes, rep_tensors.compressed_bytes);
        assert_eq!(rep_scheme.huffman_bytes, rep_tensors.huffman_bytes);
        // One quantized tensor per parameter tensor, in params order, and
        // the dequantized reconstructions are the networks' actual params.
        assert_eq!(via_scheme.flat_params(), via_tensors.flat_params());
        let mut b = via_tensors.clone();
        let mut i = 0;
        for layer in b.layers_mut() {
            for (p, _) in layer.params_and_grads() {
                let back = qts[i].dequantize();
                assert_eq!(back.dims(), p.dims());
                for (x, y) in back.data().iter().zip(p.data()) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
                i += 1;
            }
        }
        assert_eq!(i, qts.len(), "every quantized tensor is accounted for");
    }
}
