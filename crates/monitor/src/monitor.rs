//! The online monitor pipeline: a [`Recorder`] tap over the serving
//! event stream.
//!
//! [`Monitor`] wraps any inner recorder and forwards **every** call
//! unchanged while folding the structured serving samples into live
//! series. Because it only reads the stream, attaching it cannot change
//! the simulation: the engine's state never depends on its recorder, and
//! a run monitored through a `TimelineRecorder` produces the identical
//! timeline/histograms as the unmonitored recorder *unless an alert
//! actually fires* (alerts are `monitor.alert` instants — new
//! information, emitted only on a rising edge).
//!
//! Time discipline: the monitor rolls its windows lazily from the
//! virtual clock at event-ingest time. Windows live on a fixed grid
//! (`[k*window_s, (k+1)*window_s)`), closed when the first event at or
//! past the boundary arrives; long idle gaps fast-forward the grid after
//! flushing `history` empty windows (ring depths are bounded, so closing
//! more than `history` empty windows is a no-op).

use std::collections::BTreeSet;
use std::sync::Mutex;

use dl_obs::{fields, Event, EventKind, FieldValue, Fields, Recorder, ToFields, VirtualClock};

use crate::drift::{DriftConfig, DriftDetector};
use crate::sketch::WindowedSketch;
use crate::slo::{burn_rate, Alert, AlertKind, SloRule};
use crate::window::{Ewma, WindowCounter};

/// Monitor knobs. `window_s` is the roll grid every windowed series and
/// rule shares; `history` bounds the per-series ring (every rule's
/// trailing window must fit inside it).
#[derive(Debug, Clone)]
#[must_use]
pub struct MonitorConfig {
    /// Roll-window length in simulated seconds.
    pub window_s: f64,
    /// Closed windows retained per series (ring depth).
    pub history: usize,
    /// Latency objective used for the *health score* (a completion
    /// within it scores 1, over it 0). `INFINITY` scores every
    /// completion healthy.
    pub latency_slo_s: f64,
    /// Smoothing factor for the health and queue-depth gauges.
    pub ewma_alpha: f64,
    /// Declarative SLO rules, evaluated fleet-wide (health rules
    /// per-replica) on every window roll.
    pub rules: Vec<SloRule>,
    /// Input/prediction drift detection; `None` disables it.
    pub drift: Option<DriftConfig>,
    /// Scalar input-feature projection per dataset row (indexed by the
    /// request's `sample` field) for input-drift tracking. Empty
    /// disables input-feature lookup.
    pub feature_of_sample: Vec<f64>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window_s: 1e-4,
            history: 64,
            latency_slo_s: f64::INFINITY,
            ewma_alpha: 0.2,
            rules: Vec::new(),
            drift: None,
            feature_of_sample: Vec::new(),
        }
    }
}

/// Live series for one scope (a replica, or the whole fleet).
#[derive(Debug)]
struct Series {
    latency: WindowedSketch,
    admits: WindowCounter,
    completions: WindowCounter,
    sheds: WindowCounter,
    downgrades: WindowCounter,
    queue: Ewma,
    health: Ewma,
    crashes: u64,
    rejoins: u64,
}

impl Series {
    fn new(cfg: &MonitorConfig) -> Self {
        Series {
            latency: WindowedSketch::new(cfg.history),
            admits: WindowCounter::new(cfg.history),
            completions: WindowCounter::new(cfg.history),
            sheds: WindowCounter::new(cfg.history),
            downgrades: WindowCounter::new(cfg.history),
            queue: Ewma::new(cfg.ewma_alpha),
            health: Ewma::new(cfg.ewma_alpha),
            crashes: 0,
            rejoins: 0,
        }
    }

    fn roll(&mut self) {
        self.latency.roll();
        self.admits.roll();
        self.completions.roll();
        self.sheds.roll();
        self.downgrades.roll();
    }
}

struct State {
    /// Index of the open window on the fixed grid.
    next_window: u64,
    fleet: Series,
    replicas: Vec<Series>,
    lost: WindowCounter,
    /// Per-`BurnRate`-rule violation counters (parallel to the burn
    /// rules' positions in `cfg.rules`).
    burn_violations: Vec<WindowCounter>,
    drift: Option<DriftDetector>,
    alerts: Vec<Alert>,
    /// Rising-edge state: `rule|scope` keys currently firing.
    active: BTreeSet<String>,
    /// Latest drift verdicts (for the report).
    last_input_psi: Option<f64>,
    max_input_psi: f64,
    last_pred_kl: Option<f64>,
    max_pred_kl: f64,
    /// Latest event time seen (denominator for lifetime rates).
    last_event_s: f64,
}

/// The monitor: wrap an inner recorder, run the workload, then read
/// [`Monitor::report`].
pub struct Monitor<'a> {
    inner: &'a dyn Recorder,
    cfg: MonitorConfig,
    state: Mutex<State>,
}

fn field_f64(fields: &Fields, key: &str) -> Option<f64> {
    fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.as_f64())
}

fn field_u64(fields: &Fields, key: &str) -> Option<u64> {
    fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| match *v {
        FieldValue::U64(n) => Some(n),
        FieldValue::I64(n) if n >= 0 => Some(n as u64),
        _ => None,
    })
}

impl<'a> Monitor<'a> {
    /// Attaches a monitor in front of `inner`.
    ///
    /// # Panics
    /// Panics on a non-positive window, a rule whose trailing window
    /// exceeds `history`, or an invalid rule/drift configuration.
    pub fn new(inner: &'a dyn Recorder, cfg: MonitorConfig) -> Self {
        assert!(
            cfg.window_s.is_finite() && cfg.window_s > 0.0,
            "monitor window must be positive, got {}",
            cfg.window_s
        );
        assert!(cfg.history > 0, "need at least one window of history");
        for rule in &cfg.rules {
            rule.validate();
            assert!(
                rule.windows_needed() <= cfg.history,
                "rule {:?} needs {} windows but history retains {}",
                rule.name(),
                rule.windows_needed(),
                cfg.history
            );
        }
        if let Some(d) = &cfg.drift {
            d.validate();
            assert!(
                d.windows <= cfg.history,
                "drift window {} exceeds history {}",
                d.windows,
                cfg.history
            );
        }
        let n_burn = cfg
            .rules
            .iter()
            .filter(|r| matches!(r, SloRule::BurnRate { .. }))
            .count();
        let state = State {
            next_window: 0,
            fleet: Series::new(&cfg),
            replicas: Vec::new(),
            lost: WindowCounter::new(cfg.history),
            burn_violations: (0..n_burn).map(|_| WindowCounter::new(cfg.history)).collect(),
            drift: cfg.drift.clone().map(DriftDetector::new),
            alerts: Vec::new(),
            active: BTreeSet::new(),
            last_input_psi: None,
            max_input_psi: 0.0,
            last_pred_kl: None,
            max_pred_kl: 0.0,
            last_event_s: 0.0,
        };
        Monitor {
            inner,
            cfg,
            state: Mutex::new(state),
        }
    }

    /// The configuration this monitor runs.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Closes every window due strictly before `now_s`, evaluating the
    /// rules at each boundary. Returns freshly fired alerts for the
    /// caller to emit *after* releasing the state lock is unnecessary —
    /// the inner recorder is a distinct object — but returning keeps the
    /// borrow simple.
    fn roll_to(&self, state: &mut State, now_s: f64) -> Vec<Alert> {
        let w = self.cfg.window_s;
        let target = (now_s / w) as u64; // window index containing now
        if target <= state.next_window {
            return Vec::new();
        }
        let mut pending = target - state.next_window;
        // Idle-gap fast-forward: every ring is `history` deep, so
        // closing more than that many empty windows changes nothing.
        let cap = self.cfg.history as u64 + 1;
        if pending > cap {
            state.next_window = target - cap;
            pending = cap;
        }
        let mut fired = Vec::new();
        for _ in 0..pending {
            let at_s = (state.next_window + 1) as f64 * w;
            self.close_window(state, at_s, &mut fired);
            state.next_window += 1;
        }
        fired
    }

    /// Closes one window ending at `at_s`: rolls every series, then
    /// evaluates rules and drift on the freshly closed rings.
    fn close_window(&self, state: &mut State, at_s: f64, fired: &mut Vec<Alert>) {
        state.fleet.roll();
        for r in &mut state.replicas {
            r.roll();
        }
        state.lost.roll();
        for v in &mut state.burn_violations {
            v.roll();
        }

        // --- SLO rules ---------------------------------------------------
        let mut burn_idx = 0usize;
        for rule in &self.cfg.rules {
            match rule {
                SloRule::LatencyQuantile {
                    name,
                    q,
                    target_s,
                    windows,
                } => {
                    let sketch = state.fleet.latency.over_last(*windows);
                    let value = sketch.quantile(*q);
                    let firing = sketch.count() > 0 && value > *target_s;
                    Self::edge(
                        &mut state.active,
                        &mut state.alerts,
                        fired,
                        firing,
                        Alert {
                            at_s,
                            rule: name.clone(),
                            kind: AlertKind::Latency,
                            scope: "fleet".into(),
                            value,
                            threshold: *target_s,
                        },
                    );
                }
                SloRule::BurnRate {
                    name,
                    budget,
                    fast_windows,
                    slow_windows,
                    threshold,
                    ..
                } => {
                    let viol = &state.burn_violations[burn_idx];
                    burn_idx += 1;
                    let fast = burn_rate(
                        viol.over_last(*fast_windows),
                        state.fleet.completions.over_last(*fast_windows),
                        *budget,
                    );
                    let slow = burn_rate(
                        viol.over_last(*slow_windows),
                        state.fleet.completions.over_last(*slow_windows),
                        *budget,
                    );
                    let firing = fast > *threshold && slow > *threshold;
                    Self::edge(
                        &mut state.active,
                        &mut state.alerts,
                        fired,
                        firing,
                        Alert {
                            at_s,
                            rule: name.clone(),
                            kind: AlertKind::BurnRate,
                            scope: "fleet".into(),
                            value: fast.min(slow),
                            threshold: *threshold,
                        },
                    );
                }
                SloRule::HealthBelow { name, threshold } => {
                    for (i, r) in state.replicas.iter().enumerate() {
                        let firing = r.health.is_primed() && r.health.value() < *threshold;
                        let value = r.health.value();
                        Self::edge(
                            &mut state.active,
                            &mut state.alerts,
                            fired,
                            firing,
                            Alert {
                                at_s,
                                rule: name.clone(),
                                kind: AlertKind::Health,
                                scope: format!("replica-{i}"),
                                value,
                                threshold: *threshold,
                            },
                        );
                    }
                }
            }
        }

        // --- drift -------------------------------------------------------
        if let Some(d) = &mut state.drift {
            let status = d.roll();
            let psi_thr = d.config().psi_threshold;
            let kl_thr = d.config().kl_threshold;
            if let Some(p) = status.input_psi {
                state.last_input_psi = Some(p);
                state.max_input_psi = state.max_input_psi.max(p);
            }
            if let Some(k) = status.pred_kl {
                state.last_pred_kl = Some(k);
                state.max_pred_kl = state.max_pred_kl.max(k);
            }
            let input_firing = status.input_psi.is_some_and(|p| p > psi_thr);
            Self::edge(
                &mut state.active,
                &mut state.alerts,
                fired,
                input_firing,
                Alert {
                    at_s,
                    rule: "input-drift".into(),
                    kind: AlertKind::InputDrift,
                    scope: "fleet".into(),
                    value: status.input_psi.unwrap_or(0.0),
                    threshold: psi_thr,
                },
            );
            let pred_firing = status.pred_kl.is_some_and(|k| k > kl_thr);
            Self::edge(
                &mut state.active,
                &mut state.alerts,
                fired,
                pred_firing,
                Alert {
                    at_s,
                    rule: "prediction-drift".into(),
                    kind: AlertKind::PredictionDrift,
                    scope: "fleet".into(),
                    value: status.pred_kl.unwrap_or(0.0),
                    threshold: kl_thr,
                },
            );
        }
    }

    /// Rising-edge alert bookkeeping: record and emit only on the
    /// false-to-true transition, re-arm on the true-to-false one.
    fn edge(
        active: &mut BTreeSet<String>,
        alerts: &mut Vec<Alert>,
        fired: &mut Vec<Alert>,
        firing: bool,
        alert: Alert,
    ) {
        let key = format!("{}|{}", alert.rule, alert.scope);
        if firing {
            if active.insert(key) {
                alerts.push(alert.clone());
                fired.push(alert);
            }
        } else {
            active.remove(&key);
        }
    }

    fn replica_series<'s>(state: &'s mut State, cfg: &MonitorConfig, id: usize) -> &'s mut Series {
        while state.replicas.len() <= id {
            state.replicas.push(Series::new(cfg));
        }
        &mut state.replicas[id]
    }

    /// Ingests one forwarded event into the live series.
    fn ingest(&self, event: &Event) {
        if event.kind != EventKind::Instant {
            return;
        }
        let tap = matches!(
            event.name.as_str(),
            "serve.admit" | "serve.complete" | "serve.shed" | "serve.downgrade"
                | "cluster.crash" | "cluster.rejoin"
        );
        if !tap {
            return;
        }
        let now_s = self.inner.clock().now();
        let mut state = self.state.lock().expect("monitor state lock");
        let fired = self.roll_to(&mut state, now_s);
        state.last_event_s = state.last_event_s.max(now_s);
        let replica = field_u64(&event.fields, "replica").unwrap_or(0) as usize;
        match event.name.as_str() {
            "serve.admit" => {
                state.fleet.admits.add(1);
                if let Some(q) = field_f64(&event.fields, "queue") {
                    state.fleet.queue.observe(q);
                }
                let r = Self::replica_series(&mut state, &self.cfg, replica);
                r.admits.add(1);
                if let Some(q) = field_f64(&event.fields, "queue") {
                    r.queue.observe(q);
                }
            }
            "serve.complete" => {
                let latency = field_f64(&event.fields, "latency_s").unwrap_or(0.0);
                let healthy = if latency <= self.cfg.latency_slo_s { 1.0 } else { 0.0 };
                state.fleet.completions.add(1);
                state.fleet.latency.observe(latency);
                state.fleet.health.observe(healthy);
                let r = Self::replica_series(&mut state, &self.cfg, replica);
                r.completions.add(1);
                r.latency.observe(latency);
                r.health.observe(healthy);
                for (i, rule) in self
                    .cfg
                    .rules
                    .iter()
                    .filter_map(|r| match r {
                        SloRule::BurnRate { latency_slo_s, .. } => Some(*latency_slo_s),
                        _ => None,
                    })
                    .enumerate()
                {
                    if latency > rule {
                        state.burn_violations[i].add(1);
                    }
                }
                if let Some(d) = &mut state.drift {
                    if let Some(s) = field_u64(&event.fields, "sample") {
                        if let Some(&f) = self.cfg.feature_of_sample.get(s as usize) {
                            d.observe_input(f);
                        }
                    }
                    if let Some(p) = field_u64(&event.fields, "pred") {
                        d.observe_pred(p as usize);
                    }
                }
            }
            "serve.shed" => {
                state.fleet.sheds.add(1);
                state.fleet.health.observe(0.0);
                let r = Self::replica_series(&mut state, &self.cfg, replica);
                r.sheds.add(1);
                r.health.observe(0.0);
            }
            "serve.downgrade" => {
                state.fleet.downgrades.add(1);
                if let Some(q) = field_f64(&event.fields, "queue") {
                    state.fleet.queue.observe(q);
                }
                let r = Self::replica_series(&mut state, &self.cfg, replica);
                r.downgrades.add(1);
                if let Some(q) = field_f64(&event.fields, "queue") {
                    r.queue.observe(q);
                }
            }
            "cluster.crash" => {
                state.fleet.crashes += 1;
                state.fleet.health.observe(0.0);
                let r = Self::replica_series(&mut state, &self.cfg, replica);
                r.crashes += 1;
                r.health.set(0.0);
            }
            "cluster.rejoin" => {
                state.fleet.rejoins += 1;
                let r = Self::replica_series(&mut state, &self.cfg, replica);
                r.rejoins += 1;
            }
            _ => unreachable!("tap list matched above"),
        }
        drop(state);
        self.emit(fired);
    }

    /// Emits freshly fired alerts as `monitor.alert` instants on track 0
    /// of the inner recorder.
    fn emit(&self, fired: Vec<Alert>) {
        for a in fired {
            self.inner.instant(0, "monitor.alert", a.to_fields());
        }
    }

    /// Snapshot of everything the monitor has aggregated. Also closes
    /// any windows due at the current virtual time, so rule state is
    /// current as of the call.
    pub fn report(&self) -> MonitorReport {
        let now_s = self.inner.clock().now();
        let mut state = self.state.lock().expect("monitor state lock");
        let fired = self.roll_to(&mut state, now_s);
        let elapsed = state.last_event_s;
        let summary = |scope: String, s: &Series| SeriesSummary {
            scope,
            admits: s.admits.total(),
            completions: s.completions.total(),
            sheds: s.sheds.total(),
            downgrades: s.downgrades.total(),
            crashes: s.crashes,
            rejoins: s.rejoins,
            p50_s: s.latency.lifetime().p50(),
            p99_s: s.latency.lifetime().p99(),
            p999_s: s.latency.lifetime().p999(),
            mean_latency_s: s.latency.lifetime().mean(),
            completion_rate_rps: if elapsed > 0.0 {
                s.completions.total() as f64 / elapsed
            } else {
                0.0
            },
            shed_rate_rps: if elapsed > 0.0 {
                s.sheds.total() as f64 / elapsed
            } else {
                0.0
            },
            queue_depth: s.queue.value(),
            health: s.health.value(),
        };
        let report = MonitorReport {
            window_s: self.cfg.window_s,
            windows_closed: state.next_window,
            fleet: summary("fleet".into(), &state.fleet),
            replicas: state
                .replicas
                .iter()
                .enumerate()
                .map(|(i, s)| summary(format!("replica-{i}"), s))
                .collect(),
            lost: state.lost.total(),
            alerts: state.alerts.clone(),
            input_psi: state.last_input_psi,
            max_input_psi: state.max_input_psi,
            pred_kl: state.last_pred_kl,
            max_pred_kl: state.max_pred_kl,
        };
        drop(state);
        self.emit(fired);
        report
    }
}

impl Recorder for Monitor<'_> {
    fn clock(&self) -> &VirtualClock {
        self.inner.clock()
    }

    fn enabled(&self) -> bool {
        // The monitor consumes structured samples, so instrumented
        // drivers must emit them even over a NullRecorder inner.
        true
    }

    fn record(&self, event: Event) {
        self.ingest(&event);
        self.inner.record(event);
    }

    fn add_counter(&self, name: &str, delta: u64) -> u64 {
        if name == "cluster.lost" {
            let now_s = self.inner.clock().now();
            let mut state = self.state.lock().expect("monitor state lock");
            let fired = self.roll_to(&mut state, now_s);
            state.last_event_s = state.last_event_s.max(now_s);
            state.lost.add(delta);
            state.fleet.health.observe(0.0);
            drop(state);
            self.emit(fired);
        }
        self.inner.add_counter(name, delta)
    }

    fn observe(&self, name: &str, value: f64) {
        self.inner.observe(name, value);
    }

    fn observe_exemplar(&self, name: &str, value: f64, exemplar: u64) {
        // Forward verbatim so exemplar slots in the inner recorder's
        // histograms match an unmonitored run bit-for-bit.
        self.inner.observe_exemplar(name, value, exemplar);
    }
}

/// Aggregated live-series snapshot for one scope.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct SeriesSummary {
    /// `"fleet"` or `"replica-N"`.
    pub scope: String,
    /// Requests admitted (accepted arrivals).
    pub admits: u64,
    /// Requests completed.
    pub completions: u64,
    /// Requests shed by admission control.
    pub sheds: u64,
    /// Requests answered by a downgraded variant.
    pub downgrades: u64,
    /// Crash events.
    pub crashes: u64,
    /// Rejoin events.
    pub rejoins: u64,
    /// Lifetime median latency (sketch upper-edge estimate).
    pub p50_s: f64,
    /// Lifetime p99 latency.
    pub p99_s: f64,
    /// Lifetime p999 latency.
    pub p999_s: f64,
    /// Lifetime mean latency.
    pub mean_latency_s: f64,
    /// Completions per second over the observed span.
    pub completion_rate_rps: f64,
    /// Sheds per second over the observed span.
    pub shed_rate_rps: f64,
    /// EWMA queue depth at last observation.
    pub queue_depth: f64,
    /// EWMA health score (1 healthy .. 0 shedding/crashed).
    pub health: f64,
}

impl ToFields for SeriesSummary {
    fn to_fields(&self) -> Fields {
        fields! {
            "scope" => self.scope.clone(),
            "admits" => self.admits,
            "completions" => self.completions,
            "sheds" => self.sheds,
            "downgrades" => self.downgrades,
            "crashes" => self.crashes,
            "rejoins" => self.rejoins,
            "p50_s" => self.p50_s,
            "p99_s" => self.p99_s,
            "p999_s" => self.p999_s,
            "mean_latency_s" => self.mean_latency_s,
            "completion_rate_rps" => self.completion_rate_rps,
            "shed_rate_rps" => self.shed_rate_rps,
            "queue_depth" => self.queue_depth,
            "health" => self.health,
        }
    }
}

/// Everything the monitor aggregated over one run.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct MonitorReport {
    /// Roll-window length.
    pub window_s: f64,
    /// Windows closed over the run.
    pub windows_closed: u64,
    /// Fleet-level series.
    pub fleet: SeriesSummary,
    /// Per-replica series, indexed by replica id.
    pub replicas: Vec<SeriesSummary>,
    /// Requests lost to crashes (fleet-level; the cluster counter has no
    /// replica attribution).
    pub lost: u64,
    /// Every alert fired, in firing order.
    pub alerts: Vec<Alert>,
    /// Last input-window PSI (`None`: drift off or always abstained).
    pub input_psi: Option<f64>,
    /// Largest input PSI seen on any roll.
    pub max_input_psi: f64,
    /// Last predicted-class KL.
    pub pred_kl: Option<f64>,
    /// Largest predicted-class KL seen on any roll.
    pub max_pred_kl: f64,
}

impl MonitorReport {
    /// Time of the first alert of `kind`, if any fired.
    #[must_use]
    pub fn first_alert_s(&self, kind: AlertKind) -> Option<f64> {
        self.alerts.iter().find(|a| a.kind == kind).map(|a| a.at_s)
    }

    /// Number of alerts of `kind`.
    #[must_use]
    pub fn alert_count(&self, kind: AlertKind) -> usize {
        self.alerts.iter().filter(|a| a.kind == kind).count()
    }
}

impl ToFields for MonitorReport {
    fn to_fields(&self) -> Fields {
        fields! {
            "window_s" => self.window_s,
            "windows_closed" => self.windows_closed,
            "replicas" => self.replicas.len(),
            "alerts" => self.alerts.len(),
            "lost" => self.lost,
            "admits" => self.fleet.admits,
            "completions" => self.fleet.completions,
            "sheds" => self.fleet.sheds,
            "downgrades" => self.fleet.downgrades,
            "p50_s" => self.fleet.p50_s,
            "p99_s" => self.fleet.p99_s,
            "p999_s" => self.fleet.p999_s,
            "health" => self.fleet.health,
            "max_input_psi" => self.max_input_psi,
            "max_pred_kl" => self.max_pred_kl,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_obs::{NullRecorder, TimelineRecorder};

    fn complete(rec: &dyn Recorder, replica: u64, latency_s: f64, sample: u64, pred: u64) {
        rec.instant(
            0,
            "serve.complete",
            fields! {
                "request" => 0u64,
                "replica" => replica,
                "latency_s" => latency_s,
                "sample" => sample,
                "pred" => pred,
                "downgraded" => false,
            },
        );
    }

    #[test]
    fn monitor_is_a_pure_tap_forwarding_everything() {
        let plain = TimelineRecorder::new();
        let tapped_inner = TimelineRecorder::new();
        let monitor = Monitor::new(&tapped_inner, MonitorConfig::default());
        for rec in [&plain as &dyn Recorder, &monitor as &dyn Recorder] {
            let span = rec.span_start(1, "serve.batch", fields! { "batch" => 4usize });
            rec.clock().advance(2e-4);
            complete(rec, 0, 1e-4, 3, 1);
            rec.counter(0, "serve.served", 4);
            rec.observe("serve.latency_s", 1e-4);
            rec.span_end(span, fields! { "batch" => 4usize });
        }
        assert_eq!(plain.events(), tapped_inner.events(), "timelines identical");
        assert_eq!(plain.counters(), tapped_inner.counters());
        assert_eq!(
            plain.histogram("serve.latency_s"),
            tapped_inner.histogram("serve.latency_s")
        );
        let report = monitor.report();
        assert_eq!(report.fleet.completions, 1, "and the monitor still saw it");
        assert!(report.alerts.is_empty(), "no rules, no alerts");
    }

    #[test]
    fn burn_rate_alert_fires_on_rising_edge_only() {
        let inner = TimelineRecorder::new();
        let cfg = MonitorConfig {
            window_s: 1e-3,
            history: 16,
            rules: vec![SloRule::BurnRate {
                name: "p99-burn".into(),
                latency_slo_s: 1e-4,
                budget: 0.1,
                fast_windows: 1,
                slow_windows: 4,
                threshold: 2.0,
            }],
            ..MonitorConfig::default()
        };
        let m = Monitor::new(&inner, cfg);
        // 4 windows of healthy traffic, then sustained violation.
        for win in 0..12u64 {
            for i in 0..10u64 {
                let latency = if win >= 4 { 5e-4 } else { 5e-5 };
                complete(&m, 0, latency, i, 0);
            }
            m.clock().advance(1e-3);
        }
        let report = m.report();
        assert_eq!(
            report.alert_count(AlertKind::BurnRate),
            1,
            "sustained violation fires exactly once (edge-triggered): {:?}",
            report.alerts
        );
        let first = report.first_alert_s(AlertKind::BurnRate).expect("fired");
        // Violations start in window 4; the slow window (4 windows)
        // crosses a 2x burn once half its completions violate.
        assert!((5e-3..=8e-3).contains(&first), "fired at {first}");
        // The alert instant landed in the inner timeline.
        let alerts: Vec<_> = inner
            .events()
            .iter()
            .filter(|e| e.name == "monitor.alert")
            .cloned()
            .collect();
        assert_eq!(alerts.len(), 1);
        assert!(
            dl_obs::export::fields_to_json(&alerts[0].fields).contains("burn_rate"),
            "typed alert"
        );
    }

    #[test]
    fn health_rule_watches_each_replica_and_crash_resets() {
        let inner = NullRecorder::new();
        let cfg = MonitorConfig {
            window_s: 1e-3,
            history: 8,
            latency_slo_s: 1e-4,
            rules: vec![SloRule::HealthBelow {
                name: "replica-health".into(),
                threshold: 0.5,
            }],
            ..MonitorConfig::default()
        };
        let m = Monitor::new(&inner, cfg);
        // Replica 0 healthy, replica 1 crashes.
        for i in 0..20u64 {
            complete(&m, 0, 5e-5, i, 0);
            complete(&m, 1, 5e-5, i, 0);
        }
        m.instant(0, "cluster.crash", fields! { "replica" => 1u64 });
        m.clock().advance(2e-3);
        complete(&m, 0, 5e-5, 0, 0); // trigger a roll past the crash
        let report = m.report();
        let health_alerts: Vec<_> = report
            .alerts
            .iter()
            .filter(|a| a.kind == AlertKind::Health)
            .collect();
        assert_eq!(health_alerts.len(), 1, "only the crashed replica pages");
        assert_eq!(health_alerts[0].scope, "replica-1");
        assert!(report.replicas[0].health > 0.9);
        assert!(report.replicas[1].health < 0.5);
        assert_eq!(report.replicas[1].crashes, 1);
    }

    #[test]
    fn idle_gap_fast_forward_keeps_rules_current() {
        let inner = NullRecorder::new();
        let cfg = MonitorConfig {
            window_s: 1e-6,
            history: 4,
            rules: vec![SloRule::LatencyQuantile {
                name: "p99".into(),
                q: 0.99,
                target_s: 1e-4,
                windows: 4,
            }],
            ..MonitorConfig::default()
        };
        let m = Monitor::new(&inner, cfg);
        for i in 0..50u64 {
            complete(&m, 0, 1.0, i, 0); // grossly violating
        }
        m.clock().advance(1e-6 * 3.0);
        complete(&m, 0, 1.0, 0, 0);
        let report_mid = m.report();
        assert!(
            report_mid.alert_count(AlertKind::Latency) >= 1,
            "violation detected"
        );
        // A huge idle gap (millions of windows) must stay O(history).
        m.clock().advance(10.0);
        complete(&m, 0, 1e-6, 0, 0);
        let report = m.report();
        assert!(report.windows_closed > 1_000_000, "grid advanced");
        assert_eq!(
            report.alert_count(AlertKind::Latency),
            report_mid.alert_count(AlertKind::Latency),
            "no phantom alerts from the gap"
        );
    }
}
