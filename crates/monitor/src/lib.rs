//! # dl-monitor
//!
//! Online monitoring for the serving tier: the paper's Part-3
//! responsibility agenda demands that a deployed system *knows* when it
//! is degrading, not merely that it can be profiled after the fact. This
//! crate closes that loop with four pieces, all deterministic on
//! `dl_obs::VirtualClock` and dependency-free beyond `dl-obs`:
//!
//! * **Streaming aggregation primitives** ([`sketch`], [`window`]) —
//!   mergeable log-bucketed quantile sketches sharing
//!   `dl_obs::Histogram`'s fixed bucket grid (so sketch merge obeys an
//!   exact merge law), sliding time-window counters/rates with a
//!   documented empty-window convention, and EWMA gauges.
//! * **The monitor pipeline** ([`Monitor`]) — a [`dl_obs::Recorder`]
//!   *tap*: it forwards every event unchanged to an inner recorder while
//!   folding the serving stream (`serve.admit` / `serve.complete` /
//!   `serve.shed` / `cluster.crash` / ...) into per-replica and
//!   fleet-level live series: p50/p99/p999 latency, shed/loss/downgrade
//!   rates, queue depth, and a replica health score.
//! * **An SLO rules engine** ([`slo`]) — declarative [`SloRule`]s
//!   (latency-quantile targets, fast/slow-window error-budget burn
//!   rates, health floors) evaluated on every window roll, emitting
//!   typed [`Alert`] instants into the trace and the final
//!   [`MonitorReport`].
//! * **Drift detection** ([`drift`]) — a [`ReferenceProfile`] captured
//!   from training data, compared against sliding windows of served
//!   inputs (PSI) and predicted-class distributions (KL divergence).
//!
//! Because the monitor only *reads* the event stream, attaching it never
//! changes what the instrumented driver does: a fault-free serving run
//! with a monitor tapping a `TimelineRecorder` produces a bit-identical
//! report, latency histogram, and timeline (alert instants only appear
//! when an alert actually fires), and the `NullRecorder` fast path is
//! untouched.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod drift;
pub mod monitor;
pub mod sketch;
pub mod slo;
pub mod window;

pub use drift::{kl_divergence, psi, DriftConfig, DriftDetector, DriftStatus, ReferenceProfile};
pub use monitor::{Monitor, MonitorConfig, MonitorReport, SeriesSummary};
pub use sketch::{QuantileSketch, WindowedSketch};
pub use slo::{Alert, AlertKind, SloRule};
pub use window::{Ewma, RateWindow, WindowCounter};
