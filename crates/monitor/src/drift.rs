//! Input and prediction drift detection against a training-time
//! reference profile.
//!
//! The deployment-responsibility loop: a model is trained on one
//! distribution, then serves another. The monitor captures a
//! [`ReferenceProfile`] from the *training* data (a scalar feature
//! projection binned into fixed equal-width bins plus two outlier bins)
//! and, per roll window, compares the served distribution against it
//! with **PSI** (population stability index — symmetric, the industry
//! screening statistic) and **KL divergence** (observed from expected).
//! Predicted-class distributions get the same treatment on categorical
//! bins. Both statistics are smoothed with a small epsilon so
//! freshly-empty bins cannot produce infinities; an under-filled window
//! (fewer than `min_samples` observations) abstains rather than alert,
//! so sparse traffic cannot fire false drift alerts.

use std::collections::VecDeque;

/// Smoothing floor applied to every bin probability before the log
/// ratios (keeps PSI/KL finite when a bin is empty on one side).
pub const DRIFT_EPS: f64 = 1e-6;

/// Population stability index between an expected (reference) and an
/// observed distribution over the same bins.
///
/// `sum_i (o_i - e_i) * ln(o_i / e_i)` with probabilities floored at
/// [`DRIFT_EPS`]. Conventional reading: `< 0.1` stable, `0.1..0.25`
/// moderate shift, `> 0.25` major shift.
///
/// # Panics
/// Panics when the distributions have different lengths.
#[must_use]
pub fn psi(expected: &[f64], observed: &[f64]) -> f64 {
    assert_eq!(expected.len(), observed.len(), "bin grids must match");
    expected
        .iter()
        .zip(observed)
        .map(|(&e, &o)| {
            let e = e.max(DRIFT_EPS);
            let o = o.max(DRIFT_EPS);
            (o - e) * (o / e).ln()
        })
        .sum()
}

/// KL divergence `D(observed || expected)` in nats, with probabilities
/// floored at [`DRIFT_EPS`].
///
/// # Panics
/// Panics when the distributions have different lengths.
#[must_use]
pub fn kl_divergence(observed: &[f64], expected: &[f64]) -> f64 {
    assert_eq!(expected.len(), observed.len(), "bin grids must match");
    observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| {
            let e = e.max(DRIFT_EPS);
            let o = o.max(DRIFT_EPS);
            o * (o / e).ln()
        })
        .sum()
}

/// A binned reference distribution captured from training data: `bins`
/// equal-width interior bins between the training min/max, plus an
/// underflow and an overflow bin (so serving-time values outside the
/// training range are *visible* as drift, not clamped away).
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct ReferenceProfile {
    lo: f64,
    width: f64,
    bins: usize,
    probs: Vec<f64>,
}

impl ReferenceProfile {
    /// Builds the profile from raw training-time values.
    ///
    /// # Panics
    /// Panics on empty input, zero bins, or non-finite values.
    pub fn from_values(values: &[f64], bins: usize) -> Self {
        assert!(!values.is_empty(), "reference profile needs data");
        assert!(bins > 0, "need at least one interior bin");
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in values {
            assert!(v.is_finite(), "reference values must be finite");
            lo = lo.min(v);
            hi = hi.max(v);
        }
        // Degenerate all-equal data still gets a positive-width grid.
        let width = if hi > lo { (hi - lo) / bins as f64 } else { 1.0 };
        let mut counts = vec![0u64; bins + 2];
        let mut profile = ReferenceProfile {
            lo,
            width,
            bins,
            probs: Vec::new(),
        };
        for &v in values {
            counts[profile.bin_of(v)] += 1;
        }
        let n = values.len() as f64;
        profile.probs = counts.iter().map(|&c| c as f64 / n).collect();
        profile
    }

    /// The bin index for `v`: `0` underflow, `1..=bins` interior,
    /// `bins + 1` overflow (non-finite values land in overflow).
    #[must_use]
    pub fn bin_of(&self, v: f64) -> usize {
        if !v.is_finite() || v >= self.lo + self.width * self.bins as f64 {
            return self.bins + 1;
        }
        if v < self.lo {
            return 0;
        }
        1 + ((v - self.lo) / self.width) as usize
    }

    /// Number of bins including the two outlier bins.
    #[must_use]
    pub fn n_bins(&self) -> usize {
        self.bins + 2
    }

    /// The reference probability per bin (sums to 1).
    #[must_use]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }
}

/// Drift-detection configuration.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct DriftConfig {
    /// Reference over the scalar input-feature projection; `None`
    /// disables input drift.
    pub input_ref: Option<ReferenceProfile>,
    /// Reference predicted-class distribution (length = class count);
    /// `None` disables prediction drift.
    pub pred_ref: Option<Vec<f64>>,
    /// Sliding window length, in closed monitor roll windows.
    pub windows: usize,
    /// Minimum observations in the sliding window before the detector
    /// renders a verdict (abstains below — no sparse false alerts).
    pub min_samples: u64,
    /// PSI above this fires an input-drift alert.
    pub psi_threshold: f64,
    /// KL (nats) above this fires a prediction-drift alert.
    pub kl_threshold: f64,
}

impl DriftConfig {
    /// Validates the knobs.
    ///
    /// # Panics
    /// Panics on zero windows, a non-normalized prediction reference, or
    /// non-positive thresholds.
    pub fn validate(&self) {
        assert!(self.windows > 0, "need at least one window");
        assert!(self.psi_threshold > 0.0, "PSI threshold must be positive");
        assert!(self.kl_threshold > 0.0, "KL threshold must be positive");
        if let Some(p) = &self.pred_ref {
            assert!(!p.is_empty(), "prediction reference needs classes");
            let sum: f64 = p.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-6,
                "prediction reference must sum to 1, got {sum}"
            );
        }
    }
}

/// The detector's verdict after a window roll.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use]
pub struct DriftStatus {
    /// PSI of the input sliding window vs the reference (`None` while
    /// abstaining: input drift disabled or window under-filled).
    pub input_psi: Option<f64>,
    /// KL of the predicted-class sliding window vs the reference.
    pub pred_kl: Option<f64>,
}

/// Sliding-window drift detector on the monitor's roll grid.
#[derive(Debug, Clone)]
#[must_use]
pub struct DriftDetector {
    cfg: DriftConfig,
    input_windows: VecDeque<Vec<u64>>,
    input_current: Vec<u64>,
    pred_windows: VecDeque<Vec<u64>>,
    pred_current: Vec<u64>,
}

impl DriftDetector {
    /// A fresh detector.
    ///
    /// # Panics
    /// Panics when `cfg` fails validation.
    pub fn new(cfg: DriftConfig) -> Self {
        cfg.validate();
        let input_bins = cfg.input_ref.as_ref().map_or(0, ReferenceProfile::n_bins);
        let pred_bins = cfg.pred_ref.as_ref().map_or(0, Vec::len);
        DriftDetector {
            cfg,
            input_windows: VecDeque::new(),
            input_current: vec![0; input_bins],
            pred_windows: VecDeque::new(),
            pred_current: vec![0; pred_bins],
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.cfg
    }

    /// Folds one served input-feature value into the open window.
    pub fn observe_input(&mut self, v: f64) {
        if let Some(r) = &self.cfg.input_ref {
            self.input_current[r.bin_of(v)] += 1;
        }
    }

    /// Folds one predicted class into the open window (out-of-range
    /// classes clamp to the last bin, which reads as drift).
    pub fn observe_pred(&mut self, class: usize) {
        if !self.pred_current.is_empty() {
            let i = class.min(self.pred_current.len() - 1);
            self.pred_current[i] += 1;
        }
    }

    /// Closes the open window and returns the sliding-window verdict.
    pub fn roll(&mut self) -> DriftStatus {
        let windows = self.cfg.windows;
        let input_psi = self.cfg.input_ref.as_ref().and_then(|r| {
            roll_ring(&mut self.input_windows, &mut self.input_current, windows);
            distribution(&self.input_windows, r.n_bins(), self.cfg.min_samples)
                .map(|obs| psi(r.probs(), &obs))
        });
        let pred_kl = self.cfg.pred_ref.clone().and_then(|p| {
            roll_ring(&mut self.pred_windows, &mut self.pred_current, windows);
            distribution(&self.pred_windows, p.len(), self.cfg.min_samples)
                .map(|obs| kl_divergence(&obs, &p))
        });
        DriftStatus { input_psi, pred_kl }
    }
}

fn roll_ring(ring: &mut VecDeque<Vec<u64>>, current: &mut Vec<u64>, depth: usize) {
    let bins = current.len();
    ring.push_back(std::mem::replace(current, vec![0; bins]));
    if ring.len() > depth {
        ring.pop_front();
    }
}

/// Normalized distribution over the ring's summed counts; `None` below
/// the sample floor.
fn distribution(ring: &VecDeque<Vec<u64>>, bins: usize, min_samples: u64) -> Option<Vec<f64>> {
    let mut counts = vec![0u64; bins];
    for w in ring {
        for (c, &v) in counts.iter_mut().zip(w) {
            *c += v;
        }
    }
    let total: u64 = counts.iter().sum();
    if total < min_samples.max(1) {
        return None;
    }
    Some(counts.iter().map(|&c| c as f64 / total as f64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ref_values() -> Vec<f64> {
        // Training feature ~ ramp over [0, 1).
        (0..500).map(|i| i as f64 / 500.0).collect()
    }

    #[test]
    fn psi_and_kl_are_zero_on_identical_distributions() {
        let p = vec![0.25, 0.25, 0.25, 0.25];
        assert!(psi(&p, &p).abs() < 1e-12);
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn psi_grows_with_shift_magnitude() {
        let r = ReferenceProfile::from_values(&ref_values(), 10);
        let observe = |shift: f64| {
            let mut counts = vec![0u64; r.n_bins()];
            for i in 0..500 {
                counts[r.bin_of(i as f64 / 500.0 + shift)] += 1;
            }
            let total: f64 = counts.iter().sum::<u64>() as f64;
            let obs: Vec<f64> = counts.iter().map(|&c| c as f64 / total).collect();
            psi(r.probs(), &obs)
        };
        let p0 = observe(0.0);
        let p_small = observe(0.2);
        let p_big = observe(0.8);
        assert!(p0 < 0.01, "no shift is stable: {p0}");
        assert!(p_small > p0, "small shift must register");
        assert!(p_big > p_small, "PSI must grow with magnitude");
        assert!(p_big.is_finite(), "epsilon smoothing keeps PSI finite");
    }

    #[test]
    fn outlier_bins_catch_out_of_range_serving_values() {
        let r = ReferenceProfile::from_values(&ref_values(), 8);
        assert_eq!(r.bin_of(-5.0), 0, "underflow bin");
        assert_eq!(r.bin_of(99.0), r.n_bins() - 1, "overflow bin");
        assert_eq!(r.bin_of(f64::NAN), r.n_bins() - 1, "non-finite to overflow");
        let mid = r.bin_of(0.5);
        assert!((1..=8).contains(&mid));
    }

    #[test]
    fn degenerate_constant_reference_still_bins() {
        let r = ReferenceProfile::from_values(&[3.0; 50], 4);
        let b = r.bin_of(3.0);
        assert!((1..=4).contains(&b), "constant data lands in an interior bin");
        assert!((r.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detector_abstains_until_the_sample_floor_then_verdicts() {
        let cfg = DriftConfig {
            input_ref: Some(ReferenceProfile::from_values(&ref_values(), 10)),
            pred_ref: Some(vec![0.5, 0.5]),
            windows: 4,
            min_samples: 20,
            psi_threshold: 0.25,
            kl_threshold: 0.5,
        };
        let mut d = DriftDetector::new(cfg);
        for i in 0..5 {
            d.observe_input(i as f64 / 10.0);
            d.observe_pred(i % 2);
        }
        let s = d.roll();
        assert_eq!(s.input_psi, None, "5 < 20 samples: abstain");
        assert_eq!(s.pred_kl, None);
        for i in 0..40 {
            d.observe_input((i % 10) as f64 / 10.0);
            d.observe_pred(i % 2);
        }
        let s = d.roll();
        let psi_v = s.input_psi.expect("sample floor met");
        let kl_v = s.pred_kl.expect("sample floor met");
        assert!(psi_v < 0.25, "in-distribution traffic is stable: {psi_v}");
        assert!(kl_v < 0.05, "balanced classes match the reference: {kl_v}");
    }

    #[test]
    fn detector_flags_a_shifted_window_and_collapsed_predictions() {
        let cfg = DriftConfig {
            input_ref: Some(ReferenceProfile::from_values(&ref_values(), 10)),
            pred_ref: Some(vec![0.5, 0.5]),
            windows: 2,
            min_samples: 10,
            psi_threshold: 0.25,
            kl_threshold: 0.3,
        };
        let mut d = DriftDetector::new(cfg);
        // Everything out of range, every prediction class 0.
        for _ in 0..50 {
            d.observe_input(7.0);
            d.observe_pred(0);
        }
        let s = d.roll();
        assert!(s.input_psi.expect("enough samples") > 0.25, "must flag shift");
        assert!(s.pred_kl.expect("enough samples") > 0.3, "must flag collapse");
        // Sliding window: two clean windows later the verdict clears.
        for _ in 0..2 {
            for i in 0..50 {
                d.observe_input((i % 10) as f64 / 10.0 + 0.05);
                d.observe_pred(i % 2);
            }
        }
        let _mid = d.roll();
        let s = d.roll();
        assert!(
            s.input_psi.expect("enough samples") < 0.25,
            "shifted window slid out"
        );
    }
}
