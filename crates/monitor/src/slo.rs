//! Declarative SLO rules and the typed alerts they emit.
//!
//! Rules are *data*, evaluated by the [`crate::Monitor`] on every window
//! roll against the live series. Three shapes cover the serving tier's
//! reliability questions:
//!
//! * [`SloRule::LatencyQuantile`] — "the pXX over the trailing *k*
//!   windows must stay under the target". This is the compliance view:
//!   it fires once the SLO is *already* violated.
//! * [`SloRule::BurnRate`] — the early-warning view, after the
//!   multi-window burn-rate alerting policy: with an error budget of
//!   `budget` (allowed fraction of requests over the latency objective),
//!   the burn rate is `(violating fraction) / budget`. The rule fires
//!   when **both** a fast and a slow trailing window burn faster than
//!   `threshold` — the fast window gives low detection latency, the slow
//!   window keeps a transient blip from paging.
//! * [`SloRule::HealthBelow`] — a floor on the per-replica EWMA health
//!   score (1 = every event healthy, 0 = shedding/crashed).
//!
//! Alerts are edge-triggered: one [`Alert`] when a rule's condition
//! becomes true for a scope, re-armed once it observes false again — so
//! a steady healthy run emits exactly zero alerts and the monitored
//! timeline stays bit-identical to the unmonitored one.

use dl_obs::{fields, Fields, ToFields};

/// One declarative SLO rule. Window counts are in monitor roll windows
/// (`MonitorConfig::window_s` each) and must fit the configured history.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub enum SloRule {
    /// Alert when `quantile(q)` of latency over the last `windows`
    /// closed windows exceeds `target_s`.
    LatencyQuantile {
        /// Rule name, carried on every alert it fires.
        name: String,
        /// Quantile in `[0, 1]`, e.g. `0.99`.
        q: f64,
        /// Latency objective in seconds.
        target_s: f64,
        /// Trailing closed windows the quantile is computed over.
        windows: usize,
    },
    /// Alert when the error-budget burn rate exceeds `threshold` over
    /// **both** the fast and the slow trailing window.
    BurnRate {
        /// Rule name, carried on every alert it fires.
        name: String,
        /// A request "violates" when its latency exceeds this.
        latency_slo_s: f64,
        /// Allowed violating fraction (the error budget), in `(0, 1)`.
        budget: f64,
        /// Fast (detection) window, in closed roll windows.
        fast_windows: usize,
        /// Slow (confirmation) window, in closed roll windows.
        slow_windows: usize,
        /// Burn-rate multiple that fires the alert (e.g. `4.0`).
        threshold: f64,
    },
    /// Alert when a replica's EWMA health score drops below `threshold`.
    HealthBelow {
        /// Rule name, carried on every alert it fires.
        name: String,
        /// Health floor in `[0, 1]`.
        threshold: f64,
    },
}

impl SloRule {
    /// The rule's name (alert correlation key).
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            SloRule::LatencyQuantile { name, .. }
            | SloRule::BurnRate { name, .. }
            | SloRule::HealthBelow { name, .. } => name,
        }
    }

    /// The deepest trailing-window history this rule needs.
    #[must_use]
    pub fn windows_needed(&self) -> usize {
        match self {
            SloRule::LatencyQuantile { windows, .. } => *windows,
            SloRule::BurnRate {
                fast_windows,
                slow_windows,
                ..
            } => (*fast_windows).max(*slow_windows),
            SloRule::HealthBelow { .. } => 1,
        }
    }

    /// Validates the rule's numeric domain.
    ///
    /// # Panics
    /// Panics on empty windows, quantiles/budgets/thresholds outside
    /// their domain, or non-positive targets.
    pub fn validate(&self) {
        match self {
            SloRule::LatencyQuantile {
                q,
                target_s,
                windows,
                ..
            } => {
                assert!((0.0..=1.0).contains(q), "quantile must lie in [0,1]");
                assert!(*target_s > 0.0, "latency target must be positive");
                assert!(*windows > 0, "need at least one window");
            }
            SloRule::BurnRate {
                latency_slo_s,
                budget,
                fast_windows,
                slow_windows,
                threshold,
                ..
            } => {
                assert!(*latency_slo_s > 0.0, "latency objective must be positive");
                assert!(
                    *budget > 0.0 && *budget < 1.0,
                    "error budget must lie in (0,1)"
                );
                assert!(
                    *fast_windows > 0 && *slow_windows >= *fast_windows,
                    "need fast <= slow windows, both positive"
                );
                assert!(*threshold > 0.0, "burn threshold must be positive");
            }
            SloRule::HealthBelow { threshold, .. } => {
                assert!(
                    (0.0..=1.0).contains(threshold),
                    "health floor must lie in [0,1]"
                );
            }
        }
    }
}

/// What kind of condition an [`Alert`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// A latency-quantile target is violated (compliance view).
    Latency,
    /// The error budget is burning too fast (early-warning view).
    BurnRate,
    /// A replica health score fell through its floor.
    Health,
    /// The served input distribution drifted off the reference profile.
    InputDrift,
    /// The predicted-class distribution drifted off the reference.
    PredictionDrift,
}

impl AlertKind {
    /// Stable lowercase label (trace field / JSON value).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AlertKind::Latency => "latency",
            AlertKind::BurnRate => "burn_rate",
            AlertKind::Health => "health",
            AlertKind::InputDrift => "input_drift",
            AlertKind::PredictionDrift => "prediction_drift",
        }
    }
}

/// One typed alert instant: a rule's condition became true for a scope.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct Alert {
    /// Simulated time the window roll that fired the alert closed at.
    pub at_s: f64,
    /// Name of the rule (or drift detector) that fired.
    pub rule: String,
    /// Condition category.
    pub kind: AlertKind,
    /// `"fleet"` or `"replica-N"`.
    pub scope: String,
    /// The measured value that crossed the threshold.
    pub value: f64,
    /// The threshold it crossed.
    pub threshold: f64,
}

impl ToFields for Alert {
    fn to_fields(&self) -> Fields {
        fields! {
            "at_s" => self.at_s,
            "rule" => self.rule.clone(),
            "kind" => self.kind.label(),
            "scope" => self.scope.clone(),
            "value" => self.value,
            "threshold" => self.threshold,
        }
    }
}

/// Burn rate of an error budget: `(violations / total) / budget`, with
/// an empty window burning at exactly `0.0` (the empty-window
/// convention — no traffic burns no budget).
#[must_use]
pub fn burn_rate(violations: u64, total: u64, budget: f64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    (violations as f64 / total as f64) / budget
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burn_rate_is_budget_relative_and_empty_safe() {
        assert_eq!(burn_rate(0, 0, 0.01), 0.0, "no traffic burns nothing");
        assert_eq!(burn_rate(0, 100, 0.01), 0.0);
        // 1% violating at a 1% budget: burning exactly at rate 1.
        assert!((burn_rate(1, 100, 0.01) - 1.0).abs() < 1e-12);
        // 10% violating at a 1% budget: 10x burn.
        assert!((burn_rate(10, 100, 0.01) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn rules_validate_their_domains() {
        SloRule::LatencyQuantile {
            name: "p99".into(),
            q: 0.99,
            target_s: 1e-4,
            windows: 8,
        }
        .validate();
        SloRule::BurnRate {
            name: "burn".into(),
            latency_slo_s: 1e-4,
            budget: 0.02,
            fast_windows: 2,
            slow_windows: 12,
            threshold: 4.0,
        }
        .validate();
        SloRule::HealthBelow {
            name: "health".into(),
            threshold: 0.5,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "fast <= slow")]
    fn burn_rule_rejects_inverted_windows() {
        SloRule::BurnRate {
            name: "bad".into(),
            latency_slo_s: 1e-4,
            budget: 0.02,
            fast_windows: 9,
            slow_windows: 3,
            threshold: 4.0,
        }
        .validate();
    }

    #[test]
    fn alert_serializes_with_stable_labels() {
        let a = Alert {
            at_s: 0.5,
            rule: "p99-slo".into(),
            kind: AlertKind::BurnRate,
            scope: "fleet".into(),
            value: 6.0,
            threshold: 4.0,
        };
        let f = a.to_fields();
        let json = dl_obs::export::fields_to_json(&f);
        assert!(json.contains("\"kind\":\"burn_rate\""), "{json}");
        assert!(json.contains("\"scope\":\"fleet\""), "{json}");
        assert_eq!(
            SloRule::HealthBelow {
                name: "h".into(),
                threshold: 0.3
            }
            .windows_needed(),
            1
        );
    }
}
