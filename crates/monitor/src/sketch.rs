//! Mergeable log-bucketed quantile sketches.
//!
//! [`QuantileSketch`] wraps `dl_obs::Histogram`: the bucket grid is
//! *fixed* (base-2 log scale, `HISTOGRAM_BUCKETS` buckets from
//! `2^HISTOGRAM_MIN_EXP`), never rescaled to the data, so two sketches
//! built from disjoint streams merge into exactly the sketch of the
//! concatenated stream — the merge law the tests below pin bit-for-bit.
//! That exactness is what makes per-replica and per-window sharding
//! safe: fleet quantiles are merges of replica sketches, sliding-window
//! quantiles are merges of per-window sketches, and neither depends on
//! merge order.

use dl_obs::Histogram;
use std::collections::VecDeque;

/// A mergeable quantile sketch on `dl_obs::Histogram`'s fixed log-scale
/// bucket grid.
#[derive(Debug, Clone, Default, PartialEq)]
#[must_use]
pub struct QuantileSketch {
    hist: Histogram,
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        self.hist.observe(value);
    }

    /// Folds `other` in. Exact on buckets/count/min/max (and therefore
    /// on every quantile); `sum` merges with f64 rounding.
    pub fn merge(&mut self, other: &QuantileSketch) {
        self.hist.merge(&other.hist);
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.hist.count
    }

    /// Mean of the observed values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.hist.mean()
    }

    /// Upper bucket edge of the `q`-quantile (0 when empty).
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        self.hist.quantile(q)
    }

    /// Median estimate.
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.hist.p50()
    }

    /// 99th percentile estimate.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.hist.p99()
    }

    /// 99.9th percentile estimate.
    #[must_use]
    pub fn p999(&self) -> f64 {
        self.hist.p999()
    }

    /// The underlying histogram (shared bucket grid with every
    /// `Recorder::observe` histogram, so sketches and recorder
    /// histograms are directly comparable).
    #[must_use]
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Wraps an existing histogram (e.g. one lifted out of a
    /// `TimelineRecorder`) as a sketch.
    pub fn from_histogram(hist: Histogram) -> Self {
        QuantileSketch { hist }
    }
}

/// A sliding-window family of sketches on the monitor's roll grid: one
/// open sketch for the current window, a bounded ring of closed ones,
/// and an all-time sketch that never evicts.
#[derive(Debug, Clone)]
#[must_use]
pub struct WindowedSketch {
    depth: usize,
    closed: VecDeque<QuantileSketch>,
    current: QuantileSketch,
    lifetime: QuantileSketch,
}

impl WindowedSketch {
    /// Retains the last `depth` closed windows.
    ///
    /// # Panics
    /// Panics when `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "need at least one window of history");
        WindowedSketch {
            depth,
            closed: VecDeque::new(),
            current: QuantileSketch::new(),
            lifetime: QuantileSketch::new(),
        }
    }

    /// Records into the current window (and the lifetime sketch).
    pub fn observe(&mut self, value: f64) {
        self.current.observe(value);
        self.lifetime.observe(value);
    }

    /// Closes the current window into the ring.
    pub fn roll(&mut self) {
        let done = std::mem::take(&mut self.current);
        self.closed.push_back(done);
        if self.closed.len() > self.depth {
            self.closed.pop_front();
        }
    }

    /// Merge of the most recent `k` closed windows (fewer when fewer
    /// exist); the current open window is *not* included, so rule
    /// evaluation on a roll boundary sees complete windows only.
    pub fn over_last(&self, k: usize) -> QuantileSketch {
        let mut out = QuantileSketch::new();
        for s in self.closed.iter().rev().take(k) {
            out.merge(s);
        }
        out
    }

    /// Every observation ever recorded, open window included.
    pub fn lifetime(&self) -> &QuantileSketch {
        &self.lifetime
    }

    /// Closed windows currently retained.
    #[must_use]
    pub fn closed_windows(&self) -> usize {
        self.closed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed.max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 1_000_000) as f64 * 1e-9
            })
            .collect()
    }

    fn sketch_of(values: &[f64]) -> QuantileSketch {
        let mut q = QuantileSketch::new();
        for &v in values {
            q.observe(v);
        }
        q
    }

    #[test]
    fn exact_merge_law_against_the_histogram() {
        // merge(sketch(A), sketch(B)) == sketch(A ++ B), and both equal
        // the Histogram a Recorder would have built from the combined
        // stream — bucket grids are shared, so equality is on the full
        // struct (sum included: identical observation order here).
        let a = stream(9, 300);
        let b = stream(1000, 211);
        let mut merged = sketch_of(&a);
        merged.merge(&sketch_of(&b));
        let mut combined = a.clone();
        combined.extend(&b);
        let direct = sketch_of(&combined);
        assert_eq!(merged.histogram().buckets, direct.histogram().buckets);
        assert_eq!(merged.count(), direct.count());
        assert_eq!(merged.histogram().min, direct.histogram().min);
        assert_eq!(merged.histogram().max, direct.histogram().max);
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(
                merged.quantile(q).to_bits(),
                direct.quantile(q).to_bits(),
                "quantile({q}) must be exactly merge-invariant"
            );
        }
        // And against a recorder histogram of the same stream.
        let mut rec_hist = dl_obs::Histogram::default();
        for &v in &combined {
            rec_hist.observe(v);
        }
        assert_eq!(merged.histogram().buckets, rec_hist.buckets);
    }

    #[test]
    fn windowed_sketch_slides_and_keeps_lifetime() {
        let mut w = WindowedSketch::new(2);
        for (i, chunk) in [1e-3, 1e-2, 1e-1].iter().enumerate() {
            for _ in 0..10 {
                w.observe(*chunk);
            }
            w.roll();
            assert_eq!(w.closed_windows(), (i + 1).min(2));
        }
        // Ring holds the last two windows (1e-2 and 1e-1 values).
        let last2 = w.over_last(2);
        assert_eq!(last2.count(), 20);
        assert!(last2.histogram().min >= 1e-2, "oldest window evicted");
        let last1 = w.over_last(1);
        assert_eq!(last1.count(), 10);
        assert!(last1.histogram().min >= 1e-1);
        // Lifetime never evicts.
        assert_eq!(w.lifetime().count(), 30);
        assert_eq!(w.lifetime().histogram().min, 1e-3);
        assert_eq!(w.over_last(0).count(), 0, "k=0 is empty");
    }

    #[test]
    fn empty_sketch_quantiles_are_zero() {
        let q = QuantileSketch::new();
        assert_eq!(q.count(), 0);
        assert_eq!(q.p50(), 0.0);
        assert_eq!(q.p999(), 0.0);
        assert_eq!(q.mean(), 0.0);
    }
}
