//! Sliding time-window counters/rates and EWMA gauges.
//!
//! Two windowing disciplines coexist in the monitor:
//!
//! * [`RateWindow`] holds raw event timestamps and answers "what is the
//!   rate over the trailing `window_s` seconds as of *any* time `t`" —
//!   the shape the serving autoscaler needs (its evaluation grid is not
//!   the monitor's roll grid). This is the same primitive
//!   `dl_serve::Autoscaler` now consumes instead of its private deque.
//! * [`WindowCounter`] counts events on the monitor's fixed roll grid:
//!   the pipeline closes one window per `window_s` and queries sums over
//!   the last *k* closed windows (the fast/slow burn-rate pairs).
//!
//! **Empty-window convention**: a window containing no events has rate
//! exactly `0.0` — never `NaN` — mirroring the empty-slice convention of
//! `dl_serve::report::percentile`. Rates are always `count / window_s`
//! with the configured window length as denominator, *not* the observed
//! span, so a half-filled window reads as a genuinely lower rate.

use std::collections::VecDeque;

/// A sliding window over raw event timestamps, answering windowed counts
/// and rates at arbitrary query times.
///
/// Timestamps must be pushed in non-decreasing order (simulated time
/// never runs backwards). The window is closed at its trailing edge: an
/// event at exactly `now - window_s` still counts, matching the eviction
/// rule the serving autoscaler has always used (`front < now - window`
/// evicts), so refactoring the autoscaler onto this type is
/// bit-identical.
#[derive(Debug, Clone)]
#[must_use]
pub struct RateWindow {
    window_s: f64,
    times: VecDeque<f64>,
}

impl RateWindow {
    /// A fresh window of `window_s` seconds.
    ///
    /// # Panics
    /// Panics unless `window_s` is positive and finite.
    pub fn new(window_s: f64) -> Self {
        assert!(
            window_s.is_finite() && window_s > 0.0,
            "window must be positive, got {window_s}"
        );
        RateWindow {
            window_s,
            times: VecDeque::new(),
        }
    }

    /// The configured window length.
    #[must_use]
    pub fn window_s(&self) -> f64 {
        self.window_s
    }

    /// Records one event at `t_s` (non-decreasing).
    pub fn push(&mut self, t_s: f64) {
        self.times.push_back(t_s);
    }

    /// Drops events older than the window trailing `now_s` (strictly
    /// before `now_s - window_s`; the boundary timestamp survives).
    pub fn evict(&mut self, now_s: f64) {
        while self
            .times
            .front()
            .is_some_and(|&t| t < now_s - self.window_s)
        {
            self.times.pop_front();
        }
    }

    /// Events inside the window trailing `now_s`.
    #[must_use]
    pub fn count_at(&mut self, now_s: f64) -> usize {
        self.evict(now_s);
        self.times.len()
    }

    /// Windowed rate at `now_s`: `count / window_s`. An empty window is
    /// exactly `0.0` (the documented convention), never `NaN`.
    #[must_use]
    pub fn rate_at(&mut self, now_s: f64) -> f64 {
        self.count_at(now_s) as f64 / self.window_s
    }
}

/// An exponentially-weighted moving average gauge.
///
/// The first observation primes the gauge to its value (no bias toward
/// zero); afterwards `value <- alpha * v + (1 - alpha) * value`. An
/// unprimed gauge reads `0.0` — the same empty convention as
/// [`RateWindow::rate_at`].
#[derive(Debug, Clone)]
#[must_use]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// A gauge with smoothing factor `alpha`.
    ///
    /// # Panics
    /// Panics unless `alpha` lies in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must lie in (0, 1], got {alpha}"
        );
        Ewma { alpha, value: None }
    }

    /// Folds one observation in.
    pub fn observe(&mut self, v: f64) {
        self.value = Some(match self.value {
            None => v,
            Some(old) => self.alpha * v + (1.0 - self.alpha) * old,
        });
    }

    /// Hard-sets the gauge (crash resets a replica's health to 0).
    pub fn set(&mut self, v: f64) {
        self.value = Some(v);
    }

    /// Current smoothed value; `0.0` while unprimed.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }

    /// True once at least one observation arrived.
    #[must_use]
    pub fn is_primed(&self) -> bool {
        self.value.is_some()
    }
}

/// A counter on the monitor's roll grid: events accumulate into the
/// current window; [`WindowCounter::roll`] closes it into a bounded ring
/// of per-window counts.
#[derive(Debug, Clone)]
#[must_use]
pub struct WindowCounter {
    depth: usize,
    closed: VecDeque<u64>,
    current: u64,
    total: u64,
}

impl WindowCounter {
    /// A counter retaining the last `depth` closed windows.
    ///
    /// # Panics
    /// Panics when `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "need at least one window of history");
        WindowCounter {
            depth,
            closed: VecDeque::new(),
            current: 0,
            total: 0,
        }
    }

    /// Adds `n` events to the current (open) window.
    pub fn add(&mut self, n: u64) {
        self.current += n;
        self.total += n;
    }

    /// Closes the current window into the ring and opens a fresh one.
    pub fn roll(&mut self) {
        self.closed.push_back(self.current);
        if self.closed.len() > self.depth {
            self.closed.pop_front();
        }
        self.current = 0;
    }

    /// Count in the open window.
    #[must_use]
    pub fn current(&self) -> u64 {
        self.current
    }

    /// All-time total, open window included.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of closed windows retained (saturates at the depth).
    #[must_use]
    pub fn closed_windows(&self) -> usize {
        self.closed.len()
    }

    /// Sum over the most recent `k` closed windows (fewer when fewer
    /// exist). `k = 0` is `0`.
    #[must_use]
    pub fn over_last(&self, k: usize) -> u64 {
        self.closed.iter().rev().take(k).sum()
    }

    /// Rate over the most recent `k` closed windows of length
    /// `window_s`: `sum / (k * window_s)`, with the *requested* span as
    /// denominator even before `k` windows exist — and exactly `0.0`
    /// when `k` is zero (the empty-window convention).
    #[must_use]
    pub fn rate_over_last(&self, k: usize, window_s: f64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        self.over_last(k) as f64 / (k as f64 * window_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_rate_window_is_exactly_zero() {
        let mut w = RateWindow::new(2.0);
        assert_eq!(w.rate_at(0.0), 0.0, "never NaN");
        assert_eq!(w.rate_at(1e9), 0.0);
        assert_eq!(w.count_at(5.0), 0);
        // Fill, then query far past the window: empty again, still 0.0.
        for i in 0..10 {
            w.push(i as f64 * 0.1);
        }
        assert_eq!(w.count_at(1.0), 10);
        assert_eq!(w.rate_at(1.0), 5.0);
        assert_eq!(w.rate_at(100.0), 0.0, "fully evicted window reads 0");
    }

    #[test]
    fn rate_window_keeps_boundary_timestamp() {
        // The autoscaler's historical eviction rule: `t < now - window`
        // evicts, so `t == now - window` stays. The refactor onto
        // RateWindow must preserve this bit-for-bit.
        let mut w = RateWindow::new(2.0);
        w.push(0.0);
        w.push(1.0);
        assert_eq!(w.count_at(2.0), 2, "t=0 is exactly now-window: kept");
        assert_eq!(w.count_at(2.5), 1, "t=0 now strictly older: evicted");
    }

    #[test]
    fn ewma_primes_on_first_observation_and_smooths_after() {
        let mut g = Ewma::new(0.5);
        assert!(!g.is_primed());
        assert_eq!(g.value(), 0.0, "unprimed reads the empty convention");
        g.observe(8.0);
        assert_eq!(g.value(), 8.0, "first observation primes, no zero bias");
        g.observe(0.0);
        assert_eq!(g.value(), 4.0);
        g.set(0.0);
        assert_eq!(g.value(), 0.0, "hard reset");
        g.observe(1.0);
        assert_eq!(g.value(), 0.5);
    }

    #[test]
    fn window_counter_rolls_and_sums_trailing_windows() {
        let mut c = WindowCounter::new(3);
        for win in 0..5u64 {
            c.add(win + 1); // windows count 1,2,3,4,5
            c.roll();
        }
        assert_eq!(c.closed_windows(), 3, "ring bounded at depth");
        assert_eq!(c.over_last(1), 5);
        assert_eq!(c.over_last(2), 9);
        assert_eq!(c.over_last(3), 12);
        assert_eq!(c.over_last(10), 12, "asking past history saturates");
        assert_eq!(c.total(), 15, "all-time total survives eviction");
        assert_eq!(c.rate_over_last(2, 0.5), 9.0);
        assert_eq!(c.rate_over_last(0, 0.5), 0.0, "k=0 is the empty convention");
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn rejects_non_positive_window() {
        let _ = RateWindow::new(0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must lie in (0, 1]")]
    fn rejects_bad_alpha() {
        let _ = Ewma::new(1.5);
    }
}
