//! # dl-ensemble
//!
//! Fast deep-ensemble training (tutorial §2.1). Four strategies spanning the
//! accuracy / training-time / memory / inference-time tradeoff:
//!
//! * [`independent`] — the gold-standard baseline: every member trained
//!   from scratch. Best accuracy, cost scales linearly with members.
//! * [`snapshot`] — Snapshot Ensembles: one training run with a cyclic
//!   cosine schedule; a copy of the model is saved at the end of every
//!   annealing cycle. M members for the training cost of one.
//! * [`fge`] — Fast Geometric Ensembles: warm up once, then collect
//!   models at the minima of short triangular learning-rate cycles.
//! * [`treenet`] — TreeNets: members share a trunk of early layers and
//!   branch into per-member heads; the trunk is trained once and evaluated
//!   once at inference, cutting memory *and* inference time.
//! * [`mothernet`] — MotherNets: train a small "mother" network capturing
//!   the shared structure, hatch every (possibly wider) member from her
//!   weights, then briefly fine-tune each member.
//!
//! All strategies return an [`Ensemble`] plus an [`EnsembleReport`] with the
//! resource metrics the tutorial's tradeoff framework compares.

#![warn(missing_docs)]

pub mod fge;
pub mod mothernet;
pub mod snapshot;
pub mod treenet;

pub use fge::{fge, FgeConfig};
// independent_parallel is defined below in this module.
pub use mothernet::{hatch, mothernet, MotherNetConfig};
pub use snapshot::snapshot;
pub use treenet::{treenet, TreeNet, TreeNetConfig};

use dl_nn::{loss::softmax, Dataset, Network, Optimizer, TrainConfig, Trainer};
use dl_tensor::Tensor;
use rand::rngs::StdRng;

/// A bag of trained member networks combined by probability averaging.
#[derive(Debug, Clone)]
pub struct Ensemble {
    /// Trained members.
    pub members: Vec<Network>,
}

impl Ensemble {
    /// Builds an ensemble from trained members.
    ///
    /// # Panics
    /// Panics when `members` is empty.
    pub fn new(members: Vec<Network>) -> Self {
        assert!(!members.is_empty(), "an ensemble needs at least one member");
        Ensemble { members }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ensemble has no members (cannot happen post-`new`).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Mean of member softmax probabilities.
    pub fn predict_proba(&mut self, x: &Tensor) -> Tensor {
        let mut acc: Option<Tensor> = None;
        for m in &mut self.members {
            let p = softmax(&m.forward(x, false));
            acc = Some(match acc {
                None => p,
                Some(a) => &a + &p,
            });
        }
        let total = acc.expect("non-empty ensemble");
        &total * (1.0 / self.members.len() as f32)
    }

    /// Class predictions by averaged probability.
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        self.predict_proba(x).argmax_rows()
    }

    /// Ensemble accuracy on a dataset.
    pub fn accuracy(&mut self, data: &Dataset) -> f64 {
        dl_nn::metrics::accuracy(&self.predict(&data.x), &data.y)
    }

    /// Total parameters across members (the tutorial's memory metric).
    pub fn total_params(&self) -> usize {
        self.members.iter().map(Network::param_count).sum()
    }

    /// Total forward FLOPs for one input across all members (the
    /// inference-time metric).
    pub fn inference_flops(&self) -> u64 {
        self.members.iter().map(|m| m.cost_profile(1).forward_flops).sum()
    }
}

/// Resource accounting for one ensemble-training strategy.
#[derive(Debug, Clone)]
pub struct EnsembleReport {
    /// Strategy name.
    pub strategy: &'static str,
    /// Ensemble accuracy on the evaluation data.
    pub accuracy: f64,
    /// Total training FLOPs spent.
    pub train_flops: u64,
    /// Total parameters held at inference.
    pub params: usize,
    /// Forward FLOPs per input at inference.
    pub inference_flops: u64,
}

/// Trains `members` networks of architecture `dims` independently — the
/// baseline every fast method is compared against.
pub fn independent(
    data: &Dataset,
    eval: &Dataset,
    dims: &[usize],
    members: usize,
    config: &TrainConfig,
    rng: &mut StdRng,
) -> (Ensemble, EnsembleReport) {
    assert!(members > 0, "need at least one member");
    let mut nets = Vec::with_capacity(members);
    let mut flops = 0;
    for m in 0..members {
        let mut net = Network::mlp(dims, rng);
        let mut trainer = Trainer::new(
            TrainConfig {
                seed: config.seed.wrapping_add(m as u64),
                ..config.clone()
            },
            Optimizer::adam(0.01),
        );
        trainer.fit(&mut net, data);
        flops += trainer.flops;
        nets.push(net);
    }
    let mut ensemble = Ensemble::new(nets);
    let report = EnsembleReport {
        strategy: "independent",
        accuracy: ensemble.accuracy(eval),
        train_flops: flops,
        params: ensemble.total_params(),
        inference_flops: ensemble.inference_flops(),
    };
    (ensemble, report)
}

/// [`independent`] with members trained on OS threads (crossbeam scoped
/// threads): the embarrassingly-parallel structure of independent ensemble
/// training made literal. Produces networks identical to the sequential
/// version (each member's seed is derived the same way), so the only
/// difference is wall-clock.
pub fn independent_parallel(
    data: &Dataset,
    eval: &Dataset,
    dims: &[usize],
    members: usize,
    config: &TrainConfig,
    seed: u64,
) -> (Ensemble, EnsembleReport) {
    assert!(members > 0, "need at least one member");
    let results: Vec<(Network, u64)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..members)
            .map(|m| {
                let config = config.clone();
                scope.spawn(move |_| {
                    let mut rng = dl_tensor::init::rng(seed.wrapping_add(m as u64));
                    let mut net = Network::mlp(dims, &mut rng);
                    let mut trainer = Trainer::new(
                        TrainConfig {
                            seed: config.seed.wrapping_add(m as u64),
                            ..config
                        },
                        Optimizer::adam(0.01),
                    );
                    trainer.fit(&mut net, data);
                    (net, trainer.flops)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("member training panicked"))
            .collect()
    })
    .expect("thread scope failed");
    let flops = results.iter().map(|(_, f)| f).sum();
    let mut ensemble = Ensemble::new(results.into_iter().map(|(n, _)| n).collect());
    let report = EnsembleReport {
        strategy: "independent-parallel",
        accuracy: ensemble.accuracy(eval),
        train_flops: flops,
        params: ensemble.total_params(),
        inference_flops: ensemble.inference_flops(),
    };
    (ensemble, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_data::blobs;
    use dl_tensor::init::rng;

    #[test]
    fn ensemble_probability_averaging() {
        let mut r = rng(0);
        let a = Network::mlp(&[2, 4, 2], &mut r);
        let b = Network::mlp(&[2, 4, 2], &mut r);
        let mut ens = Ensemble::new(vec![a.clone(), b.clone()]);
        let x = dl_tensor::init::uniform([3, 2], -1.0, 1.0, &mut r);
        let p = ens.predict_proba(&x);
        let pa = softmax(&a.clone().forward(&x, false));
        let pb = softmax(&b.clone().forward(&x, false));
        let expected = &(&pa + &pb) * 0.5;
        assert!(p.approx_eq(&expected, 1e-6));
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_rejected() {
        Ensemble::new(vec![]);
    }

    #[test]
    fn independent_ensemble_beats_chance_and_accounts_resources() {
        let data = blobs(150, 3, 4, 6.0, 0.4, 1);
        let eval = blobs(60, 3, 4, 6.0, 0.4, 2);
        let mut r = rng(3);
        let (ens, report) = independent(
            &data,
            &eval,
            &[4, 16, 3],
            3,
            &TrainConfig {
                epochs: 15,
                ..TrainConfig::default()
            },
            &mut r,
        );
        assert_eq!(ens.len(), 3);
        assert!(report.accuracy > 0.8, "accuracy {}", report.accuracy);
        assert_eq!(report.params, ens.total_params());
        // three members -> triple the single-net params
        let single = Network::mlp(&[4, 16, 3], &mut r).param_count();
        assert_eq!(report.params, single * 3);
        assert!(report.train_flops > 0);
        assert_eq!(report.inference_flops, ens.inference_flops());
    }

    #[test]
    fn parallel_training_learns_and_is_deterministic() {
        let data = blobs(120, 2, 4, 6.0, 0.4, 6);
        let cfg = TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        };
        let (a, ra) = independent_parallel(&data, &data, &[4, 12, 2], 3, &cfg, 7);
        let (b, rb) = independent_parallel(&data, &data, &[4, 12, 2], 3, &cfg, 7);
        assert_eq!(a.len(), 3);
        assert!(ra.accuracy > 0.9, "accuracy {}", ra.accuracy);
        assert_eq!(ra.accuracy, rb.accuracy, "thread order must not matter");
        for (ma, mb) in a.members.iter().zip(&b.members) {
            assert_eq!(ma.flat_params(), mb.flat_params());
        }
    }

    #[test]
    fn ensemble_is_at_least_as_good_as_worst_member() {
        let data = blobs(150, 2, 3, 6.0, 0.5, 4);
        let mut r = rng(5);
        let (mut ens, _) = independent(
            &data,
            &data,
            &[3, 8, 2],
            3,
            &TrainConfig {
                epochs: 10,
                ..TrainConfig::default()
            },
            &mut r,
        );
        let worst = ens
            .members
            .iter()
            .map(|m| Trainer::evaluate(&mut m.clone(), &data))
            .fold(f64::INFINITY, f64::min);
        let ens_acc = ens.accuracy(&data);
        assert!(
            ens_acc >= worst - 0.05,
            "ensemble {ens_acc} much worse than worst member {worst}"
        );
    }
}
