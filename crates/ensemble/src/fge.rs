//! Fast Geometric Ensembles (Garipov et al.).
//!
//! Where Snapshot Ensembles restart a cosine schedule from scratch, FGE
//! first trains to a good region (warmup), then runs *short triangular*
//! learning-rate cycles around it, collecting a model at every cycle
//! minimum. The collected models sit in one connected low-loss region, so
//! short cycles suffice — FGE reaches ensemble quality even faster than
//! snapshot restarts.

use crate::{Ensemble, EnsembleReport};
use dl_nn::{Dataset, LrSchedule, Network, Optimizer, TrainConfig, Trainer};
use rand::rngs::StdRng;
use std::cell::RefCell;
use std::rc::Rc;

/// FGE configuration.
#[derive(Debug, Clone)]
pub struct FgeConfig {
    /// Warmup epochs at the base rate before cycling starts.
    pub warmup_epochs: usize,
    /// Members to collect (one per triangular cycle).
    pub members: usize,
    /// Epochs per triangular cycle (short, typically 2-4).
    pub cycle_len: usize,
    /// Low-rate multiplier at each cycle minimum.
    pub floor: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for FgeConfig {
    fn default() -> Self {
        FgeConfig {
            warmup_epochs: 10,
            members: 4,
            cycle_len: 4,
            floor: 0.1,
            seed: 0,
        }
    }
}

/// Trains an FGE ensemble: warmup, then `members` short triangular cycles
/// collecting a model at each minimum.
///
/// # Panics
/// Panics when `members == 0` or `cycle_len < 2`.
pub fn fge(
    data: &Dataset,
    eval: &Dataset,
    dims: &[usize],
    config: &FgeConfig,
    rng: &mut StdRng,
) -> (Ensemble, EnsembleReport) {
    assert!(config.members > 0, "FGE needs at least one member");
    assert!(config.cycle_len >= 2, "triangular cycles need length >= 2");
    let mut net = Network::mlp(dims, rng);
    // warmup at constant rate
    let mut warmup = Trainer::new(
        TrainConfig {
            epochs: config.warmup_epochs,
            seed: config.seed,
            ..TrainConfig::default()
        },
        Optimizer::adam(0.01),
    );
    warmup.fit(&mut net, data);
    let mut flops = warmup.flops;
    // cycling phase: plain SGD responds predictably to the LR triangle
    let mut cycler = Trainer::new(
        TrainConfig {
            epochs: config.members * config.cycle_len,
            schedule: LrSchedule::CyclicTriangular {
                cycle_len: config.cycle_len,
                floor: config.floor,
            },
            seed: config.seed.wrapping_add(1),
            ..TrainConfig::default()
        },
        Optimizer::sgd(0.05),
    );
    let collected: Rc<RefCell<Vec<Network>>> =
        Rc::new(RefCell::new(Vec::with_capacity(config.members)));
    let sink = collected.clone();
    let wanted = config.members;
    cycler.on_epoch(move |net, record| {
        if record.cycle_end && sink.borrow().len() < wanted {
            let mut copy = net.clone();
            copy.clear_caches();
            sink.borrow_mut().push(copy);
        }
    });
    cycler.fit(&mut net, data);
    flops += cycler.flops;
    drop(cycler);
    let members = Rc::try_unwrap(collected)
        .expect("trainer dropped its hook")
        .into_inner();
    let mut ensemble = Ensemble::new(members);
    let report = EnsembleReport {
        strategy: "fge",
        accuracy: ensemble.accuracy(eval),
        train_flops: flops,
        params: ensemble.total_params(),
        inference_flops: ensemble.inference_flops(),
    };
    (ensemble, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::independent;
    use dl_data::blobs;
    use dl_tensor::init::rng;

    #[test]
    fn fge_collects_requested_members() {
        let data = blobs(120, 2, 4, 6.0, 0.4, 0);
        let mut r = rng(1);
        let (ens, report) = fge(&data, &data, &[4, 16, 2], &FgeConfig::default(), &mut r);
        assert_eq!(ens.len(), 4);
        assert_eq!(report.strategy, "fge");
        assert!(report.accuracy > 0.85, "accuracy {}", report.accuracy);
    }

    #[test]
    fn fge_members_differ() {
        let data = blobs(100, 2, 4, 6.0, 0.4, 2);
        let mut r = rng(3);
        let (ens, _) = fge(
            &data,
            &data,
            &[4, 12, 2],
            &FgeConfig {
                members: 3,
                ..FgeConfig::default()
            },
            &mut r,
        );
        assert_ne!(ens.members[0].flat_params(), ens.members[1].flat_params());
        assert_ne!(ens.members[1].flat_params(), ens.members[2].flat_params());
    }

    #[test]
    fn fge_cheaper_than_independent_at_same_members() {
        let data = blobs(150, 3, 4, 6.0, 0.4, 4);
        let mut r = rng(5);
        let cfg = FgeConfig {
            warmup_epochs: 10,
            members: 4,
            cycle_len: 3,
            ..FgeConfig::default()
        };
        let (_, f) = fge(&data, &data, &[4, 16, 3], &cfg, &mut r);
        let (_, i) = independent(
            &data,
            &data,
            &[4, 16, 3],
            4,
            &TrainConfig {
                epochs: 22, // what the single FGE run spends in total
                ..TrainConfig::default()
            },
            &mut r,
        );
        assert!(
            f.train_flops * 3 < i.train_flops,
            "fge {} vs independent {}",
            f.train_flops,
            i.train_flops
        );
        assert!(f.accuracy > i.accuracy - 0.1);
    }

    #[test]
    #[should_panic(expected = "length >= 2")]
    fn fge_rejects_degenerate_cycles() {
        let data = blobs(20, 2, 2, 6.0, 0.4, 6);
        fge(
            &data,
            &data,
            &[2, 4, 2],
            &FgeConfig {
                cycle_len: 1,
                ..FgeConfig::default()
            },
            &mut rng(7),
        );
    }
}
