//! TreeNets: ensemble members that share a trunk of early layers.
//!
//! The tutorial highlights TreeNets as exploiting *structural similarity*:
//! early layers learn generic features, so members can share them. The trunk
//! is trained once (receiving averaged gradient flow from all branches) and
//! evaluated once per input at inference — cutting both the memory and the
//! inference-time metric relative to independent members.

use crate::{Ensemble, EnsembleReport};
use dl_nn::{
    loss::{one_hot, softmax, Loss},
    Dataset, Network, Optimizer,
};
use dl_tensor::{init, Tensor};
use rand::rngs::StdRng;

/// TreeNet architecture and training configuration.
#[derive(Debug, Clone)]
pub struct TreeNetConfig {
    /// Widths of the shared trunk, starting at the input width
    /// (e.g. `[in, 32]`). The trunk ends with a ReLU.
    pub trunk_dims: Vec<usize>,
    /// Widths of each branch, starting at the trunk output width and ending
    /// at the class count (e.g. `[32, 16, classes]`).
    pub branch_dims: Vec<usize>,
    /// Number of branches (ensemble members).
    pub members: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Batch size.
    pub batch_size: usize,
    /// Seed for initialization and shuffling.
    pub seed: u64,
}

/// A trunk shared by `members` branch networks.
#[derive(Debug, Clone)]
pub struct TreeNet {
    /// Shared early layers.
    pub trunk: Network,
    /// Per-member heads.
    pub branches: Vec<Network>,
}

impl TreeNet {
    /// Builds a TreeNet per `config` with fresh weights.
    ///
    /// # Panics
    /// Panics when trunk output width and branch input width disagree, or
    /// `members == 0`.
    pub fn new(config: &TreeNetConfig, rng: &mut StdRng) -> Self {
        assert!(config.members > 0, "TreeNet needs at least one branch");
        assert_eq!(
            *config.trunk_dims.last().expect("trunk dims non-empty"),
            config.branch_dims[0],
            "trunk output width must equal branch input width"
        );
        let mut trunk = Network::mlp(&config.trunk_dims, rng);
        // trunk ends in ReLU so branches see nonlinear features
        *trunk.layers_mut() = {
            let mut ls = trunk.layers().to_vec();
            ls.push(dl_nn::Layer::ReLU(dl_nn::layers::ReLU::new()));
            ls
        };
        let branches = (0..config.members)
            .map(|_| Network::mlp(&config.branch_dims, rng))
            .collect();
        TreeNet { trunk, branches }
    }

    /// Averaged branch probabilities (trunk evaluated once).
    pub fn predict_proba(&mut self, x: &Tensor) -> Tensor {
        let features = self.trunk.forward(x, false);
        let mut acc: Option<Tensor> = None;
        for b in &mut self.branches {
            let p = softmax(&b.forward(&features, false));
            acc = Some(match acc {
                None => p,
                Some(a) => &a + &p,
            });
        }
        &acc.expect("at least one branch") * (1.0 / self.branches.len() as f32)
    }

    /// Class predictions.
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        self.predict_proba(x).argmax_rows()
    }

    /// Accuracy on a dataset.
    pub fn accuracy(&mut self, data: &Dataset) -> f64 {
        dl_nn::metrics::accuracy(&self.predict(&data.x), &data.y)
    }

    /// Total parameters (trunk counted once — the memory saving).
    pub fn total_params(&self) -> usize {
        self.trunk.param_count() + self.branches.iter().map(Network::param_count).sum::<usize>()
    }

    /// Forward FLOPs per input (trunk counted once — the inference saving).
    pub fn inference_flops(&self) -> u64 {
        self.trunk.cost_profile(1).forward_flops
            + self
                .branches
                .iter()
                .map(|b| b.cost_profile(1).forward_flops)
                .sum::<u64>()
    }

    /// One training step on a batch: trunk forward once, every branch
    /// forward/backward, branch input-gradients averaged into the trunk.
    /// Returns the mean branch loss.
    pub fn train_step(
        &mut self,
        x: &Tensor,
        targets: &Tensor,
        trunk_opt: &mut Optimizer,
        branch_opts: &mut [Optimizer],
    ) -> f32 {
        let features = self.trunk.forward(x, true);
        let mut trunk_grad: Option<Tensor> = None;
        let mut total_loss = 0.0;
        for (branch, opt) in self.branches.iter_mut().zip(branch_opts.iter_mut()) {
            branch.zero_grads();
            let logits = branch.forward(&features, true);
            let (loss, grad) = Loss::SoftmaxCrossEntropy.evaluate(&logits, targets);
            let gin = branch.backward(&grad);
            let mut pg = branch.params_and_grads();
            opt.step(&mut pg, 1.0);
            total_loss += loss;
            trunk_grad = Some(match trunk_grad {
                None => gin,
                Some(a) => &a + &gin,
            });
        }
        let gin = &trunk_grad.expect("at least one branch") * (1.0 / self.branches.len() as f32);
        self.trunk.zero_grads();
        self.trunk.backward(&gin);
        let mut pg = self.trunk.params_and_grads();
        trunk_opt.step(&mut pg, 1.0);
        total_loss / self.branches.len() as f32
    }
}

/// Trains a TreeNet and reports ensemble-level metrics.
pub fn treenet(
    data: &Dataset,
    eval: &Dataset,
    config: &TreeNetConfig,
    rng: &mut StdRng,
) -> (TreeNet, EnsembleReport) {
    let mut tree = TreeNet::new(config, rng);
    let mut trunk_opt = Optimizer::adam(0.01);
    let mut branch_opts: Vec<Optimizer> =
        (0..config.members).map(|_| Optimizer::adam(0.01)).collect();
    let mut shuffle_rng = init::rng(config.seed);
    // FLOP accounting: trunk once + branches per step
    let trunk_step = tree.trunk.cost_profile(config.batch_size).train_step_flops();
    let branch_step: u64 = tree
        .branches
        .iter()
        .map(|b| b.cost_profile(config.batch_size).train_step_flops())
        .sum();
    let mut flops = 0u64;
    for _ in 0..config.epochs {
        let order = init::permutation(data.len(), &mut shuffle_rng);
        for chunk in order.chunks(config.batch_size) {
            let xb = data.x.select_rows(chunk);
            let labels: Vec<usize> = chunk.iter().map(|&i| data.y[i]).collect();
            let targets = one_hot(&labels, data.classes);
            tree.train_step(&xb, &targets, &mut trunk_opt, &mut branch_opts);
            flops += trunk_step + branch_step;
        }
    }
    let report = EnsembleReport {
        strategy: "treenet",
        accuracy: tree.accuracy(eval),
        train_flops: flops,
        params: tree.total_params(),
        inference_flops: tree.inference_flops(),
    };
    (tree, report)
}

/// Converts a trained TreeNet into a flat [`Ensemble`] by concatenating the
/// trunk and each branch into a standalone network (for interoperability
/// with code that expects plain ensembles; loses the sharing benefit).
pub fn flatten(tree: &TreeNet) -> Ensemble {
    let members = tree
        .branches
        .iter()
        .map(|branch| {
            let mut net = Network::new(tree.trunk.input_dim);
            let mut layers = tree.trunk.layers().to_vec();
            layers.extend(branch.layers().iter().cloned());
            *net.layers_mut() = layers;
            net
        })
        .collect();
    Ensemble::new(members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::independent;
    use dl_nn::TrainConfig;
    use dl_data::blobs;
    use dl_tensor::init::rng;

    fn config() -> TreeNetConfig {
        TreeNetConfig {
            trunk_dims: vec![4, 16],
            branch_dims: vec![16, 8, 3],
            members: 3,
            epochs: 20,
            batch_size: 32,
            seed: 0,
        }
    }

    #[test]
    fn treenet_learns() {
        let data = blobs(150, 3, 4, 6.0, 0.4, 0);
        let mut r = rng(1);
        let (mut tree, report) = treenet(&data, &data, &config(), &mut r);
        assert!(report.accuracy > 0.85, "accuracy {}", report.accuracy);
        assert_eq!(tree.branches.len(), 3);
        assert_eq!(tree.predict(&data.x).len(), 150);
    }

    #[test]
    fn treenet_saves_params_and_inference_vs_independent() {
        let data = blobs(120, 3, 4, 6.0, 0.4, 2);
        let mut r = rng(3);
        let (tree, tree_report) = treenet(&data, &data, &config(), &mut r);
        let (_, indep_report) = independent(
            &data,
            &data,
            &[4, 16, 8, 3],
            3,
            &TrainConfig {
                epochs: 20,
                ..TrainConfig::default()
            },
            &mut r,
        );
        assert!(
            tree_report.params < indep_report.params,
            "treenet {} >= independent {}",
            tree_report.params,
            indep_report.params
        );
        assert!(tree_report.inference_flops < indep_report.inference_flops);
        assert_eq!(tree.total_params(), tree_report.params);
    }

    #[test]
    #[should_panic(expected = "trunk output width")]
    fn mismatched_trunk_branch_rejected() {
        let mut r = rng(4);
        TreeNet::new(
            &TreeNetConfig {
                trunk_dims: vec![4, 16],
                branch_dims: vec![8, 3],
                members: 2,
                epochs: 1,
                batch_size: 8,
                seed: 0,
            },
            &mut r,
        );
    }

    #[test]
    fn flatten_preserves_predictions() {
        let data = blobs(60, 2, 3, 6.0, 0.4, 5);
        let mut r = rng(6);
        let cfg = TreeNetConfig {
            trunk_dims: vec![3, 8],
            branch_dims: vec![8, 2],
            members: 2,
            epochs: 10,
            batch_size: 16,
            seed: 1,
        };
        let (mut tree, _) = treenet(&data, &data, &cfg, &mut r);
        let mut flat = flatten(&tree);
        let p_tree = tree.predict_proba(&data.x);
        let p_flat = flat.predict_proba(&data.x);
        assert!(p_tree.approx_eq(&p_flat, 1e-5));
    }

    #[test]
    fn branches_diverge_during_training() {
        let data = blobs(80, 2, 3, 6.0, 0.4, 7);
        let mut r = rng(8);
        let cfg = TreeNetConfig {
            trunk_dims: vec![3, 8],
            branch_dims: vec![8, 2],
            members: 2,
            epochs: 5,
            batch_size: 16,
            seed: 2,
        };
        let (tree, _) = treenet(&data, &data, &cfg, &mut r);
        assert_ne!(tree.branches[0].flat_params(), tree.branches[1].flat_params());
    }
}
