//! MotherNets: rapid ensemble training through a shared "mother" core.
//!
//! MotherNets (Wasay et al., MLSys 2020 — co-authored by this tutorial's
//! authors) trains the *structural intersection* of a heterogeneous ensemble
//! once, then **hatches** every member by embedding the mother's weights
//! into the member's (wider) architecture and briefly fine-tuning. The
//! expensive shared function is learned once; members only pay for their
//! diversity.
//!
//! This implementation supports MLP ensembles of equal depth and
//! heterogeneous widths; the mother is the per-layer minimum width.

use crate::{Ensemble, EnsembleReport};
use dl_nn::{Dense, Layer, Network, Optimizer, TrainConfig, Trainer};
use dl_nn::Dataset;
use dl_tensor::init;
use rand::rngs::StdRng;

/// MotherNets configuration.
#[derive(Debug, Clone)]
pub struct MotherNetConfig {
    /// Hidden-layer widths of each member (input/output widths are taken
    /// from the data). All members must have the same depth.
    pub member_hidden: Vec<Vec<usize>>,
    /// Epochs of mother training.
    pub mother_epochs: usize,
    /// Epochs of per-member fine-tuning after hatching.
    pub finetune_epochs: usize,
    /// Batch size.
    pub batch_size: usize,
    /// Seed.
    pub seed: u64,
    /// Standard deviation of the noise used to break symmetry when a
    /// hatched member is wider than the mother.
    pub hatch_noise: f32,
}

impl Default for MotherNetConfig {
    fn default() -> Self {
        MotherNetConfig {
            member_hidden: vec![vec![16], vec![24], vec![32]],
            mother_epochs: 20,
            finetune_epochs: 5,
            batch_size: 32,
            seed: 0,
            hatch_noise: 0.01,
        }
    }
}

/// Embeds the weights of `mother` into a fresh network of layout `dims`
/// (same depth, each width >= the mother's), adding `noise`-scaled random
/// values to the new rows/columns so hatched neurons break symmetry.
///
/// # Panics
/// Panics when depths differ or any member width is below the mother's.
pub fn hatch(mother: &Network, dims: &[usize], noise: f32, rng: &mut StdRng) -> Network {
    let mother_dense: Vec<&Dense> = mother
        .layers()
        .iter()
        .filter_map(|l| match l {
            Layer::Dense(d) => Some(d),
            _ => None,
        })
        .collect();
    assert_eq!(
        mother_dense.len(),
        dims.len() - 1,
        "member depth must match mother depth"
    );
    let mut member = Network::mlp(dims, rng);
    let mut dense_idx = 0;
    for layer in member.layers_mut() {
        let Layer::Dense(d) = layer else { continue };
        let m = mother_dense[dense_idx];
        assert!(
            d.fan_in() >= m.fan_in() && d.fan_out() >= m.fan_out(),
            "member layer {dense_idx} ({}x{}) narrower than mother ({}x{})",
            d.fan_in(),
            d.fan_out(),
            m.fan_in(),
            m.fan_out()
        );
        // fresh noise everywhere, mother weights stamped into the top-left
        let mut w = init::normal([d.fan_in(), d.fan_out()], 0.0, noise, rng);
        for i in 0..m.fan_in() {
            for j in 0..m.fan_out() {
                w.set(&[i, j], m.weight.get(&[i, j]));
            }
        }
        let mut b = init::normal([d.fan_out()], 0.0, noise, rng);
        for j in 0..m.fan_out() {
            b.data_mut()[j] = m.bias.data()[j];
        }
        *d = Dense::from_parts(w, b);
        dense_idx += 1;
    }
    member
}

/// Trains a MotherNets ensemble: mother once, hatch + fine-tune per member.
pub fn mothernet(
    data: &Dataset,
    eval: &Dataset,
    config: &MotherNetConfig,
    rng: &mut StdRng,
) -> (Ensemble, EnsembleReport) {
    assert!(!config.member_hidden.is_empty(), "need at least one member");
    let depth = config.member_hidden[0].len();
    assert!(
        config.member_hidden.iter().all(|h| h.len() == depth),
        "all members must share depth for hatching"
    );
    let input = data.x.dims()[1];
    let classes = data.classes;
    // mother = per-layer minimum width
    let mother_hidden: Vec<usize> = (0..depth)
        .map(|l| {
            config
                .member_hidden
                .iter()
                .map(|h| h[l])
                .min()
                .expect("non-empty members")
        })
        .collect();
    let mut mother_dims = vec![input];
    mother_dims.extend(&mother_hidden);
    mother_dims.push(classes);
    let mut mother = Network::mlp(&mother_dims, rng);
    let mut trainer = Trainer::new(
        TrainConfig {
            epochs: config.mother_epochs,
            batch_size: config.batch_size,
            seed: config.seed,
            ..TrainConfig::default()
        },
        Optimizer::adam(0.01),
    );
    trainer.fit(&mut mother, data);
    let mut flops = trainer.flops;
    // hatch and fine-tune each member
    let mut members = Vec::with_capacity(config.member_hidden.len());
    for (i, hidden) in config.member_hidden.iter().enumerate() {
        let mut dims = vec![input];
        dims.extend(hidden);
        dims.push(classes);
        let mut member = hatch(&mother, &dims, config.hatch_noise, rng);
        let mut ft = Trainer::new(
            TrainConfig {
                epochs: config.finetune_epochs,
                batch_size: config.batch_size,
                seed: config.seed.wrapping_add(1 + i as u64),
                ..TrainConfig::default()
            },
            Optimizer::adam(0.005),
        );
        ft.fit(&mut member, data);
        flops += ft.flops;
        members.push(member);
    }
    let mut ensemble = Ensemble::new(members);
    let report = EnsembleReport {
        strategy: "mothernet",
        accuracy: ensemble.accuracy(eval),
        train_flops: flops,
        params: ensemble.total_params(),
        inference_flops: ensemble.inference_flops(),
    };
    (ensemble, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::independent;
    use dl_data::blobs;
    use dl_tensor::init::rng;

    #[test]
    fn hatch_preserves_mother_function_at_zero_noise() {
        // with noise 0 and equal dims, the hatched member IS the mother
        let mut r = rng(0);
        let data = blobs(60, 2, 3, 6.0, 0.4, 0);
        let mut mother = Network::mlp(&[3, 8, 2], &mut r);
        let mut t = Trainer::new(
            TrainConfig {
                epochs: 10,
                ..TrainConfig::default()
            },
            Optimizer::adam(0.01),
        );
        t.fit(&mut mother, &data);
        let mut hatched = hatch(&mother, &[3, 8, 2], 0.0, &mut r);
        let a = mother.forward(&data.x, false);
        let b = hatched.forward(&data.x, false);
        assert!(a.approx_eq(&b, 1e-6));
    }

    #[test]
    fn hatch_wider_member_keeps_mother_block() {
        let mut r = rng(1);
        let mother = Network::mlp(&[3, 4, 2], &mut r);
        let member = hatch(&mother, &[3, 10, 2], 0.01, &mut r);
        let (Layer::Dense(md), Layer::Dense(hd)) = (&mother.layers()[0], &member.layers()[0])
        else {
            panic!("expected dense layers");
        };
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(md.weight.get(&[i, j]), hd.weight.get(&[i, j]));
            }
        }
        assert_eq!(hd.fan_out(), 10);
    }

    #[test]
    #[should_panic(expected = "narrower than mother")]
    fn hatch_rejects_narrower_member() {
        let mut r = rng(2);
        let mother = Network::mlp(&[3, 8, 2], &mut r);
        hatch(&mother, &[3, 4, 2], 0.0, &mut r);
    }

    #[test]
    fn mothernet_trains_heterogeneous_ensemble() {
        let data = blobs(150, 3, 4, 6.0, 0.4, 3);
        let mut r = rng(4);
        let cfg = MotherNetConfig {
            member_hidden: vec![vec![12], vec![16], vec![24]],
            mother_epochs: 15,
            finetune_epochs: 5,
            ..MotherNetConfig::default()
        };
        let (ens, report) = mothernet(&data, &data, &cfg, &mut r);
        assert_eq!(ens.len(), 3);
        assert!(report.accuracy > 0.85, "accuracy {}", report.accuracy);
        // members have their own widths
        let p: Vec<usize> = ens.members.iter().map(Network::param_count).collect();
        assert!(p[0] < p[1] && p[1] < p[2]);
    }

    #[test]
    fn mothernet_cheaper_than_independent_same_accuracy_ballpark() {
        let data = blobs(150, 3, 4, 6.0, 0.4, 5);
        let mut r = rng(6);
        let cfg = MotherNetConfig {
            member_hidden: vec![vec![16], vec![16], vec![16]],
            mother_epochs: 15,
            finetune_epochs: 3,
            ..MotherNetConfig::default()
        };
        let (_, mn) = mothernet(&data, &data, &cfg, &mut r);
        let (_, indep) = independent(
            &data,
            &data,
            &[4, 16, 3],
            3,
            &TrainConfig {
                epochs: 18, // same budget a member would need from scratch
                ..TrainConfig::default()
            },
            &mut r,
        );
        assert!(
            mn.train_flops < indep.train_flops,
            "mothernet {} vs independent {}",
            mn.train_flops,
            indep.train_flops
        );
        assert!(mn.accuracy > indep.accuracy - 0.1);
    }
}
