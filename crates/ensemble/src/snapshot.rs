//! Snapshot Ensembles: train once, get M members for free.
//!
//! One network is trained under a cyclic cosine learning-rate schedule.
//! Each time the rate anneals to (near) zero the model has settled into a
//! local minimum; a snapshot is saved and the restart kicks the model out
//! toward a different minimum. The ensemble of snapshots costs one training
//! run but retains much of the diversity benefit of independent training.

use crate::{Ensemble, EnsembleReport};
use dl_nn::{Dataset, LrSchedule, Network, Optimizer, TrainConfig, Trainer};
use rand::rngs::StdRng;
use std::cell::RefCell;
use std::rc::Rc;

/// Trains a snapshot ensemble of `members` snapshots, each after a cosine
/// cycle of `cycle_len` epochs (total training: `members * cycle_len`
/// epochs of a single network).
///
/// # Panics
/// Panics when `members == 0` or `cycle_len == 0`.
pub fn snapshot(
    data: &Dataset,
    eval: &Dataset,
    dims: &[usize],
    members: usize,
    cycle_len: usize,
    seed: u64,
    rng: &mut StdRng,
) -> (Ensemble, EnsembleReport) {
    assert!(members > 0 && cycle_len > 0, "members and cycle_len must be positive");
    let mut net = Network::mlp(dims, rng);
    let mut trainer = Trainer::new(
        TrainConfig {
            epochs: members * cycle_len,
            schedule: LrSchedule::CyclicCosine { cycle_len },
            seed,
            ..TrainConfig::default()
        },
        Optimizer::adam(0.01),
    );
    let snapshots: Rc<RefCell<Vec<Network>>> = Rc::new(RefCell::new(Vec::with_capacity(members)));
    let sink = snapshots.clone();
    trainer.on_epoch(move |net, record| {
        if record.cycle_end {
            let mut copy = net.clone();
            copy.clear_caches(); // snapshots store weights, not activations
            sink.borrow_mut().push(copy);
        }
    });
    trainer.fit(&mut net, data);
    let flops = trainer.flops;
    drop(trainer); // releases the hook's clone of `snapshots`
    let members_vec = Rc::try_unwrap(snapshots)
        .expect("trainer dropped its hook reference")
        .into_inner();
    let mut ensemble = Ensemble::new(members_vec);
    let report = EnsembleReport {
        strategy: "snapshot",
        accuracy: ensemble.accuracy(eval),
        train_flops: flops,
        params: ensemble.total_params(),
        inference_flops: ensemble.inference_flops(),
    };
    (ensemble, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::independent;
    use dl_data::blobs;
    use dl_tensor::init::rng;

    #[test]
    fn snapshot_produces_requested_members() {
        let data = blobs(100, 2, 3, 6.0, 0.4, 0);
        let mut r = rng(1);
        let (ens, report) = snapshot(&data, &data, &[3, 8, 2], 4, 8, 0, &mut r);
        assert_eq!(ens.len(), 4);
        assert_eq!(report.strategy, "snapshot");
        assert!(report.accuracy > 0.8, "accuracy {}", report.accuracy);
    }

    #[test]
    fn snapshots_differ_from_each_other() {
        let data = blobs(100, 2, 3, 6.0, 0.4, 2);
        let mut r = rng(3);
        let (ens, _) = snapshot(&data, &data, &[3, 8, 2], 3, 4, 1, &mut r);
        let p0 = ens.members[0].flat_params();
        let p1 = ens.members[1].flat_params();
        let p2 = ens.members[2].flat_params();
        assert_ne!(p0, p1);
        assert_ne!(p1, p2);
    }

    #[test]
    fn snapshot_trains_cheaper_than_independent_at_same_members() {
        let data = blobs(120, 3, 4, 6.0, 0.4, 4);
        let mut r = rng(5);
        let members = 4;
        let cycle_len = 5;
        let (_, snap) = snapshot(&data, &data, &[4, 16, 3], members, cycle_len, 2, &mut r);
        let (_, indep) = independent(
            &data,
            &data,
            &[4, 16, 3],
            members,
            &dl_nn::TrainConfig {
                epochs: members * cycle_len, // same per-member budget as the single run
                ..dl_nn::TrainConfig::default()
            },
            &mut r,
        );
        // snapshot trains ONE network for members*cycle_len epochs;
        // independent trains M networks that long each -> ~M x the FLOPs
        assert!(
            indep.train_flops >= snap.train_flops * (members as u64 - 1),
            "independent {} vs snapshot {}",
            indep.train_flops,
            snap.train_flops
        );
        // accuracy should be in the same ballpark (tutorial: "lower but close")
        assert!(snap.accuracy > indep.accuracy - 0.15);
    }
}
