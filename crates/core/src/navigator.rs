//! Pareto-frontier extraction and constraint-based recommendation.

use crate::registry::{Registry, Technique};

/// Indices (into `techniques`) of the Pareto-optimal points: those not
/// dominated by any other (accuracy maximized, all resources minimized).
pub fn pareto_frontier(techniques: &[Technique]) -> Vec<usize> {
    (0..techniques.len())
        .filter(|&i| {
            !techniques
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && other.metrics.dominates(&techniques[i].metrics))
        })
        .collect()
}

/// A resource ceiling for recommendation queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Constraint {
    /// Maximum training FLOPs.
    MaxTrainFlops(u64),
    /// Maximum inference FLOPs per input.
    MaxInferenceFlops(u64),
    /// Maximum model memory in bytes.
    MaxMemoryBytes(u64),
    /// Maximum training energy in kWh.
    MaxEnergyKwh(f64),
    /// Minimum acceptable accuracy.
    MinAccuracy(f64),
}

impl Constraint {
    /// Does the technique satisfy this constraint?
    pub fn satisfied_by(&self, t: &Technique) -> bool {
        match *self {
            Constraint::MaxTrainFlops(v) => t.metrics.train_flops <= v,
            Constraint::MaxInferenceFlops(v) => t.metrics.inference_flops <= v,
            Constraint::MaxMemoryBytes(v) => t.metrics.memory_bytes <= v,
            Constraint::MaxEnergyKwh(v) => t.metrics.energy_kwh <= v,
            Constraint::MinAccuracy(v) => t.metrics.accuracy >= v,
        }
    }
}

/// Answers "what should I use?" questions over a registry.
#[derive(Debug)]
pub struct TradeoffNavigator<'a> {
    registry: &'a Registry,
}

impl<'a> TradeoffNavigator<'a> {
    /// A navigator over `registry`.
    pub fn new(registry: &'a Registry) -> Self {
        TradeoffNavigator { registry }
    }

    /// The Pareto-optimal techniques.
    pub fn frontier(&self) -> Vec<&Technique> {
        let ts = self.registry.techniques();
        pareto_frontier(ts).into_iter().map(|i| &ts[i]).collect()
    }

    /// The highest-accuracy technique meeting every constraint, or `None`
    /// when the constraints are unsatisfiable.
    pub fn recommend(&self, constraints: &[Constraint]) -> Option<&Technique> {
        self.registry
            .techniques()
            .iter()
            .filter(|t| constraints.iter().all(|c| c.satisfied_by(t)))
            .max_by(|a, b| a.metrics.accuracy.total_cmp(&b.metrics.accuracy))
    }

    /// The accuracy sacrificed (vs. the best unconstrained accuracy) by
    /// imposing `constraints` — the "price" of a resource budget.
    pub fn accuracy_cost(&self, constraints: &[Constraint]) -> Option<f64> {
        let best = self
            .registry
            .techniques()
            .iter()
            .map(|t| t.metrics.accuracy)
            .fold(f64::NEG_INFINITY, f64::max);
        self.recommend(constraints)
            .map(|t| best - t.metrics.accuracy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Category, Metrics, Registry, Technique};

    fn tech(name: &str, acc: f64, mem: u64, inf: u64) -> Technique {
        Technique {
            name: name.into(),
            category: Category::Compression,
            metrics: Metrics {
                accuracy: acc,
                train_flops: 1000,
                inference_flops: inf,
                memory_bytes: mem,
                energy_kwh: 0.0,
            },
            baseline: None,
        }
    }

    fn registry() -> Registry {
        let mut r = Registry::new();
        // classic tradeoff curve + one dominated point
        r.add(tech("fp32", 0.95, 1000, 100)).unwrap();
        r.add(tech("int8", 0.94, 250, 60)).unwrap();
        r.add(tech("int4", 0.90, 125, 40)).unwrap();
        r.add(tech("binary", 0.70, 32, 10)).unwrap();
        r.add(tech("bad", 0.60, 500, 90)).unwrap(); // dominated by int8
        r
    }

    #[test]
    fn frontier_excludes_dominated_points() {
        let r = registry();
        let nav = TradeoffNavigator::new(&r);
        let names: Vec<&str> = nav.frontier().iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"fp32"));
        assert!(names.contains(&"int8"));
        assert!(names.contains(&"int4"));
        assert!(names.contains(&"binary"));
        assert!(!names.contains(&"bad"));
    }

    #[test]
    fn frontier_of_empty_is_empty() {
        assert!(pareto_frontier(&[]).is_empty());
    }

    #[test]
    fn single_point_is_its_own_frontier() {
        let ts = vec![tech("only", 0.5, 10, 10)];
        assert_eq!(pareto_frontier(&ts), vec![0]);
    }

    #[test]
    fn recommend_respects_memory_budget() {
        let r = registry();
        let nav = TradeoffNavigator::new(&r);
        let pick = nav
            .recommend(&[Constraint::MaxMemoryBytes(200)])
            .expect("satisfiable");
        assert_eq!(pick.name, "int4");
    }

    #[test]
    fn recommend_unconstrained_takes_best_accuracy() {
        let r = registry();
        let nav = TradeoffNavigator::new(&r);
        assert_eq!(nav.recommend(&[]).unwrap().name, "fp32");
    }

    #[test]
    fn recommend_none_when_unsatisfiable() {
        let r = registry();
        let nav = TradeoffNavigator::new(&r);
        assert!(nav
            .recommend(&[Constraint::MaxMemoryBytes(1), Constraint::MinAccuracy(0.99)])
            .is_none());
    }

    #[test]
    fn combined_constraints_intersect() {
        let r = registry();
        let nav = TradeoffNavigator::new(&r);
        let pick = nav
            .recommend(&[
                Constraint::MaxMemoryBytes(300),
                Constraint::MaxInferenceFlops(50),
            ])
            .expect("satisfiable");
        assert_eq!(pick.name, "int4");
    }

    proptest::proptest! {
        /// Frontier invariants on random technique sets: every excluded
        /// point is dominated by a frontier point, and no frontier point
        /// dominates another frontier point.
        #[test]
        fn frontier_invariants(
            points in proptest::collection::vec(
                (0u32..100, 0u64..1000, 0u64..1000, 0u64..1000), 1..30),
        ) {
            let ts: Vec<Technique> = points
                .iter()
                .enumerate()
                .map(|(i, &(acc, tf, inf, mem))| Technique {
                    name: format!("t{i}"),
                    category: Category::Compression,
                    metrics: Metrics {
                        accuracy: f64::from(acc) / 100.0,
                        train_flops: tf,
                        inference_flops: inf,
                        memory_bytes: mem,
                        energy_kwh: 0.0,
                    },
                    baseline: None,
                })
                .collect();
            let frontier = pareto_frontier(&ts);
            proptest::prop_assert!(!frontier.is_empty());
            for i in 0..ts.len() {
                if frontier.contains(&i) {
                    // no frontier point dominates another
                    for &j in &frontier {
                        proptest::prop_assert!(
                            !ts[j].metrics.dominates(&ts[i].metrics),
                            "frontier point {} dominates frontier point {}", j, i
                        );
                    }
                } else {
                    // every excluded point is dominated by someone
                    proptest::prop_assert!(
                        ts.iter().any(|o| o.metrics.dominates(&ts[i].metrics)),
                        "excluded point {} is not dominated", i
                    );
                }
            }
        }

        /// The recommender never violates its constraints.
        #[test]
        fn recommendation_respects_constraints(
            points in proptest::collection::vec(
                (0u32..100, 0u64..1000), 1..20),
            budget in 0u64..1000,
        ) {
            let mut r = Registry::new();
            for (i, &(acc, mem)) in points.iter().enumerate() {
                r.add(Technique {
                    name: format!("t{i}"),
                    category: Category::Compression,
                    metrics: Metrics {
                        accuracy: f64::from(acc) / 100.0,
                        train_flops: 0,
                        inference_flops: 0,
                        memory_bytes: mem,
                        energy_kwh: 0.0,
                    },
                    baseline: None,
                }).expect("unique names");
            }
            let nav = TradeoffNavigator::new(&r);
            if let Some(pick) = nav.recommend(&[Constraint::MaxMemoryBytes(budget)]) {
                proptest::prop_assert!(pick.metrics.memory_bytes <= budget);
                // nothing satisfying the constraint beats it on accuracy
                for t in r.techniques() {
                    if t.metrics.memory_bytes <= budget {
                        proptest::prop_assert!(t.metrics.accuracy <= pick.metrics.accuracy);
                    }
                }
            } else {
                proptest::prop_assert!(
                    r.techniques().iter().all(|t| t.metrics.memory_bytes > budget)
                );
            }
        }
    }

    #[test]
    fn accuracy_cost_grows_as_budget_shrinks() {
        let r = registry();
        let nav = TradeoffNavigator::new(&r);
        let loose = nav
            .accuracy_cost(&[Constraint::MaxMemoryBytes(300)])
            .unwrap();
        let tight = nav
            .accuracy_cost(&[Constraint::MaxMemoryBytes(50)])
            .unwrap();
        assert!(tight > loose);
        assert!((loose - 0.01).abs() < 1e-9); // 0.95 (fp32) - 0.94 (int8)
        assert!((tight - 0.25).abs() < 1e-9); // 0.95 - 0.70 (binary)
    }
}
