//! The metric model and technique registry.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// One measured operating point in the tutorial's metric space.
///
/// Quality metrics are "higher is better"; resource metrics are "lower is
/// better". Fields default to the neutral value so partial measurements
/// (e.g. a technique that doesn't touch energy) stay honest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Task accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Training cost in FLOPs.
    pub train_flops: u64,
    /// Inference cost in FLOPs per input.
    pub inference_flops: u64,
    /// Model (parameter) memory in bytes.
    pub memory_bytes: u64,
    /// Training energy in kWh (0 when not measured).
    pub energy_kwh: f64,
}

impl Metrics {
    /// A neutral point (useful as a builder start).
    pub fn new(accuracy: f64) -> Self {
        Metrics {
            accuracy,
            train_flops: 0,
            inference_flops: 0,
            memory_bytes: 0,
            energy_kwh: 0.0,
        }
    }

    /// True when `self` dominates `other`: at least as good on every
    /// metric and strictly better on at least one.
    pub fn dominates(&self, other: &Metrics) -> bool {
        let ge = self.accuracy >= other.accuracy
            && self.train_flops <= other.train_flops
            && self.inference_flops <= other.inference_flops
            && self.memory_bytes <= other.memory_bytes
            && self.energy_kwh <= other.energy_kwh;
        let strict = self.accuracy > other.accuracy
            || self.train_flops < other.train_flops
            || self.inference_flops < other.inference_flops
            || self.memory_bytes < other.memory_bytes
            || self.energy_kwh < other.energy_kwh;
        ge && strict
    }
}

/// The tutorial's technique taxonomy (§2.1-2.3 plus Part 2/3 additions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Baseline measurements (uncompressed / single model / etc.).
    Baseline,
    /// Quantization, pruning, distillation (accuracy vs. time/memory).
    Compression,
    /// Fast ensemble training.
    Ensemble,
    /// Communication-relaxing distributed training.
    Distributed,
    /// Optimize-then-run (placement search, structure search).
    Optimization,
    /// Training-time vs. memory (rematerialization, offloading).
    MemorySchedule,
    /// Learned data-system components.
    LearnedComponent,
    /// Fairness interventions.
    Fairness,
    /// Carbon/energy interventions.
    Green,
    /// Fault tolerance: checkpointing, elastic membership, recovery.
    Robustness,
    /// Observability: tracing, metrics, flight recording (techniques that
    /// spend resources to make every other tradeoff measurable).
    Observability,
    /// Inference serving: batching, variant selection, admission control
    /// (throughput vs. tail latency vs. accuracy at deploy time).
    Serving,
    /// Compute-backend systems work: parallel execution, cache blocking,
    /// kernel scheduling (wall-clock time for identical numerics).
    Systems,
}

/// A named, categorized measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technique {
    /// Unique name, e.g. `"quant-int8"`.
    pub name: String,
    /// Taxonomy bucket.
    pub category: Category,
    /// Measured metrics.
    pub metrics: Metrics,
    /// Name of the baseline this was measured against, if any.
    pub baseline: Option<String>,
}

/// Registry errors.
#[derive(Debug)]
pub enum RegistryError {
    /// A technique with the same name is already registered.
    Duplicate(String),
    /// Persistence I/O failed.
    Io(std::io::Error),
    /// Persistence parse failed.
    Parse(serde_json::Error),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Duplicate(n) => write!(f, "technique {n:?} already registered"),
            RegistryError::Io(e) => write!(f, "registry I/O failed: {e}"),
            RegistryError::Parse(e) => write!(f, "registry parse failed: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<std::io::Error> for RegistryError {
    fn from(e: std::io::Error) -> Self {
        RegistryError::Io(e)
    }
}

impl From<serde_json::Error> for RegistryError {
    fn from(e: serde_json::Error) -> Self {
        RegistryError::Parse(e)
    }
}

/// The technique collection.
///
/// ```
/// use dl_core::{Category, Metrics, Registry, Technique, TradeoffNavigator, Constraint};
/// let mut registry = Registry::new();
/// registry.add(Technique {
///     name: "fp32".into(),
///     category: Category::Baseline,
///     metrics: Metrics { accuracy: 0.95, train_flops: 100, inference_flops: 10,
///                        memory_bytes: 400, energy_kwh: 0.0 },
///     baseline: None,
/// }).unwrap();
/// registry.add(Technique {
///     name: "int8".into(),
///     category: Category::Compression,
///     metrics: Metrics { accuracy: 0.94, train_flops: 100, inference_flops: 10,
///                        memory_bytes: 100, energy_kwh: 0.0 },
///     baseline: Some("fp32".into()),
/// }).unwrap();
/// let nav = TradeoffNavigator::new(&registry);
/// let pick = nav.recommend(&[Constraint::MaxMemoryBytes(200)]).unwrap();
/// assert_eq!(pick.name, "int8");
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Registry {
    techniques: Vec<Technique>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers a technique; names must be unique.
    pub fn add(&mut self, technique: Technique) -> Result<(), RegistryError> {
        if self.techniques.iter().any(|t| t.name == technique.name) {
            return Err(RegistryError::Duplicate(technique.name));
        }
        self.techniques.push(technique);
        Ok(())
    }

    /// All techniques, in registration order.
    pub fn techniques(&self) -> &[Technique] {
        &self.techniques
    }

    /// Techniques in one category.
    pub fn by_category(&self, category: Category) -> Vec<&Technique> {
        self.techniques
            .iter()
            .filter(|t| t.category == category)
            .collect()
    }

    /// Looks a technique up by name.
    pub fn get(&self, name: &str) -> Option<&Technique> {
        self.techniques.iter().find(|t| t.name == name)
    }

    /// Saves as JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), RegistryError> {
        std::fs::write(path, serde_json::to_string_pretty(self)?)?;
        Ok(())
    }

    /// Loads a JSON registry.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, RegistryError> {
        Ok(serde_json::from_str(&std::fs::read_to_string(path)?)?)
    }

    /// Number of registered techniques.
    pub fn len(&self) -> usize {
        self.techniques.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.techniques.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(name: &str, acc: f64, mem: u64) -> Technique {
        Technique {
            name: name.into(),
            category: Category::Compression,
            metrics: Metrics {
                accuracy: acc,
                train_flops: 100,
                inference_flops: 10,
                memory_bytes: mem,
                energy_kwh: 0.0,
            },
            baseline: None,
        }
    }

    #[test]
    fn dominance_requires_strictness() {
        let a = t("a", 0.9, 100).metrics;
        assert!(!a.dominates(&a), "a point never dominates itself");
        let better = t("b", 0.95, 100).metrics;
        assert!(better.dominates(&a));
        assert!(!a.dominates(&better));
    }

    #[test]
    fn dominance_fails_on_tradeoffs() {
        let fast_small = t("a", 0.8, 50).metrics;
        let accurate_big = t("b", 0.95, 500).metrics;
        assert!(!fast_small.dominates(&accurate_big));
        assert!(!accurate_big.dominates(&fast_small));
    }

    #[test]
    fn registry_rejects_duplicates() {
        let mut r = Registry::new();
        r.add(t("x", 0.9, 10)).unwrap();
        let err = r.add(t("x", 0.8, 20)).unwrap_err();
        assert!(matches!(err, RegistryError::Duplicate(_)));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn category_filter_and_lookup() {
        let mut r = Registry::new();
        r.add(t("a", 0.9, 10)).unwrap();
        let mut b = t("b", 0.8, 5);
        b.category = Category::Ensemble;
        r.add(b).unwrap();
        assert_eq!(r.by_category(Category::Compression).len(), 1);
        assert_eq!(r.by_category(Category::Ensemble).len(), 1);
        assert!(r.get("a").is_some());
        assert!(r.get("zzz").is_none());
    }

    #[test]
    fn save_load_roundtrip() {
        let mut r = Registry::new();
        r.add(t("a", 0.91, 12)).unwrap();
        r.add(t("b", 0.85, 6)).unwrap();
        let path = std::env::temp_dir().join("dl_core_registry_test.json");
        r.save(&path).unwrap();
        let back = Registry::load(&path).unwrap();
        assert_eq!(back.techniques(), r.techniques());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = Registry::load("/nonexistent/registry.json").unwrap_err();
        assert!(matches!(err, RegistryError::Io(_)));
    }
}
