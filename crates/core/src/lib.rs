//! # dl-core
//!
//! The tutorial's organizing contribution, made executable: a **framework
//! that classifies deep-learning techniques by how they trade off the core
//! metrics** — accuracy, training time, inference time, and memory (plus
//! energy, Part 3's addition).
//!
//! The experiment harness (`dl-bench`) measures every technique in the
//! workspace and registers it here; the navigator then answers the
//! questions the tutorial poses: *which techniques are Pareto-optimal?*
//! and *given my resource constraints, what should I use?*
//!
//! * [`Metrics`] — one measured point in the 5-metric space.
//! * [`Technique`] — a named, categorized measurement.
//! * [`Registry`] — the collection, with JSON persistence so experiment
//!   runs can be accumulated across binaries.
//! * [`pareto_frontier`] / [`TradeoffNavigator`] — frontier extraction and
//!   constraint-based recommendation.

#![warn(missing_docs)]

pub mod navigator;
pub mod registry;

pub use navigator::{pareto_frontier, Constraint, TradeoffNavigator};
pub use registry::{Category, Metrics, Registry, RegistryError, Technique};
