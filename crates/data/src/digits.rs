//! A procedural MNIST stand-in: 12x12 seven-segment-style digit glyphs.
//!
//! Each digit 0-9 is rendered from the classic seven-segment encoding onto a
//! 12x12 grid, then perturbed with per-sample stroke jitter, pixel noise and
//! a random 1-pixel translation. The resulting classification problem is
//! easy enough to train in milliseconds yet hard enough that compression
//! sweeps (quantization bits, pruning sparsity) show a real accuracy cliff —
//! exactly the shape the Part-1 experiments need.

use dl_nn::Dataset;
use dl_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::Rng;

/// Image side length in pixels.
pub const DIGIT_SIDE: usize = 12;
/// Number of classes.
pub const DIGIT_CLASSES: usize = 10;

/// Seven-segment truth table: segments a,b,c,d,e,f,g per digit.
const SEGMENTS: [[bool; 7]; 10] = [
    // a      b      c      d      e      f      g
    [true, true, true, true, true, true, false],    // 0
    [false, true, true, false, false, false, false], // 1
    [true, true, false, true, true, false, true],   // 2
    [true, true, true, true, false, false, true],   // 3
    [false, true, true, false, false, true, true],  // 4
    [true, false, true, true, false, true, true],   // 5
    [true, false, true, true, true, true, true],    // 6
    [true, true, true, false, false, false, false], // 7
    [true, true, true, true, true, true, true],     // 8
    [true, true, true, true, false, true, true],    // 9
];

/// Renders one clean glyph of `digit` into a `DIGIT_SIDE^2` buffer
/// (row-major, values in `{0, 1}`).
///
/// # Panics
/// Panics when `digit >= 10`.
pub fn render_digit(digit: usize) -> Vec<f32> {
    assert!(digit < 10, "digit must be 0-9, got {digit}");
    let s = DIGIT_SIDE;
    let mut img = vec![0.0f32; s * s];
    let seg = SEGMENTS[digit];
    // glyph occupies columns 2..10, rows 1..11
    let (left, right, top, mid, bottom) = (2usize, 9usize, 1usize, 5usize, 10usize);
    let mut hline = |row: usize| {
        for c in left..=right {
            img[row * s + c] = 1.0;
        }
    };
    if seg[0] {
        hline(top); // a
    }
    if seg[6] {
        hline(mid); // g
    }
    if seg[3] {
        hline(bottom); // d
    }
    let mut vline = |col: usize, r0: usize, r1: usize| {
        for r in r0..=r1 {
            img[r * s + col] = 1.0;
        }
    };
    if seg[5] {
        vline(left, top, mid); // f
    }
    if seg[1] {
        vline(right, top, mid); // b
    }
    if seg[4] {
        vline(left, mid, bottom); // e
    }
    if seg[2] {
        vline(right, mid, bottom); // c
    }
    img
}

/// Applies stroke dropout, additive noise and a random +-1 pixel shift.
fn perturb(clean: &[f32], noise: f32, rng: &mut StdRng) -> Vec<f32> {
    let s = DIGIT_SIDE;
    let dx: isize = rng.gen_range(-1..=1);
    let dy: isize = rng.gen_range(-1..=1);
    let mut out = vec![0.0f32; s * s];
    for y in 0..s {
        for x in 0..s {
            let sy = y as isize - dy;
            let sx = x as isize - dx;
            if sy >= 0 && sy < s as isize && sx >= 0 && sx < s as isize {
                out[y * s + x] = clean[sy as usize * s + sx as usize];
            }
        }
    }
    for v in &mut out {
        // stroke dropout: 5% of lit pixels go dark
        if *v > 0.5 && rng.gen::<f32>() < 0.05 {
            *v = 0.0;
        }
        *v += rng.gen_range(-noise..noise);
        *v = v.clamp(0.0, 1.0);
    }
    out
}

/// Generates `n` perturbed digit images as a [`Dataset`] with
/// `DIGIT_SIDE * DIGIT_SIDE`-wide rows and 10 classes.
pub fn digits_dataset(n: usize, noise: f32, seed: u64) -> Dataset {
    assert!(n > 0, "digits_dataset requires positive n");
    let mut rng = init::rng(seed);
    let clean: Vec<Vec<f32>> = (0..10).map(render_digit).collect();
    let mut xs = Vec::with_capacity(n * DIGIT_SIDE * DIGIT_SIDE);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let d = i % 10;
        xs.extend(perturb(&clean[d], noise, &mut rng));
        ys.push(d);
    }
    Dataset::new(
        Tensor::from_vec(xs, [n, DIGIT_SIDE * DIGIT_SIDE]).expect("length matches"),
        ys,
        DIGIT_CLASSES,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_deterministic_and_binary() {
        for d in 0..10 {
            let a = render_digit(d);
            let b = render_digit(d);
            assert_eq!(a, b);
            assert!(a.iter().all(|&v| v == 0.0 || v == 1.0));
            assert!(a.iter().sum::<f32>() > 0.0, "digit {d} rendered empty");
        }
    }

    #[test]
    fn distinct_digits_render_distinctly() {
        for a in 0..10 {
            for b in (a + 1)..10 {
                assert_ne!(render_digit(a), render_digit(b), "{a} == {b}");
            }
        }
    }

    #[test]
    fn eight_contains_every_other_digit_segmentwise() {
        // 8 lights all segments, so its pixel set is a superset of any digit
        let eight = render_digit(8);
        for d in 0..10 {
            let img = render_digit(d);
            for (p8, pd) in eight.iter().zip(&img) {
                assert!(pd <= p8);
            }
        }
    }

    #[test]
    #[should_panic(expected = "digit must be")]
    fn render_rejects_out_of_range() {
        render_digit(10);
    }

    #[test]
    fn dataset_shape_and_balance() {
        let d = digits_dataset(100, 0.1, 0);
        assert_eq!(d.x.dims(), &[100, 144]);
        assert_eq!(d.classes, 10);
        for c in 0..10 {
            assert_eq!(d.y.iter().filter(|&&y| y == c).count(), 10);
        }
    }

    #[test]
    fn dataset_values_stay_in_unit_interval() {
        let d = digits_dataset(50, 0.3, 1);
        assert!(d.x.min() >= 0.0 && d.x.max() <= 1.0);
    }

    #[test]
    fn dataset_is_seed_deterministic() {
        let a = digits_dataset(30, 0.2, 5);
        let b = digits_dataset(30, 0.2, 5);
        assert_eq!(a.x, b.x);
        assert_ne!(a.x, digits_dataset(30, 0.2, 6).x);
    }

    #[test]
    fn dataset_is_learnable_by_small_mlp() {
        use dl_nn::{Network, Optimizer, TrainConfig, Trainer};
        let data = digits_dataset(200, 0.05, 2);
        let mut rng = init::rng(3);
        let mut net = Network::mlp(&[144, 32, 10], &mut rng);
        let mut trainer = Trainer::new(
            TrainConfig {
                epochs: 15,
                batch_size: 32,
                ..TrainConfig::default()
            },
            Optimizer::adam(0.01),
        );
        trainer.fit(&mut net, &data);
        let acc = Trainer::evaluate(&mut net, &data);
        assert!(acc > 0.9, "digit accuracy only {acc}");
    }
}
