//! # dl-data
//!
//! Synthetic datasets and workload generators for every experiment in the
//! workspace. Real benchmark corpora (MNIST, ImageNet, Census) are not
//! available offline, so each generator here is the closest laptop-scale
//! equivalent that exercises the same code paths (see the substitution
//! table in `DESIGN.md`):
//!
//! * [`clusters`] — Gaussian blobs and two-moons in arbitrary dimension;
//!   the workhorse for classification, ensembles and t-SNE experiments.
//! * [`digits`] — procedural 12x12 "digit" glyph images with stroke jitter;
//!   a stand-in for MNIST that convolutional layers, quantization and
//!   pruning sweeps run on.
//! * [`census`] — a census-income-like tabular generator with a **ground
//!   truth bias knob**: the correlation between a protected attribute and
//!   the label is a controlled input, which real datasets can never give
//!   you. Feeds the fairness experiments (E15/E16).
//! * [`keys`] — integer key distributions (uniform / lognormal / zipf /
//!   clustered) and range-query workloads for the learned-index and
//!   Bloom-filter experiments (E11/E12).
//! * [`tabular`] — correlated multi-attribute numeric tables plus conjunctive
//!   range predicates with exact ground-truth selectivities (E13).
//! * [`canopy`] — a Data-Canopy-style cache of basic aggregates that makes
//!   repeated exploratory statistics (means, variances, correlations over
//!   arbitrary ranges) reuse work instead of re-scanning (§3, data
//!   exploration).

#![warn(missing_docs)]

pub mod canopy;
pub mod census;
pub mod clusters;
pub mod digits;
pub mod keys;
pub mod tabular;

pub use canopy::{CanopyStats, DataCanopy};
pub use census::{CensusConfig, CensusData};
pub use clusters::{blobs, high_dim_clusters, two_moons};
pub use digits::{digits_dataset, render_digit, DIGIT_CLASSES, DIGIT_SIDE};
pub use keys::{KeyDistribution, RangeWorkload};
pub use tabular::{CorrelatedTable, RangePredicate};
