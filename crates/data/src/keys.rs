//! Integer key distributions and range workloads for the learned-index and
//! Bloom-filter experiments.

use dl_tensor::init;
use rand::rngs::StdRng;
use rand::Rng;

/// Families of key distributions the learned-index experiment sweeps over.
/// Learned indexes shine on smooth CDFs (uniform, lognormal) and struggle on
/// adversarially clustered keys — the sweep makes that crossover visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyDistribution {
    /// Uniform over `[0, max)`.
    Uniform,
    /// Lognormal (smooth but skewed CDF).
    Lognormal,
    /// Zipf-like: small keys vastly more frequent before deduplication.
    Zipf,
    /// Tight clusters separated by wide gaps (hard for linear models).
    Clustered,
}

impl KeyDistribution {
    /// All distributions, for sweeps.
    pub fn all() -> [KeyDistribution; 4] {
        [
            KeyDistribution::Uniform,
            KeyDistribution::Lognormal,
            KeyDistribution::Zipf,
            KeyDistribution::Clustered,
        ]
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            KeyDistribution::Uniform => "uniform",
            KeyDistribution::Lognormal => "lognormal",
            KeyDistribution::Zipf => "zipf",
            KeyDistribution::Clustered => "clustered",
        }
    }

    /// Generates `n` **sorted, deduplicated** keys.
    ///
    /// The returned vector may be slightly shorter than `n` after
    /// deduplication; callers that need exactly `n` should oversample.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = init::rng(seed);
        let mut keys: Vec<u64> = match self {
            KeyDistribution::Uniform => {
                (0..n).map(|_| rng.gen_range(0..(n as u64) * 100)).collect()
            }
            KeyDistribution::Lognormal => (0..n)
                .map(|_| {
                    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    (z.mul_add(2.0, 10.0)).exp().min(1e15) as u64
                })
                .collect(),
            KeyDistribution::Zipf => (0..n)
                .map(|_| {
                    // inverse-CDF sampling of a discrete power law
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    (u.powf(-1.5).min(1e12)) as u64
                })
                .collect(),
            KeyDistribution::Clustered => {
                let clusters = (n / 1000).max(4);
                (0..n)
                    .map(|_| {
                        let c = rng.gen_range(0..clusters) as u64;
                        c * 10_000_000 + rng.gen_range(0..2_000u64)
                    })
                    .collect()
            }
        };
        keys.sort_unstable();
        keys.dedup();
        keys
    }
}

/// A lookup / range-scan workload over a sorted key set.
#[derive(Debug, Clone)]
pub struct RangeWorkload {
    /// Point-lookup keys (all guaranteed present).
    pub lookups: Vec<u64>,
    /// Keys guaranteed absent (for negative-lookup / Bloom-filter tests).
    pub negative_lookups: Vec<u64>,
    /// `(lo, hi)` range-scan bounds.
    pub ranges: Vec<(u64, u64)>,
}

impl RangeWorkload {
    /// Builds a workload of `ops` point lookups, `ops` negative lookups and
    /// `ops / 10` range scans against `keys` (which must be sorted).
    ///
    /// # Panics
    /// Panics when `keys` is empty.
    pub fn generate(keys: &[u64], ops: usize, seed: u64) -> Self {
        assert!(!keys.is_empty(), "workload needs a non-empty key set");
        let mut rng = init::rng(seed);
        let lookups = (0..ops)
            .map(|_| keys[rng.gen_range(0..keys.len())])
            .collect();
        let key_set: std::collections::HashSet<u64> = keys.iter().copied().collect();
        let max = *keys.last().expect("non-empty") + 1_000_000;
        let mut negative_lookups = Vec::with_capacity(ops);
        while negative_lookups.len() < ops {
            let candidate = rng.gen_range(0..max);
            if !key_set.contains(&candidate) {
                negative_lookups.push(candidate);
            }
        }
        let ranges = (0..ops / 10)
            .map(|_| {
                let i = rng.gen_range(0..keys.len());
                let span = rng.gen_range(1..100u64);
                (keys[i], keys[i].saturating_add(span * 1000))
            })
            .collect();
        RangeWorkload {
            lookups,
            negative_lookups,
            ranges,
        }
    }
}

/// Draws `n` keys **not** present in the sorted `keys` slice — the negative
/// set used to measure Bloom-filter false-positive rates.
pub fn absent_keys(keys: &[u64], n: usize, rng: &mut StdRng) -> Vec<u64> {
    let key_set: std::collections::HashSet<u64> = keys.iter().copied().collect();
    let max = keys.last().copied().unwrap_or(1_000_000) + 10_000_000;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let candidate = rng.gen_range(0..max);
        if !key_set.contains(&candidate) {
            out.push(candidate);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_keys_are_sorted_and_unique() {
        for dist in KeyDistribution::all() {
            let keys = dist.generate(10_000, 0);
            assert!(!keys.is_empty(), "{} produced no keys", dist.name());
            assert!(keys.windows(2).all(|w| w[0] < w[1]), "{}", dist.name());
        }
    }

    #[test]
    fn distributions_are_seed_deterministic() {
        let a = KeyDistribution::Lognormal.generate(1000, 7);
        let b = KeyDistribution::Lognormal.generate(1000, 7);
        assert_eq!(a, b);
        assert_ne!(a, KeyDistribution::Lognormal.generate(1000, 8));
    }

    #[test]
    fn clustered_keys_have_gaps() {
        let keys = KeyDistribution::Clustered.generate(10_000, 1);
        let max_gap = keys.windows(2).map(|w| w[1] - w[0]).max().unwrap();
        let median_gap = {
            let mut gaps: Vec<u64> = keys.windows(2).map(|w| w[1] - w[0]).collect();
            gaps.sort_unstable();
            gaps[gaps.len() / 2]
        };
        assert!(
            max_gap > median_gap * 100,
            "clustered distribution should have huge gaps: max {max_gap}, median {median_gap}"
        );
    }

    #[test]
    fn zipf_is_skewed_toward_small_keys() {
        let keys = KeyDistribution::Zipf.generate(10_000, 2);
        // the power law puts ~95% of raw samples below 100, so after
        // dedup the small-key region is densely covered...
        let small = keys.iter().filter(|&&k| k < 100).count();
        assert!(small >= 90, "only {small} unique keys below 100");
        // ...while the tail is sparse: far fewer unique keys per unit range
        let tail_density = keys.iter().filter(|&&k| k >= 100_000).count();
        assert!(tail_density < keys.len() / 2);
    }

    #[test]
    fn workload_lookups_all_present() {
        let keys = KeyDistribution::Uniform.generate(5000, 3);
        let w = RangeWorkload::generate(&keys, 500, 4);
        let set: std::collections::HashSet<u64> = keys.iter().copied().collect();
        assert!(w.lookups.iter().all(|k| set.contains(k)));
        assert_eq!(w.lookups.len(), 500);
    }

    #[test]
    fn workload_negatives_all_absent() {
        let keys = KeyDistribution::Uniform.generate(5000, 5);
        let w = RangeWorkload::generate(&keys, 300, 6);
        let set: std::collections::HashSet<u64> = keys.iter().copied().collect();
        assert!(w.negative_lookups.iter().all(|k| !set.contains(k)));
        assert_eq!(w.negative_lookups.len(), 300);
    }

    #[test]
    fn workload_ranges_are_ordered() {
        let keys = KeyDistribution::Uniform.generate(5000, 7);
        let w = RangeWorkload::generate(&keys, 200, 8);
        assert_eq!(w.ranges.len(), 20);
        assert!(w.ranges.iter().all(|&(lo, hi)| lo <= hi));
    }

    #[test]
    fn absent_keys_are_absent() {
        let keys = KeyDistribution::Uniform.generate(2000, 9);
        let mut rng = init::rng(10);
        let absent = absent_keys(&keys, 100, &mut rng);
        let set: std::collections::HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(absent.len(), 100);
        assert!(absent.iter().all(|k| !set.contains(k)));
    }
}
