//! Data Canopy: reusable statistics for exploratory analysis.
//!
//! Part 2's data-exploration thread cites the authors' own Data Canopy
//! (Wasay et al., SIGMOD 2017): exploratory statistics (means, variances,
//! correlations over arbitrary column ranges) decompose into *basic
//! aggregates* over fixed-size chunks — sums, sums of squares, sums of
//! products — which can be computed once, cached, and stitched together,
//! so repeated exploration stops re-scanning the data.
//!
//! This module implements that decomposition: a [`DataCanopy`] over a
//! numeric table caches per-chunk basic aggregates lazily and answers
//! range statistics from them, counting how many chunk aggregates were
//! served from cache vs. computed — the reuse the paper's speedups come
//! from (and what the `canopy` rows of the `mistique` Criterion bench
//! measure in wall-clock).

use parking_lot::Mutex;
use std::collections::HashMap;

/// Basic aggregates of one chunk of one column (or column pair).
#[derive(Debug, Clone, Copy, Default)]
struct ChunkAgg {
    sum: f64,
    sum_sq: f64,
    count: usize,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CanopyStats {
    /// Chunk aggregates served from cache.
    pub cache_hits: u64,
    /// Chunk aggregates computed by scanning.
    pub cache_misses: u64,
    /// Raw values scanned (the work a naive engine would do every query).
    pub values_scanned: u64,
}

/// A lazily-built canopy of basic aggregates over a column-major table.
pub struct DataCanopy {
    /// Column-major data: `columns[c][row]`.
    columns: Vec<Vec<f32>>,
    chunk: usize,
    /// `(column, chunk_index) -> aggregates`, built on demand.
    cache: Mutex<HashMap<(usize, usize), ChunkAgg>>,
    /// `(col_a, col_b, chunk_index) -> sum of products`, built on demand.
    prod_cache: Mutex<HashMap<(usize, usize, usize), f64>>,
    stats: Mutex<CanopyStats>,
}

impl DataCanopy {
    /// Builds a canopy over column-major data with the given chunk size.
    ///
    /// # Panics
    /// Panics when columns are empty or ragged, or `chunk == 0`.
    pub fn new(columns: Vec<Vec<f32>>, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        assert!(!columns.is_empty(), "need at least one column");
        let rows = columns[0].len();
        assert!(rows > 0, "need at least one row");
        assert!(
            columns.iter().all(|c| c.len() == rows),
            "columns must have equal length"
        );
        DataCanopy {
            columns,
            chunk,
            cache: Mutex::new(HashMap::new()),
            prod_cache: Mutex::new(HashMap::new()),
            stats: Mutex::new(CanopyStats::default()),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.columns[0].len()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.columns.len()
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> CanopyStats {
        *self.stats.lock()
    }

    /// Chunk aggregate for `(col, chunk_idx)`, cached.
    fn chunk_agg(&self, col: usize, chunk_idx: usize) -> ChunkAgg {
        if let Some(&agg) = self.cache.lock().get(&(col, chunk_idx)) {
            self.stats.lock().cache_hits += 1;
            return agg;
        }
        let start = chunk_idx * self.chunk;
        let end = (start + self.chunk).min(self.rows());
        let slice = &self.columns[col][start..end];
        let mut agg = ChunkAgg {
            count: slice.len(),
            ..ChunkAgg::default()
        };
        for &v in slice {
            agg.sum += f64::from(v);
            agg.sum_sq += f64::from(v) * f64::from(v);
        }
        {
            let mut stats = self.stats.lock();
            stats.cache_misses += 1;
            stats.values_scanned += slice.len() as u64;
        }
        self.cache.lock().insert((col, chunk_idx), agg);
        agg
    }

    /// Sum of products over a chunk for a column pair, cached.
    fn chunk_prod(&self, a: usize, b: usize, chunk_idx: usize) -> f64 {
        let key = (a.min(b), a.max(b), chunk_idx);
        if let Some(&p) = self.prod_cache.lock().get(&key) {
            self.stats.lock().cache_hits += 1;
            return p;
        }
        let start = chunk_idx * self.chunk;
        let end = (start + self.chunk).min(self.rows());
        let p: f64 = self.columns[a][start..end]
            .iter()
            .zip(&self.columns[b][start..end])
            .map(|(&x, &y)| f64::from(x) * f64::from(y))
            .sum();
        {
            let mut stats = self.stats.lock();
            stats.cache_misses += 1;
            stats.values_scanned += (end - start) as u64;
        }
        self.prod_cache.lock().insert(key, p);
        p
    }

    /// Aggregates for `col` over row range `lo..hi`, stitched from chunks
    /// (partial edge chunks are scanned directly, as in the paper).
    fn range_agg(&self, col: usize, lo: usize, hi: usize) -> ChunkAgg {
        assert!(col < self.cols(), "column {col} out of range");
        assert!(lo < hi && hi <= self.rows(), "bad row range {lo}..{hi}");
        let mut total = ChunkAgg::default();
        let add_scan = |total: &mut ChunkAgg, a: usize, b: usize| {
            for &v in &self.columns[col][a..b] {
                total.sum += f64::from(v);
                total.sum_sq += f64::from(v) * f64::from(v);
            }
            total.count += b - a;
            self.stats.lock().values_scanned += (b - a) as u64;
        };
        let first_full = lo.div_ceil(self.chunk);
        let last_full = hi / self.chunk;
        if first_full >= last_full {
            // range inside one or two chunks: scan directly
            add_scan(&mut total, lo, hi);
            return total;
        }
        if lo < first_full * self.chunk {
            add_scan(&mut total, lo, first_full * self.chunk);
        }
        for c in first_full..last_full {
            let agg = self.chunk_agg(col, c);
            total.sum += agg.sum;
            total.sum_sq += agg.sum_sq;
            total.count += agg.count;
        }
        if last_full * self.chunk < hi {
            add_scan(&mut total, last_full * self.chunk, hi);
        }
        total
    }

    /// Mean of `col` over rows `lo..hi`.
    pub fn mean(&self, col: usize, lo: usize, hi: usize) -> f64 {
        let a = self.range_agg(col, lo, hi);
        a.sum / a.count as f64
    }

    /// Population variance of `col` over rows `lo..hi`.
    pub fn variance(&self, col: usize, lo: usize, hi: usize) -> f64 {
        let a = self.range_agg(col, lo, hi);
        let mean = a.sum / a.count as f64;
        (a.sum_sq / a.count as f64 - mean * mean).max(0.0)
    }

    /// Standard deviation of `col` over rows `lo..hi`.
    pub fn std(&self, col: usize, lo: usize, hi: usize) -> f64 {
        self.variance(col, lo, hi).sqrt()
    }

    /// Pearson correlation of two columns over rows `lo..hi` (chunk-aligned
    /// product aggregates are cached; edges scanned).
    pub fn correlation(&self, a: usize, b: usize, lo: usize, hi: usize) -> f64 {
        assert!(a < self.cols() && b < self.cols(), "column out of range");
        assert!(lo < hi && hi <= self.rows(), "bad row range");
        let agg_a = self.range_agg(a, lo, hi);
        let agg_b = self.range_agg(b, lo, hi);
        // sum of products over the range
        let first_full = lo.div_ceil(self.chunk);
        let last_full = hi / self.chunk;
        let mut sum_prod = 0.0f64;
        let scan = |acc: &mut f64, s: usize, e: usize| {
            *acc += self.columns[a][s..e]
                .iter()
                .zip(&self.columns[b][s..e])
                .map(|(&x, &y)| f64::from(x) * f64::from(y))
                .sum::<f64>();
            self.stats.lock().values_scanned += (e - s) as u64;
        };
        if first_full >= last_full {
            scan(&mut sum_prod, lo, hi);
        } else {
            if lo < first_full * self.chunk {
                scan(&mut sum_prod, lo, first_full * self.chunk);
            }
            for c in first_full..last_full {
                sum_prod += self.chunk_prod(a, b, c);
            }
            if last_full * self.chunk < hi {
                scan(&mut sum_prod, last_full * self.chunk, hi);
            }
        }
        let n = (hi - lo) as f64;
        let cov = sum_prod / n - (agg_a.sum / n) * (agg_b.sum / n);
        let var_a = agg_a.sum_sq / n - (agg_a.sum / n).powi(2);
        let var_b = agg_b.sum_sq / n - (agg_b.sum / n).powi(2);
        let denom = (var_a * var_b).sqrt();
        if denom <= 1e-300 {
            0.0
        } else {
            cov / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_tensor::init;
    use proptest::prelude::*;

    fn table(rows: usize, cols: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = init::rng(seed);
        (0..cols)
            .map(|_| init::uniform([rows], -5.0, 5.0, &mut rng).into_vec())
            .collect()
    }

    fn naive_mean(col: &[f32], lo: usize, hi: usize) -> f64 {
        col[lo..hi].iter().map(|&v| f64::from(v)).sum::<f64>() / (hi - lo) as f64
    }

    #[test]
    fn mean_matches_naive() {
        let data = table(1000, 2, 0);
        let canopy = DataCanopy::new(data.clone(), 64);
        for (lo, hi) in [(0, 1000), (13, 977), (100, 101), (0, 64), (63, 65)] {
            let got = canopy.mean(0, lo, hi);
            let want = naive_mean(&data[0], lo, hi);
            assert!((got - want).abs() < 1e-6, "{lo}..{hi}: {got} vs {want}");
        }
    }

    #[test]
    fn variance_and_std_match_naive() {
        let data = table(500, 1, 1);
        let canopy = DataCanopy::new(data.clone(), 32);
        let (lo, hi) = (17, 483);
        let mean = naive_mean(&data[0], lo, hi);
        let want: f64 = data[0][lo..hi]
            .iter()
            .map(|&v| (f64::from(v) - mean).powi(2))
            .sum::<f64>()
            / (hi - lo) as f64;
        assert!((canopy.variance(0, lo, hi) - want).abs() < 1e-6);
        assert!((canopy.std(0, lo, hi) - want.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn correlation_matches_naive() {
        // strongly correlated pair
        let mut rng = init::rng(2);
        let base = init::uniform([800], -1.0, 1.0, &mut rng).into_vec();
        let noisy: Vec<f32> = base
            .iter()
            .map(|&v| v + 0.1 * init::uniform([1], -1.0, 1.0, &mut rng).data()[0])
            .collect();
        let canopy = DataCanopy::new(vec![base.clone(), noisy.clone()], 64);
        let got = canopy.correlation(0, 1, 0, 800);
        assert!(got > 0.95, "correlation {got}");
        // symmetric
        assert!((canopy.correlation(1, 0, 0, 800) - got).abs() < 1e-12);
    }

    #[test]
    fn repeated_queries_reuse_chunks() {
        let data = table(10_000, 1, 3);
        let canopy = DataCanopy::new(data, 128);
        canopy.mean(0, 0, 10_000);
        let after_first = canopy.stats();
        assert!(after_first.cache_misses > 70);
        assert_eq!(after_first.cache_hits, 0);
        // overlapping follow-up: almost all chunks come from cache
        canopy.mean(0, 0, 9_000);
        let after_second = canopy.stats();
        assert!(
            after_second.cache_hits >= 69,
            "expected reuse, stats {after_second:?}"
        );
        // naive engine would have scanned 19k values; the canopy far less
        assert!(after_second.values_scanned < 11_000);
    }

    #[test]
    fn variance_queries_reuse_mean_chunks() {
        // mean and variance share the same basic aggregates
        let data = table(4096, 1, 4);
        let canopy = DataCanopy::new(data, 64);
        canopy.mean(0, 0, 4096);
        let before = canopy.stats().values_scanned;
        canopy.variance(0, 0, 4096);
        let after = canopy.stats().values_scanned;
        assert_eq!(before, after, "variance re-scanned data it already had");
    }

    #[test]
    #[should_panic(expected = "bad row range")]
    fn rejects_empty_range() {
        let canopy = DataCanopy::new(table(10, 1, 5), 4);
        canopy.mean(0, 5, 5);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_ragged_columns() {
        DataCanopy::new(vec![vec![1.0, 2.0], vec![1.0]], 4);
    }

    proptest! {
        /// Canopy means equal naive means on arbitrary ranges/chunk sizes.
        #[test]
        fn mean_always_matches(
            rows in 2usize..300,
            chunk in 1usize..64,
            seed in 0u64..50,
            frac_lo in 0.0f64..0.9,
            frac_len in 0.01f64..1.0,
        ) {
            let data = table(rows, 1, seed);
            let lo = ((rows - 1) as f64 * frac_lo) as usize;
            let hi = (lo + 1 + ((rows - lo - 1) as f64 * frac_len) as usize).min(rows);
            let canopy = DataCanopy::new(data.clone(), chunk);
            let got = canopy.mean(0, lo, hi);
            let want = naive_mean(&data[0], lo, hi);
            prop_assert!((got - want).abs() < 1e-5);
        }
    }
}
