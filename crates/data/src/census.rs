//! A census-income-like tabular generator with a ground-truth bias knob.
//!
//! The fairness literature's standard benchmark (UCI Adult) is a fixed
//! dataset whose bias level cannot be varied. This generator produces the
//! same *kind* of data — demographic and employment features predicting a
//! binary income label, with a protected group attribute — but exposes the
//! statistical dependence between group and label as an explicit
//! [`CensusConfig::bias`] parameter in `[0, 1]`:
//!
//! * `bias = 0`: the label depends only on legitimate features
//!   (qualification score); groups are exchangeable.
//! * `bias = 1`: group membership dominates the label.
//!
//! That gives the fairness experiments (E15/E16) a controlled x-axis that a
//! real corpus cannot provide.

use dl_nn::Dataset;
use dl_tensor::{init, Tensor};
use rand::Rng;

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct CensusConfig {
    /// Number of samples.
    pub n: usize,
    /// Fraction of samples in the disadvantaged group (group 1).
    pub minority_frac: f64,
    /// Ground-truth label bias against group 1, in `[0, 1]`.
    pub bias: f64,
    /// Observation noise on the features.
    pub noise: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CensusConfig {
    fn default() -> Self {
        CensusConfig {
            n: 1000,
            minority_frac: 0.4,
            bias: 0.0,
            noise: 0.3,
            seed: 0,
        }
    }
}

/// Generated census-like data.
///
/// Features (6 columns, all standardized to roughly unit scale):
/// `age`, `education_years`, `hours_per_week`, `capital_signal`,
/// `occupation_score`, and a `group_proxy` column that correlates with the
/// protected attribute (so that "fairness through unawareness" fails, as the
/// tutorial's retina example illustrates).
#[derive(Debug, Clone)]
pub struct CensusData {
    /// Feature matrix `[n, 6]` (protected attribute NOT included).
    pub features: Tensor,
    /// Binary income label per row.
    pub labels: Vec<usize>,
    /// Protected group per row (0 = majority, 1 = minority).
    pub groups: Vec<usize>,
    /// The latent qualification score the unbiased label derives from.
    pub qualification: Vec<f32>,
}

impl CensusData {
    /// Number of feature columns produced by [`generate`].
    pub const FEATURES: usize = 6;

    /// Generates the dataset.
    ///
    /// # Panics
    /// Panics when `bias` or `minority_frac` fall outside `[0, 1]`, or
    /// `n == 0`.
    pub fn generate(config: CensusConfig) -> Self {
        assert!(config.n > 0, "census generator requires n > 0");
        assert!(
            (0.0..=1.0).contains(&config.bias),
            "bias must lie in [0,1], got {}",
            config.bias
        );
        assert!(
            (0.0..=1.0).contains(&config.minority_frac),
            "minority_frac must lie in [0,1]"
        );
        let mut rng = init::rng(config.seed);
        let n = config.n;
        let mut features = Vec::with_capacity(n * Self::FEATURES);
        let mut labels = Vec::with_capacity(n);
        let mut groups = Vec::with_capacity(n);
        let mut qualification = Vec::with_capacity(n);
        for _ in 0..n {
            let group = usize::from(rng.gen::<f64>() < config.minority_frac);
            // latent qualification: standard normal, group-independent
            let q: f32 = {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            };
            // observable features driven by qualification + noise
            let noise = |rng: &mut rand::rngs::StdRng| rng.gen_range(-1.0f32..1.0) * config.noise;
            let age = 0.5 * q + noise(&mut rng);
            let education = 0.9 * q + noise(&mut rng);
            let hours = 0.6 * q + noise(&mut rng);
            let capital = 0.4 * q + noise(&mut rng);
            let occupation = 0.7 * q + noise(&mut rng);
            // proxy leaks group membership through a "neutral" feature
            let proxy = (group as f32 - 0.5) * 1.2 + noise(&mut rng);
            features.extend_from_slice(&[age, education, hours, capital, occupation, proxy]);
            // label: qualified (q > 0) unless bias flips it for group 1
            let fair_label = q > 0.0;
            let label = if group == 1 && fair_label {
                // disadvantaged group loses positive labels with prob = bias
                rng.gen::<f64>() >= config.bias
            } else if group == 0 && !fair_label {
                // majority group gains spurious positives with prob = bias/2
                rng.gen::<f64>() < config.bias / 2.0
            } else {
                fair_label
            };
            labels.push(usize::from(label));
            groups.push(group);
            qualification.push(q);
        }
        CensusData {
            features: Tensor::from_vec(features, [n, Self::FEATURES])
                .expect("length matches by construction"),
            labels,
            groups,
            qualification,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty (cannot happen for generated data).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Positive-label rate within `group`.
    pub fn base_rate(&self, group: usize) -> f64 {
        let (pos, total) = self
            .labels
            .iter()
            .zip(&self.groups)
            .filter(|(_, &g)| g == group)
            .fold((0usize, 0usize), |(p, t), (&l, _)| (p + l, t + 1));
        if total == 0 {
            0.0
        } else {
            pos as f64 / total as f64
        }
    }

    /// View as a classification [`Dataset`] (2 classes).
    pub fn to_dataset(&self) -> Dataset {
        Dataset::new(self.features.clone(), self.labels.clone(), 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_ranges() {
        let d = CensusData::generate(CensusConfig::default());
        assert_eq!(d.features.dims(), &[1000, 6]);
        assert_eq!(d.len(), 1000);
        assert!(d.groups.iter().all(|&g| g <= 1));
        assert!(d.labels.iter().all(|&l| l <= 1));
    }

    #[test]
    fn zero_bias_gives_similar_base_rates() {
        let d = CensusData::generate(CensusConfig {
            n: 20_000,
            bias: 0.0,
            ..CensusConfig::default()
        });
        let gap = (d.base_rate(0) - d.base_rate(1)).abs();
        assert!(gap < 0.03, "unbiased base-rate gap was {gap}");
    }

    #[test]
    fn bias_knob_creates_base_rate_gap() {
        let lo = CensusData::generate(CensusConfig {
            n: 10_000,
            bias: 0.1,
            seed: 1,
            ..CensusConfig::default()
        });
        let hi = CensusData::generate(CensusConfig {
            n: 10_000,
            bias: 0.7,
            seed: 1,
            ..CensusConfig::default()
        });
        let gap_lo = lo.base_rate(0) - lo.base_rate(1);
        let gap_hi = hi.base_rate(0) - hi.base_rate(1);
        assert!(gap_hi > gap_lo + 0.1, "gaps: {gap_lo} vs {gap_hi}");
    }

    #[test]
    fn qualification_is_group_independent() {
        let d = CensusData::generate(CensusConfig {
            n: 20_000,
            bias: 0.9,
            seed: 2,
            ..CensusConfig::default()
        });
        let mean = |g: usize| {
            let vals: Vec<f32> = d
                .qualification
                .iter()
                .zip(&d.groups)
                .filter(|(_, &gg)| gg == g)
                .map(|(&q, _)| q)
                .collect();
            vals.iter().sum::<f32>() / vals.len() as f32
        };
        assert!((mean(0) - mean(1)).abs() < 0.05);
    }

    #[test]
    fn proxy_feature_leaks_group() {
        let d = CensusData::generate(CensusConfig {
            n: 5_000,
            seed: 3,
            ..CensusConfig::default()
        });
        // mean of proxy column differs strongly by group
        let mut sums = [0.0f32; 2];
        let mut counts = [0usize; 2];
        for (i, &g) in d.groups.iter().enumerate() {
            sums[g] += d.features.get(&[i, 5]);
            counts[g] += 1;
        }
        let gap = sums[1] / counts[1] as f32 - sums[0] / counts[0] as f32;
        assert!(gap > 0.8, "proxy gap was {gap}");
    }

    #[test]
    fn minority_fraction_respected() {
        let d = CensusData::generate(CensusConfig {
            n: 10_000,
            minority_frac: 0.25,
            seed: 4,
            ..CensusConfig::default()
        });
        let frac = d.groups.iter().sum::<usize>() as f64 / d.len() as f64;
        assert!((frac - 0.25).abs() < 0.02);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = CensusData::generate(CensusConfig::default());
        let b = CensusData::generate(CensusConfig::default());
        assert_eq!(a.features, b.features);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    #[should_panic(expected = "bias must lie")]
    fn rejects_bias_out_of_range() {
        CensusData::generate(CensusConfig {
            bias: 1.5,
            ..CensusConfig::default()
        });
    }

    #[test]
    fn to_dataset_roundtrip() {
        let d = CensusData::generate(CensusConfig {
            n: 100,
            ..CensusConfig::default()
        });
        let ds = d.to_dataset();
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.classes, 2);
    }
}
