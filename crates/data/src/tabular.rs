//! Correlated multi-attribute tables with exactly-known selectivities.
//!
//! Neural selectivity estimators (E13) win precisely where classic
//! single-column histograms break: correlated attributes. This generator
//! builds tables whose columns share a latent factor (so attribute-value
//! independence fails badly) and can compute the *exact* selectivity of any
//! conjunctive range predicate by brute force — the ground truth against
//! which estimator q-errors are measured.

use dl_tensor::init;
use rand::rngs::StdRng;
use rand::Rng;

/// A numeric table whose columns are correlated through a latent factor.
#[derive(Debug, Clone)]
pub struct CorrelatedTable {
    /// Row-major values, `rows x cols`.
    data: Vec<f32>,
    rows: usize,
    cols: usize,
    /// Correlation strength in `[0, 1]` used at generation.
    pub correlation: f32,
}

impl CorrelatedTable {
    /// Generates a `rows x cols` table. Each column is
    /// `correlation * latent + (1 - correlation) * independent_noise`,
    /// scaled to roughly `[0, 100]`.
    ///
    /// # Panics
    /// Panics when `rows == 0` or `cols == 0`, or correlation is outside
    /// `[0, 1]`.
    pub fn generate(rows: usize, cols: usize, correlation: f32, seed: u64) -> Self {
        assert!(rows > 0 && cols > 0, "table must be non-empty");
        assert!(
            (0.0..=1.0).contains(&correlation),
            "correlation must lie in [0,1], got {correlation}"
        );
        let mut rng = init::rng(seed);
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows {
            let latent: f32 = rng.gen_range(0.0..100.0);
            for _ in 0..cols {
                let independent: f32 = rng.gen_range(0.0..100.0);
                data.push(correlation * latent + (1.0 - correlation) * independent);
            }
        }
        CorrelatedTable {
            data,
            rows,
            cols,
            correlation,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Value at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.data[row * self.cols + col]
    }

    /// One full row as a slice.
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Exact selectivity of a conjunctive range predicate, by full scan.
    pub fn true_selectivity(&self, predicate: &RangePredicate) -> f64 {
        let matching = (0..self.rows)
            .filter(|&r| predicate.matches(self.row(r)))
            .count();
        matching as f64 / self.rows as f64
    }

    /// Exact matching-row count of a predicate, by full scan.
    pub fn true_cardinality(&self, predicate: &RangePredicate) -> usize {
        (0..self.rows)
            .filter(|&r| predicate.matches(self.row(r)))
            .count()
    }
}

/// A conjunction of per-column range constraints `lo <= v < hi`.
/// Columns absent from the predicate are unconstrained.
#[derive(Debug, Clone, PartialEq)]
pub struct RangePredicate {
    /// `(column, lo, hi)` triples, all of which must hold.
    pub clauses: Vec<(usize, f32, f32)>,
}

impl RangePredicate {
    /// A predicate from clause triples.
    pub fn new(clauses: Vec<(usize, f32, f32)>) -> Self {
        RangePredicate { clauses }
    }

    /// True when the row satisfies every clause.
    pub fn matches(&self, row: &[f32]) -> bool {
        self.clauses
            .iter()
            .all(|&(c, lo, hi)| row[c] >= lo && row[c] < hi)
    }

    /// Samples a random predicate constraining `dims` distinct columns of a
    /// `cols`-wide table. Ranges are centered uniformly with width drawn
    /// from 10-60 units so selectivities span several orders of magnitude.
    ///
    /// # Panics
    /// Panics when `dims > cols`.
    pub fn sample(cols: usize, dims: usize, rng: &mut StdRng) -> Self {
        let chosen = init::sample_indices(cols, dims, rng);
        let clauses = chosen
            .into_iter()
            .map(|c| {
                let width = rng.gen_range(10.0f32..60.0);
                let lo = rng.gen_range(0.0f32..(100.0 - width));
                (c, lo, lo + width)
            })
            .collect();
        RangePredicate { clauses }
    }

    /// The selectivity this predicate would have under the (wrong)
    /// attribute-value-independence assumption with uniform columns —
    /// what a naive single-column histogram estimator believes.
    pub fn independence_estimate(&self) -> f64 {
        self.clauses
            .iter()
            .map(|&(_, lo, hi)| f64::from((hi.min(100.0) - lo.max(0.0)).max(0.0)) / 100.0)
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape() {
        let t = CorrelatedTable::generate(100, 4, 0.5, 0);
        assert_eq!(t.rows(), 100);
        assert_eq!(t.cols(), 4);
        assert_eq!(t.row(3).len(), 4);
    }

    #[test]
    fn values_in_expected_range() {
        let t = CorrelatedTable::generate(1000, 3, 0.7, 1);
        for r in 0..1000 {
            for c in 0..3 {
                let v = t.get(r, c);
                assert!((0.0..=100.0).contains(&v), "value {v} out of range");
            }
        }
    }

    #[test]
    fn correlation_knob_works() {
        // empirical column correlation grows with the knob
        let corr_of = |strength: f32| {
            let t = CorrelatedTable::generate(5000, 2, strength, 2);
            let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
            for r in 0..t.rows() {
                let x = f64::from(t.get(r, 0));
                let y = f64::from(t.get(r, 1));
                sx += x;
                sy += y;
                sxx += x * x;
                syy += y * y;
                sxy += x * y;
            }
            let n = t.rows() as f64;
            (n * sxy - sx * sy) / ((n * sxx - sx * sx).sqrt() * (n * syy - sy * sy).sqrt())
        };
        assert!(corr_of(0.0).abs() < 0.05);
        assert!(corr_of(0.9) > 0.8);
        assert!(corr_of(0.5) > corr_of(0.2));
    }

    #[test]
    fn predicate_matching() {
        let p = RangePredicate::new(vec![(0, 10.0, 20.0), (1, 0.0, 50.0)]);
        assert!(p.matches(&[15.0, 25.0]));
        assert!(!p.matches(&[25.0, 25.0]));
        assert!(!p.matches(&[15.0, 75.0]));
        assert!(!p.matches(&[20.0, 25.0])); // hi is exclusive
        assert!(p.matches(&[10.0, 0.0])); // lo is inclusive
    }

    #[test]
    fn true_selectivity_matches_manual_count() {
        let t = CorrelatedTable::generate(200, 2, 0.0, 3);
        let p = RangePredicate::new(vec![(0, 0.0, 50.0)]);
        let expected = (0..200).filter(|&r| t.get(r, 0) < 50.0).count();
        assert_eq!(t.true_cardinality(&p), expected);
        assert!((t.true_selectivity(&p) - expected as f64 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn independence_estimate_fails_under_correlation() {
        // with strong correlation, the conjunction of two aligned ranges is
        // far more selective than independence predicts... or far less.
        let t = CorrelatedTable::generate(20_000, 2, 0.95, 4);
        let p = RangePredicate::new(vec![(0, 0.0, 30.0), (1, 0.0, 30.0)]);
        let truth = t.true_selectivity(&p);
        let indep = p.independence_estimate();
        // correlated columns: both small together much more often
        assert!(
            truth > indep * 2.0,
            "expected correlation to break independence: truth {truth}, indep {indep}"
        );
    }

    #[test]
    fn sampled_predicates_are_valid() {
        let mut rng = init::rng(5);
        for _ in 0..50 {
            let p = RangePredicate::sample(6, 3, &mut rng);
            assert_eq!(p.clauses.len(), 3);
            let mut cols: Vec<usize> = p.clauses.iter().map(|c| c.0).collect();
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(cols.len(), 3, "duplicate columns in predicate");
            assert!(p.clauses.iter().all(|&(_, lo, hi)| lo < hi));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CorrelatedTable::generate(50, 3, 0.5, 9);
        let b = CorrelatedTable::generate(50, 3, 0.5, 9);
        assert_eq!(a.data, b.data);
    }
}
