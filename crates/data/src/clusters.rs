//! Gaussian blob and two-moons generators.

use dl_nn::Dataset;
use dl_tensor::{init, Tensor};

/// `n` samples split evenly across `k` Gaussian blobs in `dim` dimensions.
///
/// Blob centers are placed deterministically on a scaled simplex-like grid
/// so that inter-center distance is controlled by `separation`; per-sample
/// noise has standard deviation `noise`.
///
/// # Panics
/// Panics when `k == 0` or `dim == 0` or `n == 0`.
pub fn blobs(n: usize, k: usize, dim: usize, separation: f32, noise: f32, seed: u64) -> Dataset {
    assert!(n > 0 && k > 0 && dim > 0, "blobs requires positive n, k, dim");
    let mut rng = init::rng(seed);
    // Deterministic, well-spread centers: one coordinate pattern per class.
    let centers: Vec<Vec<f32>> = (0..k)
        .map(|c| {
            (0..dim)
                .map(|d| {
                    let phase = (c * dim + d) as f32 * 2.399_963; // golden-angle spread
                    separation * phase.sin()
                })
                .collect()
        })
        .collect();
    let mut xs = Vec::with_capacity(n * dim);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % k;
        let jitter = init::normal([dim], 0.0, noise, &mut rng);
        for (&center, &j) in centers[c].iter().zip(jitter.data()) {
            xs.push(center + j);
        }
        ys.push(c);
    }
    Dataset::new(
        Tensor::from_vec(xs, [n, dim]).expect("length matches by construction"),
        ys,
        k,
    )
}

/// The classic two interleaved half-moons in 2-D: linearly inseparable,
/// good for showing why depth matters.
pub fn two_moons(n: usize, noise: f32, seed: u64) -> Dataset {
    assert!(n > 0, "two_moons requires positive n");
    let mut rng = init::rng(seed);
    let mut xs = Vec::with_capacity(n * 2);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % 2;
        let t = std::f32::consts::PI * (i / 2) as f32 / ((n / 2).max(1) as f32);
        let (mut x, mut y) = if c == 0 {
            (t.cos(), t.sin())
        } else {
            (1.0 - t.cos(), 0.5 - t.sin())
        };
        let jitter = init::normal([2], 0.0, noise, &mut rng);
        x += jitter.data()[0];
        y += jitter.data()[1];
        xs.push(x);
        xs.push(y);
        ys.push(c);
    }
    Dataset::new(
        Tensor::from_vec(xs, [n, 2]).expect("length matches by construction"),
        ys,
        2,
    )
}

/// High-dimensional clustered data for the t-SNE experiment (E17): `k`
/// clusters embedded in `dim` dimensions with tight within-cluster noise.
/// Returns the data matrix and the cluster label of every row.
pub fn high_dim_clusters(
    n: usize,
    k: usize,
    dim: usize,
    seed: u64,
) -> (Tensor, Vec<usize>) {
    let ds = blobs(n, k, dim, 10.0, 1.0, seed);
    (ds.x, ds.y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_shape_and_labels() {
        let d = blobs(30, 3, 4, 5.0, 0.1, 0);
        assert_eq!(d.x.dims(), &[30, 4]);
        assert_eq!(d.len(), 30);
        assert_eq!(d.classes, 3);
        for c in 0..3 {
            assert_eq!(d.y.iter().filter(|&&y| y == c).count(), 10);
        }
    }

    #[test]
    fn blobs_are_seed_deterministic() {
        let a = blobs(20, 2, 3, 5.0, 0.2, 7);
        let b = blobs(20, 2, 3, 5.0, 0.2, 7);
        assert_eq!(a.x, b.x);
        let c = blobs(20, 2, 3, 5.0, 0.2, 8);
        assert_ne!(a.x, c.x);
    }

    #[test]
    fn blobs_separation_controls_distance() {
        // same-class points cluster tighter than cross-class points
        let d = blobs(100, 2, 2, 8.0, 0.2, 1);
        let mut within = 0.0;
        let mut across = 0.0;
        let mut wn = 0;
        let mut an = 0;
        for i in 0..50 {
            for j in (i + 1)..50 {
                let dist: f32 = (0..2)
                    .map(|k| (d.x.get(&[i, k]) - d.x.get(&[j, k])).powi(2))
                    .sum::<f32>()
                    .sqrt();
                if d.y[i] == d.y[j] {
                    within += dist;
                    wn += 1;
                } else {
                    across += dist;
                    an += 1;
                }
            }
        }
        assert!(within / wn as f32 * 2.0 < across / an as f32);
    }

    #[test]
    fn two_moons_is_balanced_and_2d() {
        let d = two_moons(100, 0.05, 0);
        assert_eq!(d.x.dims(), &[100, 2]);
        assert_eq!(d.y.iter().filter(|&&y| y == 0).count(), 50);
    }

    #[test]
    fn high_dim_clusters_shapes() {
        let (x, labels) = high_dim_clusters(40, 4, 32, 0);
        assert_eq!(x.dims(), &[40, 32]);
        assert_eq!(labels.len(), 40);
        assert!(labels.iter().all(|&l| l < 4));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn blobs_rejects_zero_classes() {
        blobs(10, 0, 2, 1.0, 0.1, 0);
    }
}
