//! Synchronous data-parallel SGD and Local SGD.
//!
//! Local SGD (§2.1) relaxes the constraint that every worker holds fresh
//! parameters: workers train independently for `sync_period` steps, then
//! average. Communication drops by the sync period; accuracy degrades
//! gracefully. `sync_period == 1` recovers fully-synchronous data-parallel
//! training (each worker still takes its own local step before averaging,
//! the standard local-update formulation).

use crate::sim::Cluster;
use dl_nn::{loss::one_hot, Dataset, Loss, Network, Optimizer};
use dl_obs::{fields, NullRecorder, Recorder, ToFields};
use dl_tensor::init;

/// Local SGD configuration.
#[derive(Debug, Clone)]
pub struct LocalSgdConfig {
    /// Steps between parameter averaging (1 = synchronous).
    pub sync_period: usize,
    /// Total optimizer steps per worker.
    pub steps: usize,
    /// Per-worker mini-batch size.
    pub batch_size: usize,
    /// Learning rate (plain SGD keeps workers' trajectories comparable).
    pub lr: f32,
    /// Shuffle/shard seed.
    pub seed: u64,
}

impl Default for LocalSgdConfig {
    fn default() -> Self {
        LocalSgdConfig {
            sync_period: 1,
            steps: 200,
            batch_size: 16,
            lr: 0.05,
            seed: 0,
        }
    }
}

/// Outcome of a Local SGD run.
#[must_use = "the report carries the accuracy/bytes/time measurements this run exists to produce"]
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSgdReport {
    /// Sync period used.
    pub sync_period: usize,
    /// Final accuracy of the averaged model on the evaluation set.
    pub accuracy: f64,
    /// Total bytes communicated (all workers, all syncs).
    pub bytes_communicated: u64,
    /// Simulated wall-clock seconds (compute + communication).
    pub simulated_seconds: f64,
    /// Number of averaging rounds that occurred.
    pub sync_rounds: usize,
}

impl ToFields for LocalSgdReport {
    fn to_fields(&self) -> dl_obs::Fields {
        fields! {
            "sync_period" => self.sync_period,
            "accuracy" => self.accuracy,
            "bytes_communicated" => self.bytes_communicated,
            "simulated_seconds" => self.simulated_seconds,
            "sync_rounds" => self.sync_rounds,
        }
    }
}

/// Runs Local SGD with one worker per cluster device.
///
/// Data is sharded round-robin across workers; every worker runs real
/// forward/backward passes, and parameters are averaged every
/// `sync_period` steps. Returns the averaged model and the report.
///
/// # Panics
/// Panics when `sync_period == 0` or the dataset is smaller than the
/// worker count.
pub fn local_sgd(
    cluster: &Cluster,
    data: &Dataset,
    eval: &Dataset,
    dims: &[usize],
    config: &LocalSgdConfig,
) -> (Network, LocalSgdReport) {
    local_sgd_traced(cluster, data, eval, dims, config, &NullRecorder::new())
}

/// [`local_sgd`] with tracing: the run, each averaging round, and the
/// communicated bytes are emitted onto `rec`, with the recorder's
/// [`dl_obs::VirtualClock`] mirroring the report's simulated seconds.
///
/// The recorder only *observes* — it never participates in an RNG draw or
/// an arithmetic operation — so the trajectory is bit-identical to the
/// untraced run.
///
/// # Panics
/// As [`local_sgd`].
pub fn local_sgd_traced(
    cluster: &Cluster,
    data: &Dataset,
    eval: &Dataset,
    dims: &[usize],
    config: &LocalSgdConfig,
    rec: &dyn Recorder,
) -> (Network, LocalSgdReport) {
    assert!(config.sync_period > 0, "sync_period must be positive");
    let workers = cluster.len();
    assert!(
        data.len() >= workers,
        "dataset of {} rows cannot shard across {workers} workers",
        data.len()
    );
    // identical initialization on every worker (standard practice)
    let mut seed_rng = init::rng(config.seed);
    let reference = Network::mlp(dims, &mut seed_rng);
    let mut nets: Vec<Network> = (0..workers).map(|_| reference.clone()).collect();
    let mut opts: Vec<Optimizer> = (0..workers).map(|_| Optimizer::sgd(config.lr)).collect();
    // round-robin shards
    let shards: Vec<Vec<usize>> = (0..workers)
        .map(|w| (w..data.len()).step_by(workers).collect())
        .collect();
    let mut shard_rngs: Vec<_> = (0..workers)
        .map(|w| init::rng(config.seed.wrapping_add(w as u64 + 1)))
        .collect();
    let step_flops = reference.cost_profile(config.batch_size).train_step_flops();
    let grad_bytes = (reference.param_count() * 4) as u64;
    let mut bytes = 0u64;
    let mut seconds = 0.0f64;
    let mut rounds = 0usize;
    // Simulated-time origin: the shared clock may already be past zero
    // when several runs trace onto one recorder.
    let t0 = rec.clock().now();
    let run_span = rec.span_start(
        0,
        "local_sgd",
        fields! {
            "workers" => workers,
            "sync_period" => config.sync_period,
            "steps" => config.steps,
        },
    );
    for step in 0..config.steps {
        for w in 0..workers {
            // sample a batch from this worker's shard
            let idx: Vec<usize> = (0..config.batch_size)
                .map(|_| shards[w][init::sample_indices(shards[w].len(), 1, &mut shard_rngs[w])[0]])
                .collect();
            let xb = data.x.select_rows(&idx);
            let labels: Vec<usize> = idx.iter().map(|&i| data.y[i]).collect();
            let targets = one_hot(&labels, data.classes);
            nets[w].zero_grads();
            let logits = nets[w].forward(&xb, true);
            let (_, grad) = Loss::SoftmaxCrossEntropy.evaluate(&logits, &targets);
            nets[w].backward(&grad);
            let mut pg = nets[w].params_and_grads();
            opts[w].step(&mut pg, 1.0);
        }
        // compute time: workers run in parallel, slowest dominates
        seconds += cluster
            .devices
            .iter()
            .map(|d| d.compute_time(step_flops))
            .fold(0.0, f64::max);
        rec.clock().set(t0 + seconds);
        if (step + 1) % config.sync_period == 0 {
            let round_span =
                rec.span_start(0, "sync_round", fields! { "round" => rounds, "step" => step });
            average_params(&mut nets);
            seconds += cluster.allreduce_time(grad_bytes);
            bytes += grad_bytes * workers as u64;
            rounds += 1;
            rec.clock().set(t0 + seconds);
            rec.counter(0, "bytes_communicated", grad_bytes * workers as u64);
            rec.span_end(round_span, fields! { "bytes" => grad_bytes * workers as u64 });
        }
    }
    average_params(&mut nets);
    let mut model = nets.swap_remove(0);
    model.clear_caches();
    let accuracy = dl_nn::metrics::accuracy(&model.predict(&eval.x), &eval.y);
    let report = LocalSgdReport {
        sync_period: config.sync_period,
        accuracy,
        bytes_communicated: bytes,
        simulated_seconds: seconds,
        sync_rounds: rounds,
    };
    rec.span_end(run_span, report.to_fields());
    (model, report)
}

/// Local SGD with **failure injection**: `failures` lists `(step, worker)`
/// pairs; from its failure step onward a worker stops training and stops
/// contributing to averages (crash-stop). Training proceeds on the
/// survivors — the graceful-degradation behaviour a synchronous system
/// must exhibit.
///
/// Returns the model, the report, and the number of workers still alive.
///
/// # Panics
/// Panics when every worker fails, or on the same invalid inputs as
/// [`local_sgd`].
pub fn local_sgd_with_failures(
    cluster: &Cluster,
    data: &Dataset,
    eval: &Dataset,
    dims: &[usize],
    config: &LocalSgdConfig,
    failures: &[(usize, usize)],
) -> (Network, LocalSgdReport, usize) {
    assert!(config.sync_period > 0, "sync_period must be positive");
    let workers = cluster.len();
    assert!(
        failures.iter().all(|&(_, w)| w < workers),
        "failure names an unknown worker"
    );
    let mut seed_rng = init::rng(config.seed);
    let reference = Network::mlp(dims, &mut seed_rng);
    let mut nets: Vec<Network> = (0..workers).map(|_| reference.clone()).collect();
    let mut opts: Vec<Optimizer> = (0..workers).map(|_| Optimizer::sgd(config.lr)).collect();
    let mut alive = vec![true; workers];
    let shards: Vec<Vec<usize>> = (0..workers)
        .map(|w| (w..data.len()).step_by(workers).collect())
        .collect();
    let mut shard_rngs: Vec<_> = (0..workers)
        .map(|w| init::rng(config.seed.wrapping_add(w as u64 + 1)))
        .collect();
    let step_flops = reference.cost_profile(config.batch_size).train_step_flops();
    let grad_bytes = (reference.param_count() * 4) as u64;
    let mut bytes = 0u64;
    let mut seconds = 0.0f64;
    let mut rounds = 0usize;
    for step in 0..config.steps {
        for &(fail_step, worker) in failures {
            if fail_step == step {
                alive[worker] = false;
            }
        }
        let living: Vec<usize> = (0..workers).filter(|&w| alive[w]).collect();
        assert!(!living.is_empty(), "all workers failed at step {step}");
        for &w in &living {
            let idx: Vec<usize> = (0..config.batch_size)
                .map(|_| shards[w][init::sample_indices(shards[w].len(), 1, &mut shard_rngs[w])[0]])
                .collect();
            let xb = data.x.select_rows(&idx);
            let labels: Vec<usize> = idx.iter().map(|&i| data.y[i]).collect();
            let targets = one_hot(&labels, data.classes);
            nets[w].zero_grads();
            let logits = nets[w].forward(&xb, true);
            let (_, grad) = Loss::SoftmaxCrossEntropy.evaluate(&logits, &targets);
            nets[w].backward(&grad);
            let mut pg = nets[w].params_and_grads();
            opts[w].step(&mut pg, 1.0);
        }
        seconds += cluster
            .devices
            .iter()
            .map(|d| d.compute_time(step_flops))
            .fold(0.0, f64::max);
        if (step + 1) % config.sync_period == 0 {
            average_surviving(&mut nets, &alive);
            seconds += cluster.allreduce_time(grad_bytes);
            bytes += grad_bytes * living.len() as u64;
            rounds += 1;
        }
    }
    average_surviving(&mut nets, &alive);
    let survivor = (0..workers).find(|&w| alive[w]).expect("checked above");
    let mut model = nets.swap_remove(survivor);
    model.clear_caches();
    let accuracy = dl_nn::metrics::accuracy(&model.predict(&eval.x), &eval.y);
    let living = alive.iter().filter(|&&a| a).count();
    (
        model,
        LocalSgdReport {
            sync_period: config.sync_period,
            accuracy,
            bytes_communicated: bytes,
            simulated_seconds: seconds,
            sync_rounds: rounds,
        },
        living,
    )
}

/// Averages parameters over surviving workers only (also the averaging
/// primitive of [`crate::resilient`]'s elastic driver).
pub(crate) fn average_surviving(nets: &mut [Network], alive: &[bool]) {
    let living: Vec<usize> = (0..nets.len()).filter(|&w| alive[w]).collect();
    if living.len() <= 1 {
        return;
    }
    let mut mean = nets[living[0]].flat_params();
    for &w in living.iter().skip(1) {
        for (m, v) in mean.iter_mut().zip(nets[w].flat_params()) {
            *m += v;
        }
    }
    let n = living.len() as f32;
    for m in &mut mean {
        *m /= n;
    }
    for &w in &living {
        nets[w].set_flat_params(&mean);
    }
}

/// Replaces every network's parameters with the elementwise mean.
fn average_params(nets: &mut [Network]) {
    if nets.len() <= 1 {
        return;
    }
    let mut mean = nets[0].flat_params();
    for net in nets.iter().skip(1) {
        for (m, v) in mean.iter_mut().zip(net.flat_params()) {
            *m += v;
        }
    }
    let n = nets.len() as f32;
    for m in &mut mean {
        *m /= n;
    }
    for net in nets.iter_mut() {
        net.set_flat_params(&mean);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Device, Link};
    use dl_data::blobs;

    fn cluster(n: usize) -> Cluster {
        Cluster::homogeneous(n, Device::accelerator(), Link::ethernet())
    }

    #[test]
    fn average_params_is_elementwise_mean() {
        let mut r = init::rng(0);
        let a = Network::mlp(&[2, 3, 2], &mut r);
        let b = Network::mlp(&[2, 3, 2], &mut r);
        let expected: Vec<f32> = a
            .flat_params()
            .iter()
            .zip(b.flat_params())
            .map(|(&x, y)| (x + y) / 2.0)
            .collect();
        let mut nets = vec![a, b];
        average_params(&mut nets);
        for net in &nets {
            let got = net.flat_params();
            for (g, e) in got.iter().zip(&expected) {
                assert!((g - e).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn sync_training_learns() {
        let data = blobs(200, 2, 4, 6.0, 0.4, 0);
        let eval = blobs(80, 2, 4, 6.0, 0.4, 1);
        let (_, report) = local_sgd(
            &cluster(4),
            &data,
            &eval,
            &[4, 16, 2],
            &LocalSgdConfig {
                steps: 150,
                ..LocalSgdConfig::default()
            },
        );
        assert!(report.accuracy > 0.9, "accuracy {}", report.accuracy);
        assert_eq!(report.sync_rounds, 150);
    }

    #[test]
    fn longer_period_cuts_communication() {
        let data = blobs(200, 2, 4, 6.0, 0.4, 2);
        let eval = blobs(80, 2, 4, 6.0, 0.4, 3);
        let run = |period| {
            local_sgd(
                &cluster(4),
                &data,
                &eval,
                &[4, 16, 2],
                &LocalSgdConfig {
                    sync_period: period,
                    steps: 120,
                    ..LocalSgdConfig::default()
                },
            )
            .1
        };
        let sync = run(1);
        let local8 = run(8);
        assert!(local8.bytes_communicated * 7 < sync.bytes_communicated);
        assert!(local8.simulated_seconds < sync.simulated_seconds);
        // accuracy should remain in the ballpark (tutorial's claim)
        assert!(local8.accuracy > sync.accuracy - 0.15);
    }

    #[test]
    fn single_worker_never_communicates() {
        let data = blobs(100, 2, 3, 6.0, 0.4, 4);
        let (_, report) = local_sgd(
            &cluster(1),
            &data,
            &data,
            &[3, 8, 2],
            &LocalSgdConfig {
                steps: 50,
                ..LocalSgdConfig::default()
            },
        );
        // bytes counted only across links; with one worker the all-reduce
        // is free but the bookkeeping still counts local "rounds"
        assert_eq!(report.sync_rounds, 50);
        assert!(report.simulated_seconds > 0.0);
    }

    #[test]
    fn training_survives_worker_failures() {
        let data = blobs(200, 2, 4, 6.0, 0.4, 10);
        let eval = blobs(80, 2, 4, 6.0, 0.4, 11);
        // two of four workers crash mid-training
        let (_, report, living) = local_sgd_with_failures(
            &cluster(4),
            &data,
            &eval,
            &[4, 16, 2],
            &LocalSgdConfig {
                steps: 150,
                ..LocalSgdConfig::default()
            },
            &[(40, 1), (80, 3)],
        );
        assert_eq!(living, 2);
        assert!(
            report.accuracy > 0.9,
            "survivors should still learn: {}",
            report.accuracy
        );
    }

    #[test]
    fn no_failures_matches_plain_local_sgd() {
        let data = blobs(120, 2, 3, 6.0, 0.4, 12);
        let cfg = LocalSgdConfig {
            steps: 60,
            ..LocalSgdConfig::default()
        };
        let (m1, r1) = local_sgd(&cluster(3), &data, &data, &[3, 8, 2], &cfg);
        let (m2, r2, living) =
            local_sgd_with_failures(&cluster(3), &data, &data, &[3, 8, 2], &cfg, &[]);
        assert_eq!(living, 3);
        assert_eq!(r1.accuracy, r2.accuracy);
        assert_eq!(m1.flat_params(), m2.flat_params());
    }

    #[test]
    #[should_panic(expected = "all workers failed")]
    fn total_failure_is_fatal() {
        let data = blobs(60, 2, 3, 6.0, 0.4, 13);
        let _ = local_sgd_with_failures(
            &cluster(2),
            &data,
            &data,
            &[3, 4, 2],
            &LocalSgdConfig {
                steps: 20,
                ..LocalSgdConfig::default()
            },
            &[(5, 0), (5, 1)],
        );
    }

    #[test]
    #[should_panic(expected = "sync_period must be positive")]
    fn zero_period_rejected() {
        let data = blobs(50, 2, 3, 6.0, 0.4, 5);
        let _ = local_sgd(
            &cluster(2),
            &data,
            &data,
            &[3, 4, 2],
            &LocalSgdConfig {
                sync_period: 0,
                ..LocalSgdConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "cannot shard")]
    fn dataset_smaller_than_worker_count_rejected() {
        let data = blobs(3, 2, 3, 6.0, 0.4, 6);
        let _ = local_sgd(
            &cluster(4),
            &data,
            &data,
            &[3, 4, 2],
            &LocalSgdConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "sync_period must be positive")]
    fn zero_period_rejected_with_failures() {
        let data = blobs(50, 2, 3, 6.0, 0.4, 7);
        let _ = local_sgd_with_failures(
            &cluster(2),
            &data,
            &data,
            &[3, 4, 2],
            &LocalSgdConfig {
                sync_period: 0,
                ..LocalSgdConfig::default()
            },
            &[],
        );
    }

    #[test]
    #[should_panic(expected = "unknown worker")]
    fn failure_for_unknown_worker_rejected() {
        let data = blobs(50, 2, 3, 6.0, 0.4, 8);
        let _ = local_sgd_with_failures(
            &cluster(2),
            &data,
            &data,
            &[3, 4, 2],
            &LocalSgdConfig::default(),
            &[(5, 9)],
        );
    }

    #[test]
    fn same_seed_and_config_reproduce_identical_reports() {
        let data = blobs(120, 2, 4, 6.0, 0.4, 14);
        let eval = blobs(60, 2, 4, 6.0, 0.4, 15);
        let cfg = LocalSgdConfig {
            sync_period: 4,
            steps: 60,
            seed: 77,
            ..LocalSgdConfig::default()
        };
        let (m1, r1) = local_sgd(&cluster(4), &data, &eval, &[4, 16, 2], &cfg);
        let (m2, r2) = local_sgd(&cluster(4), &data, &eval, &[4, 16, 2], &cfg);
        assert_eq!(r1, r2, "reports must be bit-identical across reruns");
        assert_eq!(m1.flat_params(), m2.flat_params());
    }
}
