//! Deterministic fault injection for the simulated cluster.
//!
//! Part 1 of the tutorial (§2.1) treats distributed training as a
//! consistency/robustness tradeoff, but every driver in this crate used to
//! assume a perfect cluster. This module supplies the missing failure
//! model: a [`FaultPlan`] schedules crashes, rejoins, link degradation and
//! straggler episodes in simulated *step* time. Plans are either written
//! explicitly or generated from an MTBF/MTTR-style [`FaultProfile`] with
//! the workspace's seeded RNG, so every run — faulty or not — is exactly
//! reproducible.
//!
//! Inter-arrival times are sampled by inverse transform from the same
//! uniform stream regardless of the configured rates, so two profiles that
//! differ only in a rate produce *coupled* schedules (the same underlying
//! draws, scaled). That keeps sweeps over failure rates smooth and makes
//! monotonicity properties testable.

use dl_tensor::init;
use rand::rngs::StdRng;
use rand::Rng;

/// One scheduled fault, in simulated step time.
///
/// Crash/rejoin are point events; degradation and straggling are episodes
/// active on steps in `from_step..to_step` (half-open).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Worker `worker` crash-stops at the start of step `at_step`.
    WorkerCrash {
        /// Worker id (index into the cluster's device list).
        worker: usize,
        /// Step at whose start the worker disappears.
        at_step: usize,
    },
    /// Worker `worker` comes back at the start of step `at_step`.
    WorkerRejoin {
        /// Worker id.
        worker: usize,
        /// Step at whose start the worker is available again.
        at_step: usize,
    },
    /// Every link's effective throughput is multiplied by `factor`
    /// (in `(0, 1]`) while `from_step <= step < to_step`.
    LinkDegrade {
        /// Throughput multiplier in `(0, 1]` (1 = healthy).
        factor: f64,
        /// First affected step.
        from_step: usize,
        /// First unaffected step.
        to_step: usize,
    },
    /// Worker `worker` computes `slowdown`x slower while
    /// `from_step <= step < to_step`.
    Straggler {
        /// Worker id.
        worker: usize,
        /// Compute-time multiplier, `>= 1`.
        slowdown: f64,
        /// First affected step.
        from_step: usize,
        /// First unaffected step.
        to_step: usize,
    },
}

impl FaultEvent {
    /// The step at which the event first takes effect.
    pub fn at_step(&self) -> usize {
        match *self {
            FaultEvent::WorkerCrash { at_step, .. } | FaultEvent::WorkerRejoin { at_step, .. } => {
                at_step
            }
            FaultEvent::LinkDegrade { from_step, .. } | FaultEvent::Straggler { from_step, .. } => {
                from_step
            }
        }
    }

    /// True for the membership (crash/rejoin) point events.
    pub fn is_membership(&self) -> bool {
        matches!(
            self,
            FaultEvent::WorkerCrash { .. } | FaultEvent::WorkerRejoin { .. }
        )
    }
}

/// A complete, validated fault schedule, ordered by effect step.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The fault-free plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan from explicit events, sorted (stably) by effect step.
    ///
    /// # Panics
    /// Panics on an invalid event: a degrade factor outside `(0, 1]`, a
    /// straggler slowdown below 1, or an empty episode (`from >= to`).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        for e in &events {
            match *e {
                FaultEvent::LinkDegrade {
                    factor,
                    from_step,
                    to_step,
                } => {
                    assert!(
                        factor > 0.0 && factor <= 1.0,
                        "degrade factor must lie in (0,1], got {factor}"
                    );
                    assert!(from_step < to_step, "degrade episode must be non-empty");
                }
                FaultEvent::Straggler {
                    slowdown,
                    from_step,
                    to_step,
                    ..
                } => {
                    assert!(slowdown >= 1.0, "straggler slowdown must be >= 1, got {slowdown}");
                    assert!(from_step < to_step, "straggler episode must be non-empty");
                }
                FaultEvent::WorkerCrash { .. } | FaultEvent::WorkerRejoin { .. } => {}
            }
        }
        events.sort_by_key(FaultEvent::at_step);
        FaultPlan { events }
    }

    /// All events, ordered by effect step.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when nothing is scheduled (the fault-free plan).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled crash events.
    pub fn crash_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, FaultEvent::WorkerCrash { .. }))
            .count()
    }

    /// Effective link-throughput multiplier at `step`: the product of all
    /// active degrade factors, floored at `1e-6` (1.0 when healthy).
    pub fn link_factor_at(&self, step: usize) -> f64 {
        let mut factor = 1.0;
        for e in &self.events {
            if let FaultEvent::LinkDegrade {
                factor: f,
                from_step,
                to_step,
            } = *e
            {
                if from_step <= step && step < to_step {
                    factor *= f;
                }
            }
        }
        factor.max(1e-6)
    }

    /// Compute-time multiplier for `worker` at `step`: the product of all
    /// active straggler slowdowns (1.0 when healthy).
    pub fn slowdown_at(&self, step: usize, worker: usize) -> f64 {
        let mut slowdown = 1.0;
        for e in &self.events {
            if let FaultEvent::Straggler {
                worker: w,
                slowdown: s,
                from_step,
                to_step,
            } = *e
            {
                if w == worker && from_step <= step && step < to_step {
                    slowdown *= s;
                }
            }
        }
        slowdown
    }

    /// Generates a plan for `workers` workers over `horizon` steps from an
    /// MTBF/MTTR-style profile. Fully determined by `profile.seed`; an
    /// all-zero profile yields the empty plan.
    pub fn from_profile(profile: &FaultProfile, workers: usize, horizon: usize) -> Self {
        let mut events = Vec::new();
        // Crash/repair cycles, one independent stream per worker.
        if profile.crash_mtbf > 0.0 {
            for w in 0..workers {
                let mut rng = stream_rng(profile.seed, 1, w as u64);
                let mut t = 0.0f64;
                loop {
                    t += exponential(profile.crash_mtbf, &mut rng);
                    let at_step = t.ceil() as usize;
                    if at_step >= horizon {
                        break;
                    }
                    events.push(FaultEvent::WorkerCrash { worker: w, at_step });
                    if profile.repair_mttr <= 0.0 {
                        break; // no repair process: the worker stays down
                    }
                    t += exponential(profile.repair_mttr, &mut rng).max(1.0);
                    let rejoin = t.ceil() as usize;
                    if rejoin >= horizon {
                        break;
                    }
                    events.push(FaultEvent::WorkerRejoin {
                        worker: w,
                        at_step: rejoin,
                    });
                }
            }
        }
        // Link-degradation episodes, one global stream.
        if profile.degrade_mtbf > 0.0 {
            let mut rng = stream_rng(profile.seed, 2, 0);
            let mut t = 0.0f64;
            loop {
                t += exponential(profile.degrade_mtbf, &mut rng);
                let from_step = t.ceil() as usize;
                if from_step >= horizon {
                    break;
                }
                let duration = exponential(profile.degrade_duration.max(1.0), &mut rng)
                    .ceil()
                    .max(1.0);
                let to_step = (from_step + duration as usize).min(horizon);
                events.push(FaultEvent::LinkDegrade {
                    factor: profile.degrade_factor,
                    from_step,
                    to_step,
                });
                t += duration;
            }
        }
        // Straggler episodes, one stream per worker.
        if profile.straggler_mtbf > 0.0 {
            for w in 0..workers {
                let mut rng = stream_rng(profile.seed, 3, w as u64);
                let mut t = 0.0f64;
                loop {
                    t += exponential(profile.straggler_mtbf, &mut rng);
                    let from_step = t.ceil() as usize;
                    if from_step >= horizon {
                        break;
                    }
                    let duration = exponential(profile.straggler_duration.max(1.0), &mut rng)
                        .ceil()
                        .max(1.0);
                    let to_step = (from_step + duration as usize).min(horizon);
                    events.push(FaultEvent::Straggler {
                        worker: w,
                        slowdown: profile.straggler_slowdown,
                        from_step,
                        to_step,
                    });
                    t += duration;
                }
            }
        }
        FaultPlan::new(events)
    }
}

/// MTBF/MTTR-style fault rates, all in simulated *steps*. A rate of zero
/// disables that fault class; [`FaultProfile::none`] disables everything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Seed for the fault schedule (independent of the training seed).
    pub seed: u64,
    /// Mean steps between crashes per worker (0 = never crash).
    pub crash_mtbf: f64,
    /// Mean steps until a crashed worker rejoins (0 = never repair).
    pub repair_mttr: f64,
    /// Mean steps between link-degradation episodes (0 = never degrade).
    pub degrade_mtbf: f64,
    /// Mean steps a degradation episode lasts.
    pub degrade_duration: f64,
    /// Link-throughput multiplier during an episode, in `(0, 1]`.
    pub degrade_factor: f64,
    /// Mean steps between straggler episodes per worker (0 = never).
    pub straggler_mtbf: f64,
    /// Mean steps a straggler episode lasts.
    pub straggler_duration: f64,
    /// Compute-time multiplier while straggling, `>= 1`.
    pub straggler_slowdown: f64,
}

impl FaultProfile {
    /// The fault-free profile (must reproduce today's perfect-cluster
    /// trajectories bit for bit).
    pub fn none(seed: u64) -> Self {
        FaultProfile {
            seed,
            crash_mtbf: 0.0,
            repair_mttr: 0.0,
            degrade_mtbf: 0.0,
            degrade_duration: 0.0,
            degrade_factor: 1.0,
            straggler_mtbf: 0.0,
            straggler_duration: 0.0,
            straggler_slowdown: 1.0,
        }
    }

    /// A crash/repair-only profile.
    pub fn crashes(seed: u64, mtbf: f64, mttr: f64) -> Self {
        FaultProfile {
            crash_mtbf: mtbf,
            repair_mttr: mttr,
            ..FaultProfile::none(seed)
        }
    }
}

/// Exponential inter-arrival time via inverse transform. The uniform draw
/// is independent of `mean`, so schedules generated from the same seed at
/// different rates are scaled versions of the same arrival process.
fn exponential(mean: f64, rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen::<f64>();
    -mean * (1.0 - u).ln()
}

/// Independent deterministic RNG stream per fault class (`tag`) and worker.
fn stream_rng(seed: u64, tag: u64, idx: u64) -> StdRng {
    init::rng(
        seed ^ 0x9E37_79B9_7F4A_7C15u64
            .wrapping_mul(tag)
            .wrapping_add(idx.wrapping_mul(0xD1B5_4A32_D192_ED03)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profile_yields_empty_plan() {
        let plan = FaultPlan::from_profile(&FaultProfile::none(7), 8, 1000);
        assert!(plan.is_empty());
        assert_eq!(plan.crash_count(), 0);
        assert_eq!(plan.link_factor_at(5), 1.0);
        assert_eq!(plan.slowdown_at(5, 0), 1.0);
    }

    #[test]
    fn plans_are_seed_deterministic() {
        let profile = FaultProfile {
            degrade_mtbf: 80.0,
            degrade_duration: 10.0,
            degrade_factor: 0.2,
            straggler_mtbf: 60.0,
            straggler_duration: 8.0,
            straggler_slowdown: 4.0,
            ..FaultProfile::crashes(42, 50.0, 20.0)
        };
        let a = FaultPlan::from_profile(&profile, 4, 500);
        let b = FaultPlan::from_profile(&profile, 4, 500);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "rates this high must schedule something");
        let other = FaultPlan::from_profile(
            &FaultProfile {
                seed: 43,
                ..profile
            },
            4,
            500,
        );
        assert_ne!(a, other, "different seeds should differ");
    }

    #[test]
    fn events_sorted_and_within_horizon() {
        let profile = FaultProfile::crashes(3, 30.0, 10.0);
        let plan = FaultPlan::from_profile(&profile, 4, 200);
        let steps: Vec<usize> = plan.events().iter().map(FaultEvent::at_step).collect();
        assert!(steps.windows(2).all(|w| w[0] <= w[1]), "events must be sorted");
        assert!(steps.iter().all(|&s| s < 200));
        assert!(plan.crash_count() >= 1);
    }

    #[test]
    fn higher_crash_rate_schedules_no_fewer_crashes() {
        // Coupled sampling: halving MTBF scales the same arrival process.
        for seed in 0..10 {
            let slow = FaultPlan::from_profile(&FaultProfile::crashes(seed, 120.0, 0.0), 4, 256);
            let fast = FaultPlan::from_profile(&FaultProfile::crashes(seed, 60.0, 0.0), 4, 256);
            assert!(
                fast.crash_count() >= slow.crash_count(),
                "seed {seed}: {} < {}",
                fast.crash_count(),
                slow.crash_count()
            );
        }
    }

    #[test]
    fn rejoin_always_follows_its_crash() {
        let plan = FaultPlan::from_profile(&FaultProfile::crashes(11, 40.0, 15.0), 3, 400);
        for w in 0..3 {
            let mut down = false;
            let mut last = 0;
            for e in plan.events() {
                match *e {
                    FaultEvent::WorkerCrash { worker, at_step } if worker == w => {
                        assert!(!down, "worker {w} crashed while already down");
                        assert!(at_step >= last);
                        down = true;
                        last = at_step;
                    }
                    FaultEvent::WorkerRejoin { worker, at_step } if worker == w => {
                        assert!(down, "worker {w} rejoined while up");
                        assert!(at_step > last, "rejoin must strictly follow the crash");
                        down = false;
                        last = at_step;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn degrade_and_straggler_windows_compose() {
        let plan = FaultPlan::new(vec![
            FaultEvent::LinkDegrade {
                factor: 0.5,
                from_step: 10,
                to_step: 20,
            },
            FaultEvent::LinkDegrade {
                factor: 0.5,
                from_step: 15,
                to_step: 25,
            },
            FaultEvent::Straggler {
                worker: 1,
                slowdown: 3.0,
                from_step: 5,
                to_step: 8,
            },
        ]);
        assert_eq!(plan.link_factor_at(9), 1.0);
        assert_eq!(plan.link_factor_at(10), 0.5);
        assert_eq!(plan.link_factor_at(17), 0.25, "overlap multiplies");
        assert_eq!(plan.link_factor_at(24), 0.5);
        assert_eq!(plan.link_factor_at(25), 1.0, "to_step is exclusive");
        assert_eq!(plan.slowdown_at(6, 1), 3.0);
        assert_eq!(plan.slowdown_at(6, 0), 1.0, "stragglers are per-worker");
        assert_eq!(plan.slowdown_at(8, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "degrade factor")]
    fn invalid_degrade_factor_rejected() {
        FaultPlan::new(vec![FaultEvent::LinkDegrade {
            factor: 0.0,
            from_step: 0,
            to_step: 5,
        }]);
    }

    #[test]
    #[should_panic(expected = "slowdown must be >= 1")]
    fn invalid_slowdown_rejected() {
        FaultPlan::new(vec![FaultEvent::Straggler {
            worker: 0,
            slowdown: 0.5,
            from_step: 0,
            to_step: 5,
        }]);
    }

    #[test]
    fn window_boundaries_are_half_open_for_both_window_kinds() {
        // `from..to` — the first affected step is exactly `from`, the
        // first unaffected step is exactly `to`.
        let plan = FaultPlan::new(vec![
            FaultEvent::Straggler {
                worker: 2,
                slowdown: 5.0,
                from_step: 10,
                to_step: 20,
            },
            FaultEvent::LinkDegrade {
                factor: 0.5,
                from_step: 10,
                to_step: 20,
            },
        ]);
        assert_eq!(plan.slowdown_at(9, 2), 1.0, "step before the window");
        assert_eq!(plan.slowdown_at(10, 2), 5.0, "from_step is inclusive");
        assert_eq!(plan.slowdown_at(19, 2), 5.0, "last covered step");
        assert_eq!(plan.slowdown_at(20, 2), 1.0, "to_step is exclusive");
        assert_eq!(plan.link_factor_at(9), 1.0);
        assert_eq!(plan.link_factor_at(10), 0.5, "from_step is inclusive");
        assert_eq!(plan.link_factor_at(19), 0.5);
        assert_eq!(plan.link_factor_at(20), 1.0, "to_step is exclusive");
    }

    #[test]
    fn overlapping_straggler_windows_multiply_per_worker() {
        let plan = FaultPlan::new(vec![
            FaultEvent::Straggler {
                worker: 0,
                slowdown: 2.0,
                from_step: 0,
                to_step: 10,
            },
            FaultEvent::Straggler {
                worker: 0,
                slowdown: 3.0,
                from_step: 5,
                to_step: 15,
            },
            FaultEvent::Straggler {
                worker: 1,
                slowdown: 7.0,
                from_step: 5,
                to_step: 15,
            },
        ]);
        assert_eq!(plan.slowdown_at(4, 0), 2.0);
        assert_eq!(plan.slowdown_at(5, 0), 6.0, "overlap multiplies");
        assert_eq!(plan.slowdown_at(9, 0), 6.0);
        assert_eq!(plan.slowdown_at(10, 0), 3.0, "first window expired");
        assert_eq!(plan.slowdown_at(5, 1), 7.0, "other workers unaffected");
        assert_eq!(plan.slowdown_at(5, 2), 1.0);
    }

    #[test]
    #[should_panic(expected = "degrade episode must be non-empty")]
    fn zero_length_degrade_window_rejected() {
        FaultPlan::new(vec![FaultEvent::LinkDegrade {
            factor: 0.5,
            from_step: 7,
            to_step: 7,
        }]);
    }

    #[test]
    #[should_panic(expected = "straggler episode must be non-empty")]
    fn zero_length_straggler_window_rejected() {
        FaultPlan::new(vec![FaultEvent::Straggler {
            worker: 0,
            slowdown: 2.0,
            from_step: 7,
            to_step: 7,
        }]);
    }
}
