//! Elastic, checkpointed Local SGD under injected faults.
//!
//! [`resilient_local_sgd`] wraps the machinery of [`crate::datapar`] in a
//! TorchElastic-style recovery loop driven by a [`FaultPlan`]:
//!
//! * **Crash detection** — a crashed worker is noticed after a simulated
//!   `detection_timeout`, the survivors re-form the averaging group with a
//!   small control all-reduce, restore the latest [`Checkpoint`], and
//!   resume from its step with the new (smaller) membership. Work since
//!   the checkpoint is lost and re-executed — the "replay" half of the
//!   checkpoint-interval tradeoff.
//! * **Elastic membership** — a rejoining worker re-enters at a step
//!   boundary: if the latest checkpoint is fresh enough
//!   (`max_rejoin_staleness`) it restores from storage, otherwise it
//!   bootstraps parameters directly from a live peer over the cluster
//!   link. Either way the group grows back without a global restart.
//! * **Allreduce retry** — while the plan degrades the link below
//!   `BackoffPolicy::fail_threshold`, averaging rounds fail and retry
//!   with exponentially growing backoff (all in simulated time).
//!
//! With an empty plan the driver executes *exactly* the fault-free
//! trajectory of [`crate::datapar::local_sgd`] — the same RNG draws in
//! the same order, the same `x * 1.0`-free arithmetic — so the final
//! parameters are bit-identical (enforced by a regression test).

use crate::checkpoint::{Checkpoint, CheckpointStore, StorageProfile};
use crate::datapar::{average_surviving, LocalSgdConfig};
use crate::fault::{FaultEvent, FaultPlan};
use crate::sim::Cluster;
use dl_nn::{loss::one_hot, Dataset, Loss, Network, Optimizer};
use dl_obs::{fields, NullRecorder, Recorder, ToFields};
use dl_tensor::init;
use rand::rngs::StdRng;

/// Exponential-backoff policy for failed allreduce rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Simulated seconds waited after the first failed attempt; doubles
    /// per retry.
    pub initial: f64,
    /// Maximum retries before the round proceeds degraded.
    pub max_retries: usize,
    /// An attempt fails while the effective link factor (plan factor
    /// doubled per backoff round, modeling congestion draining) is at or
    /// below this threshold. Must be `< 1` or healthy links would retry.
    pub fail_threshold: f64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            initial: 1e-3,
            max_retries: 6,
            fail_threshold: 0.25,
        }
    }
}

/// Configuration for [`resilient_local_sgd`].
#[derive(Debug, Clone)]
pub struct ResilientConfig {
    /// The underlying Local SGD configuration (seed, steps, sync period…).
    pub base: LocalSgdConfig,
    /// Steps between checkpoints (taken at sync boundaries, so the stored
    /// parameters are the synchronized model). `0` keeps only the free
    /// initial checkpoint — crashes roll all the way back to step 0.
    pub checkpoint_interval: usize,
    /// Storage target the checkpoints are written to.
    pub storage: StorageProfile,
    /// Simulated seconds for the survivors to notice a crash.
    pub detection_timeout: f64,
    /// Retry policy for degraded allreduce rounds.
    pub backoff: BackoffPolicy,
    /// Maximum steps of staleness a rejoiner may absorb from the latest
    /// checkpoint; beyond it, parameters are fetched from a live peer.
    pub max_rejoin_staleness: usize,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig {
            base: LocalSgdConfig::default(),
            checkpoint_interval: 16,
            storage: StorageProfile::local_ssd(),
            detection_timeout: 5e-3,
            backoff: BackoffPolicy::default(),
            max_rejoin_staleness: 64,
        }
    }
}

/// Outcome of a resilient Local SGD run.
#[must_use = "the report carries the goodput and recovery accounting this run exists to measure"]
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// Sync period used.
    pub sync_period: usize,
    /// Checkpoint interval used (0 = initial checkpoint only).
    pub checkpoint_interval: usize,
    /// Final accuracy of the surviving averaged model.
    pub accuracy: f64,
    /// Total simulated seconds, including detection, recovery, retries
    /// and checkpoint writes.
    pub simulated_seconds: f64,
    /// Gradient + bootstrap bytes moved across the cluster.
    pub bytes_communicated: u64,
    /// Averaging rounds completed.
    pub sync_rounds: usize,
    /// Samples trained across all workers, including work later lost.
    pub total_samples: u64,
    /// Samples whose effect survived into the final model.
    pub useful_samples: u64,
    /// Samples lost to rollbacks (`total - useful`).
    pub lost_samples: u64,
    /// Useful samples per simulated second — the headline metric.
    pub goodput: f64,
    /// Crash events experienced.
    pub crashes: usize,
    /// Rejoin events experienced.
    pub rejoins: usize,
    /// Rollbacks to a checkpoint (one per detected crash).
    pub rollbacks: usize,
    /// Failed allreduce attempts that were retried.
    pub allreduce_retries: usize,
    /// Simulated seconds spent detecting, regrouping, restoring and
    /// backing off.
    pub recovery_seconds: f64,
    /// Simulated seconds spent writing checkpoints.
    pub checkpoint_seconds: f64,
    /// Checkpoints written (excluding the free initial one).
    pub checkpoints_written: usize,
    /// Bytes written to checkpoint storage.
    pub checkpoint_bytes: u64,
    /// Workers alive at the end of the run.
    pub final_workers: usize,
}

impl ToFields for ResilienceReport {
    fn to_fields(&self) -> dl_obs::Fields {
        fields! {
            "sync_period" => self.sync_period,
            "checkpoint_interval" => self.checkpoint_interval,
            "accuracy" => self.accuracy,
            "simulated_seconds" => self.simulated_seconds,
            "bytes_communicated" => self.bytes_communicated,
            "sync_rounds" => self.sync_rounds,
            "total_samples" => self.total_samples,
            "useful_samples" => self.useful_samples,
            "lost_samples" => self.lost_samples,
            "goodput" => self.goodput,
            "crashes" => self.crashes,
            "rejoins" => self.rejoins,
            "rollbacks" => self.rollbacks,
            "allreduce_retries" => self.allreduce_retries,
            "recovery_seconds" => self.recovery_seconds,
            "checkpoint_seconds" => self.checkpoint_seconds,
            "checkpoints_written" => self.checkpoints_written,
            "checkpoint_bytes" => self.checkpoint_bytes,
            "final_workers" => self.final_workers,
        }
    }
}

/// Runs elastic Local SGD under the given fault plan.
///
/// Setup (sharding, seeding, initialization) is identical to
/// [`crate::datapar::local_sgd`]; see the module docs for the recovery
/// semantics. Returns the final surviving model and the report.
///
/// # Panics
/// Panics on `sync_period == 0`, a dataset smaller than the worker
/// count, a plan referencing an unknown worker, or a plan that kills
/// every worker with no rejoin (training cannot make progress).
pub fn resilient_local_sgd(
    cluster: &Cluster,
    data: &Dataset,
    eval: &Dataset,
    dims: &[usize],
    config: &ResilientConfig,
    plan: &FaultPlan,
) -> (Network, ResilienceReport) {
    resilient_local_sgd_traced(cluster, data, eval, dims, config, plan, &NullRecorder::new())
}

/// [`resilient_local_sgd`] with tracing: the run and every averaging
/// round and checkpoint write become spans on `rec`; crashes, rollbacks,
/// rejoins, allreduce retries and fault episodes become instants. Track 0
/// is the coordinator timeline and track `w + 1` is worker `w`, so a
/// Chrome trace shows each worker's faults on its own row.
///
/// The recorder only *observes* the run (its [`dl_obs::VirtualClock`]
/// mirrors the driver's simulated-seconds accumulator); no RNG draw or
/// arithmetic operation depends on it, so the trajectory stays
/// bit-identical to the untraced run.
///
/// # Panics
/// As [`resilient_local_sgd`].
#[allow(clippy::too_many_arguments)]
pub fn resilient_local_sgd_traced(
    cluster: &Cluster,
    data: &Dataset,
    eval: &Dataset,
    dims: &[usize],
    config: &ResilientConfig,
    plan: &FaultPlan,
    rec: &dyn Recorder,
) -> (Network, ResilienceReport) {
    let base = &config.base;
    assert!(base.sync_period > 0, "sync_period must be positive");
    let workers = cluster.len();
    assert!(
        data.len() >= workers,
        "dataset of {} rows cannot shard across {workers} workers",
        data.len()
    );
    for e in plan.events() {
        if let FaultEvent::WorkerCrash { worker, .. }
        | FaultEvent::WorkerRejoin { worker, .. }
        | FaultEvent::Straggler { worker, .. } = *e
        {
            assert!(worker < workers, "fault plan names an unknown worker");
        }
    }

    // Setup mirrors `local_sgd` exactly (same RNG construction order) so
    // an empty plan reproduces its trajectory bit for bit.
    let mut seed_rng = init::rng(base.seed);
    let reference = Network::mlp(dims, &mut seed_rng);
    let mut nets: Vec<Network> = (0..workers).map(|_| reference.clone()).collect();
    let mut opts: Vec<Optimizer> = (0..workers).map(|_| Optimizer::sgd(base.lr)).collect();
    let shards: Vec<Vec<usize>> = (0..workers)
        .map(|w| (w..data.len()).step_by(workers).collect())
        .collect();
    let mut shard_rngs: Vec<StdRng> = (0..workers)
        .map(|w| init::rng(base.seed.wrapping_add(w as u64 + 1)))
        .collect();
    let step_flops = reference.cost_profile(base.batch_size).train_step_flops();
    let grad_bytes = (reference.param_count() * 4) as u64;

    let mut alive = vec![true; workers];
    let mut cursors = vec![0u64; workers];
    let mut store = CheckpointStore::new(config.storage);
    store.seed_initial(Checkpoint {
        step: 0,
        params: reference.flat_params(),
        optimizer: Optimizer::sgd(base.lr),
        cursors: cursors.clone(),
    });
    let mut last_ckpt_step = 0usize;
    let mut samples_since_ckpt = 0u64;

    // Membership events fire exactly once: the index only advances, so a
    // rollback (which rewinds `step`) cannot re-trigger a crash.
    let membership: Vec<FaultEvent> = plan
        .events()
        .iter()
        .copied()
        .filter(FaultEvent::is_membership)
        .collect();
    let mut next_event = 0usize;

    let mut bytes = 0u64;
    let mut seconds = 0.0f64;
    let mut rounds = 0usize;
    let mut total_samples = 0u64;
    let mut lost_samples = 0u64;
    let mut crashes = 0usize;
    let mut rejoins = 0usize;
    let mut rollbacks = 0usize;
    let mut retries = 0usize;
    let mut recovery_seconds = 0.0f64;
    let mut aborted = false;

    let regroup_bytes = 64u64; // membership-agreement control message

    // Fault *episodes* (degradation, straggling) get an annotating instant
    // when they first take effect; like membership events the index only
    // advances, so a rollback cannot re-announce an episode.
    let episodes: Vec<FaultEvent> = plan
        .events()
        .iter()
        .copied()
        .filter(|e| !e.is_membership())
        .collect();
    let mut next_episode = 0usize;

    // Simulated-time origin on the shared clock (several runs may trace
    // onto one recorder back to back).
    let t0 = rec.clock().now();
    let run_span = rec.span_start(
        0,
        "resilient_local_sgd",
        fields! {
            "workers" => workers,
            "sync_period" => base.sync_period,
            "steps" => base.steps,
            "checkpoint_interval" => config.checkpoint_interval,
        },
    );

    let mut step = 0usize;
    'training: while step < base.steps {
        while next_episode < episodes.len() && episodes[next_episode].at_step() <= step {
            match episodes[next_episode] {
                FaultEvent::LinkDegrade {
                    factor,
                    from_step,
                    to_step,
                } => rec.instant(
                    0,
                    "link_degrade",
                    fields! { "factor" => factor, "from_step" => from_step, "to_step" => to_step },
                ),
                FaultEvent::Straggler {
                    worker,
                    slowdown,
                    from_step,
                    to_step,
                } => rec.instant(
                    worker as u32 + 1,
                    "straggler",
                    fields! {
                        "worker" => worker,
                        "slowdown" => slowdown,
                        "from_step" => from_step,
                        "to_step" => to_step,
                    },
                ),
                _ => {}
            }
            next_episode += 1;
        }
        // Fire due membership events, one at a time (a crash rewinds
        // `step`, so remaining same-step events re-fire checks later).
        while next_event < membership.len() && membership[next_event].at_step() <= step {
            let event = membership[next_event];
            next_event += 1;
            match event {
                FaultEvent::WorkerCrash { worker, .. } if alive[worker] => {
                    alive[worker] = false;
                    crashes += 1;
                    let factor = plan.link_factor_at(step);
                    // detect, re-form the group, restore, roll back
                    let regroup = cluster.allreduce_time(regroup_bytes) / factor;
                    let detect = config.detection_timeout + regroup;
                    seconds += detect;
                    recovery_seconds += detect;
                    rec.clock().set(t0 + seconds);
                    rec.instant(
                        worker as u32 + 1,
                        "crash",
                        fields! { "worker" => worker, "step" => step },
                    );
                    if alive.iter().any(|&a| a) {
                        let read = store.charge_read();
                        seconds += read;
                        recovery_seconds += read;
                        let ckpt = store.latest().expect("store is seeded").clone();
                        rollback(
                            &ckpt,
                            &mut nets,
                            &mut opts,
                            &mut cursors,
                            &mut shard_rngs,
                            &shards,
                            &alive,
                            base,
                        );
                        lost_samples += samples_since_ckpt;
                        rec.clock().set(t0 + seconds);
                        rec.instant(
                            0,
                            "rollback",
                            fields! {
                                "from_step" => step,
                                "to_step" => ckpt.step,
                                "lost_samples" => samples_since_ckpt,
                            },
                        );
                        samples_since_ckpt = 0;
                        rollbacks += 1;
                        step = ckpt.step;
                        continue 'training;
                    }
                    // Everyone is gone: salvage the last checkpoint below.
                    rec.instant(0, "abort", fields! { "step" => step });
                    aborted = true;
                    break 'training;
                }
                FaultEvent::WorkerRejoin { worker, .. } if !alive[worker] => {
                    let factor = plan.link_factor_at(step);
                    let regroup = cluster.allreduce_time(regroup_bytes) / factor;
                    seconds += regroup;
                    recovery_seconds += regroup;
                    let ckpt_step = store.latest().expect("store is seeded").step;
                    let from_checkpoint = step - ckpt_step <= config.max_rejoin_staleness;
                    if from_checkpoint {
                        // fresh enough: restore from storage
                        let read = store.charge_read();
                        seconds += read;
                        recovery_seconds += read;
                        let ckpt = store.latest().expect("store is seeded");
                        ckpt.restore_into(&mut nets[worker]);
                        opts[worker] = ckpt.optimizer.clone();
                        cursors[worker] = ckpt.cursors[worker];
                    } else {
                        // too stale: pull live parameters from a peer
                        let peer = (0..workers)
                            .find(|&w| alive[w])
                            .expect("a rejoin implies a live peer or a prior abort");
                        let fetch = cluster.link.transfer_time(grad_bytes) / factor;
                        seconds += fetch;
                        recovery_seconds += fetch;
                        bytes += grad_bytes;
                        let params = nets[peer].flat_params();
                        nets[worker].set_flat_params(&params);
                        opts[worker] = Optimizer::sgd(base.lr);
                    }
                    shard_rngs[worker] = replayed_rng(
                        base.seed,
                        worker,
                        shards[worker].len(),
                        cursors[worker],
                    );
                    alive[worker] = true;
                    rejoins += 1;
                    rec.clock().set(t0 + seconds);
                    rec.instant(
                        worker as u32 + 1,
                        "rejoin",
                        fields! {
                            "worker" => worker,
                            "step" => step,
                            "source" => if from_checkpoint { "checkpoint" } else { "peer" },
                        },
                    );
                }
                _ => {} // crash of a dead worker / rejoin of a live one: no-op
            }
        }

        let living: Vec<usize> = (0..workers).filter(|&w| alive[w]).collect();
        for &w in &living {
            let idx: Vec<usize> = (0..base.batch_size)
                .map(|_| shards[w][init::sample_indices(shards[w].len(), 1, &mut shard_rngs[w])[0]])
                .collect();
            let xb = data.x.select_rows(&idx);
            let labels: Vec<usize> = idx.iter().map(|&i| data.y[i]).collect();
            let targets = one_hot(&labels, data.classes);
            nets[w].zero_grads();
            let logits = nets[w].forward(&xb, true);
            let (_, grad) = Loss::SoftmaxCrossEntropy.evaluate(&logits, &targets);
            nets[w].backward(&grad);
            let mut pg = nets[w].params_and_grads();
            opts[w].step(&mut pg, 1.0);
            cursors[w] += base.batch_size as u64;
        }
        let drawn = (base.batch_size * living.len()) as u64;
        total_samples += drawn;
        samples_since_ckpt += drawn;

        // Slowest living worker dominates, stragglers included. With all
        // workers healthy this folds the same values as `local_sgd`
        // (`x * 1.0` is bit-exact).
        seconds += living
            .iter()
            .map(|&w| cluster.devices[w].compute_time(step_flops) * plan.slowdown_at(step, w))
            .fold(0.0, f64::max);
        rec.clock().set(t0 + seconds);

        if (step + 1).is_multiple_of(base.sync_period) {
            let round_span = rec.span_start(
                0,
                "sync_round",
                fields! { "round" => rounds, "step" => step, "workers" => living.len() },
            );
            average_surviving(&mut nets, &alive);
            let factor = plan.link_factor_at(step);
            let base_t = cluster.allreduce_time(grad_bytes);
            // A degraded round fails until exponential backoff has widened
            // the retry window enough (deterministic congestion model).
            let mut attempt = 0i32;
            while (attempt as usize) < config.backoff.max_retries
                && factor * f64::powi(2.0, attempt) <= config.backoff.fail_threshold
            {
                let wasted = base_t / factor + config.backoff.initial * f64::powi(2.0, attempt);
                seconds += wasted;
                recovery_seconds += wasted;
                retries += 1;
                rec.clock().set(t0 + seconds);
                rec.instant(
                    0,
                    "allreduce_retry",
                    fields! { "attempt" => attempt as u32, "wasted_seconds" => wasted },
                );
                attempt += 1;
            }
            let effective = (factor * f64::powi(2.0, attempt)).min(1.0);
            seconds += base_t / effective;
            bytes += grad_bytes * living.len() as u64;
            rounds += 1;
            rec.clock().set(t0 + seconds);
            rec.counter(0, "bytes_communicated", grad_bytes * living.len() as u64);
            rec.span_end(round_span, fields! { "bytes" => grad_bytes * living.len() as u64 });

            if config.checkpoint_interval > 0
                && (step + 1) - last_ckpt_step >= config.checkpoint_interval
            {
                let ckpt_span =
                    rec.span_start(0, "checkpoint_write", fields! { "step" => step + 1 });
                let bytes_before = store.bytes_written;
                let lead = living[0];
                let write = store.save(Checkpoint {
                    step: step + 1,
                    params: nets[lead].flat_params(),
                    optimizer: opts[lead].clone(),
                    cursors: cursors.clone(),
                });
                seconds += write;
                last_ckpt_step = step + 1;
                samples_since_ckpt = 0;
                rec.clock().set(t0 + seconds);
                rec.span_end(
                    ckpt_span,
                    fields! { "bytes" => store.bytes_written - bytes_before },
                );
            }
        }
        step += 1;
    }

    let (mut model, final_workers) = if aborted {
        lost_samples += samples_since_ckpt;
        let ckpt = store.latest().expect("store is seeded");
        let mut net = reference;
        ckpt.restore_into(&mut net);
        (net, 0)
    } else {
        average_surviving(&mut nets, &alive);
        let survivor = (0..workers)
            .find(|&w| alive[w])
            .expect("non-aborted run has a survivor");
        (nets.swap_remove(survivor), alive.iter().filter(|&&a| a).count())
    };
    model.clear_caches();
    let accuracy = dl_nn::metrics::accuracy(&model.predict(&eval.x), &eval.y);

    let useful_samples = total_samples - lost_samples;
    let goodput = if seconds > 0.0 {
        useful_samples as f64 / seconds
    } else {
        0.0
    };
    let report = ResilienceReport {
        sync_period: base.sync_period,
        checkpoint_interval: config.checkpoint_interval,
        accuracy,
        simulated_seconds: seconds,
        bytes_communicated: bytes,
        sync_rounds: rounds,
        total_samples,
        useful_samples,
        lost_samples,
        goodput,
        crashes,
        rejoins,
        rollbacks,
        allreduce_retries: retries,
        recovery_seconds,
        checkpoint_seconds: store.write_seconds,
        checkpoints_written: store.writes,
        checkpoint_bytes: store.bytes_written,
        final_workers,
    };
    rec.clock().set(t0 + seconds);
    rec.span_end(run_span, report.to_fields());
    (model, report)
}

/// Restores every worker's training state from `ckpt`: parameters and
/// optimizer for the live workers, shard cursors for everyone (a dead
/// worker's cursor is rebuilt into an RNG when it rejoins).
#[allow(clippy::too_many_arguments)]
fn rollback(
    ckpt: &Checkpoint,
    nets: &mut [Network],
    opts: &mut [Optimizer],
    cursors: &mut [u64],
    shard_rngs: &mut [StdRng],
    shards: &[Vec<usize>],
    alive: &[bool],
    base: &LocalSgdConfig,
) {
    for w in 0..nets.len() {
        cursors[w] = ckpt.cursors[w];
        if alive[w] {
            ckpt.restore_into(&mut nets[w]);
            opts[w] = ckpt.optimizer.clone();
            shard_rngs[w] = replayed_rng(base.seed, w, shards[w].len(), cursors[w]);
        }
    }
}

/// Rebuilds a worker's sampling RNG in the exact state it had after
/// drawing `draws` samples: recreate the seeded stream and replay the
/// draws (each batch sample consumes one `sample_indices` call).
fn replayed_rng(seed: u64, worker: usize, shard_len: usize, draws: u64) -> StdRng {
    let mut rng = init::rng(seed.wrapping_add(worker as u64 + 1));
    for _ in 0..draws {
        let _ = init::sample_indices(shard_len, 1, &mut rng);
    }
    rng
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapar::local_sgd;
    use crate::fault::FaultProfile;
    use crate::sim::{Device, Link};
    use dl_data::blobs;

    fn cluster(n: usize) -> Cluster {
        Cluster::homogeneous(n, Device::accelerator(), Link::ethernet())
    }

    fn small_config(steps: usize, sync_period: usize, interval: usize) -> ResilientConfig {
        ResilientConfig {
            base: LocalSgdConfig {
                sync_period,
                steps,
                batch_size: 8,
                lr: 0.05,
                seed: 0,
            },
            checkpoint_interval: interval,
            ..ResilientConfig::default()
        }
    }

    #[test]
    fn zero_fault_run_is_bit_identical_to_local_sgd() {
        let data = blobs(120, 3, 6, 6.0, 0.5, 0);
        let eval = blobs(60, 3, 6, 6.0, 0.5, 1);
        let dims = [6, 16, 3];
        // interval 0: only the free initial checkpoint, so even the
        // simulated clock matches the fault-free driver exactly.
        let config = small_config(40, 4, 0);
        let plan = FaultPlan::from_profile(&FaultProfile::none(5), 4, 40);
        assert!(plan.is_empty());
        let (plain_net, plain) = local_sgd(&cluster(4), &data, &eval, &dims, &config.base);
        let (res_net, report) = resilient_local_sgd(&cluster(4), &data, &eval, &dims, &config, &plan);
        assert_eq!(plain_net.flat_params(), res_net.flat_params());
        assert_eq!(report.accuracy, plain.accuracy);
        assert_eq!(report.bytes_communicated, plain.bytes_communicated);
        assert_eq!(report.sync_rounds, plain.sync_rounds);
        assert_eq!(report.simulated_seconds, plain.simulated_seconds);
        assert_eq!(report.crashes, 0);
        assert_eq!(report.lost_samples, 0);
        assert_eq!(report.useful_samples, report.total_samples);
        assert_eq!(report.final_workers, 4);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let data = blobs(120, 3, 6, 6.0, 0.5, 2);
        let eval = blobs(60, 3, 6, 6.0, 0.5, 3);
        let dims = [6, 16, 3];
        let config = small_config(48, 4, 8);
        let plan = FaultPlan::from_profile(&FaultProfile::crashes(21, 20.0, 10.0), 4, 48);
        let run = || resilient_local_sgd(&cluster(4), &data, &eval, &dims, &config, &plan);
        let (net_a, rep_a) = run();
        let (net_b, rep_b) = run();
        assert_eq!(net_a.flat_params(), net_b.flat_params());
        assert_eq!(rep_a, rep_b);
    }

    #[test]
    fn crash_triggers_rollback_and_costs_time() {
        let data = blobs(120, 3, 6, 6.0, 0.5, 4);
        let eval = blobs(60, 3, 6, 6.0, 0.5, 5);
        let dims = [6, 16, 3];
        let config = small_config(40, 4, 8);
        let clean = FaultPlan::none();
        let faulty = FaultPlan::new(vec![FaultEvent::WorkerCrash {
            worker: 2,
            at_step: 21,
        }]);
        let (_, base) = resilient_local_sgd(&cluster(4), &data, &eval, &dims, &config, &clean);
        let (_, hit) = resilient_local_sgd(&cluster(4), &data, &eval, &dims, &config, &faulty);
        assert_eq!(hit.crashes, 1);
        assert_eq!(hit.rollbacks, 1);
        assert_eq!(hit.final_workers, 3);
        // rolled back from step 21 to the step-16 checkpoint
        assert!(hit.lost_samples > 0, "work since the checkpoint is lost");
        assert!(hit.recovery_seconds > 0.0);
        assert!(hit.simulated_seconds > base.simulated_seconds);
        assert!(hit.goodput < base.goodput);
        // survivors keep learning
        assert!(hit.accuracy > 0.6, "accuracy {}", hit.accuracy);
    }

    #[test]
    fn rejoin_restores_membership() {
        let data = blobs(120, 3, 6, 6.0, 0.5, 6);
        let eval = blobs(60, 3, 6, 6.0, 0.5, 7);
        let dims = [6, 16, 3];
        let config = small_config(48, 4, 8);
        let plan = FaultPlan::new(vec![
            FaultEvent::WorkerCrash {
                worker: 1,
                at_step: 10,
            },
            FaultEvent::WorkerRejoin {
                worker: 1,
                at_step: 26,
            },
        ]);
        let (_, report) = resilient_local_sgd(&cluster(4), &data, &eval, &dims, &config, &plan);
        assert_eq!(report.crashes, 1);
        assert_eq!(report.rejoins, 1);
        assert_eq!(report.final_workers, 4);
    }

    #[test]
    fn stale_rejoin_bootstraps_from_peer() {
        let data = blobs(120, 3, 6, 6.0, 0.5, 6);
        let eval = blobs(60, 3, 6, 6.0, 0.5, 7);
        let dims = [6, 16, 3];
        let mut config = small_config(48, 4, 8);
        config.max_rejoin_staleness = 0; // every rejoin is "too stale"
        let plan = FaultPlan::new(vec![
            FaultEvent::WorkerCrash {
                worker: 1,
                at_step: 10,
            },
            FaultEvent::WorkerRejoin {
                worker: 1,
                at_step: 27, // not a checkpoint step, so staleness > 0
            },
        ]);
        let clean_bytes = {
            let (_, r) =
                resilient_local_sgd(&cluster(4), &data, &eval, &dims, &config, &FaultPlan::none());
            r.bytes_communicated
        };
        let (_, report) = resilient_local_sgd(&cluster(4), &data, &eval, &dims, &config, &plan);
        assert_eq!(report.rejoins, 1);
        // the peer bootstrap moved one model's worth of extra bytes,
        // though the crash also removed the dead worker's sync traffic
        assert!(report.bytes_communicated != clean_bytes);
        assert_eq!(report.final_workers, 4);
    }

    #[test]
    fn link_degradation_forces_retries() {
        let data = blobs(120, 3, 6, 6.0, 0.5, 8);
        let eval = blobs(60, 3, 6, 6.0, 0.5, 9);
        let dims = [6, 16, 3];
        let config = small_config(24, 4, 0);
        let plan = FaultPlan::new(vec![FaultEvent::LinkDegrade {
            factor: 0.05,
            from_step: 4,
            to_step: 12,
        }]);
        let (_, clean) =
            resilient_local_sgd(&cluster(4), &data, &eval, &dims, &config, &FaultPlan::none());
        let (_, degraded) = resilient_local_sgd(&cluster(4), &data, &eval, &dims, &config, &plan);
        assert!(degraded.allreduce_retries > 0);
        assert!(degraded.simulated_seconds > clean.simulated_seconds);
        assert_eq!(degraded.crashes, 0);
    }

    #[test]
    fn straggler_slows_the_clock_not_the_model() {
        let data = blobs(120, 3, 6, 6.0, 0.5, 8);
        let eval = blobs(60, 3, 6, 6.0, 0.5, 9);
        let dims = [6, 16, 3];
        let config = small_config(24, 4, 0);
        let plan = FaultPlan::new(vec![FaultEvent::Straggler {
            worker: 3,
            slowdown: 10.0,
            from_step: 0,
            to_step: 24,
        }]);
        let (clean_net, clean) =
            resilient_local_sgd(&cluster(4), &data, &eval, &dims, &config, &FaultPlan::none());
        let (slow_net, slow) = resilient_local_sgd(&cluster(4), &data, &eval, &dims, &config, &plan);
        // a straggler changes time, not the parameter trajectory
        assert_eq!(clean_net.flat_params(), slow_net.flat_params());
        assert!(slow.simulated_seconds > clean.simulated_seconds);
        assert!(slow.goodput < clean.goodput);
    }

    #[test]
    fn all_workers_dead_salvages_checkpoint() {
        let data = blobs(120, 3, 6, 6.0, 0.5, 10);
        let eval = blobs(60, 3, 6, 6.0, 0.5, 11);
        let dims = [6, 16, 3];
        let config = small_config(40, 4, 8);
        let plan = FaultPlan::new(
            (0..4)
                .map(|w| FaultEvent::WorkerCrash {
                    worker: w,
                    at_step: 20,
                })
                .collect(),
        );
        let (_, report) = resilient_local_sgd(&cluster(4), &data, &eval, &dims, &config, &plan);
        assert_eq!(report.final_workers, 0);
        assert!(report.sync_rounds < 10, "run must have stopped early");
        assert!(report.accuracy > 0.0);
    }

    /// Goodput must not increase as crashes are added. Checked on nested
    /// plans: each prefix of a crash schedule is a strictly less faulty
    /// run of the same trajectory.
    fn check_goodput_monotone(crash_steps: Vec<usize>) {
        let data = blobs(96, 3, 6, 6.0, 0.5, 12);
        let eval = blobs(48, 3, 6, 6.0, 0.5, 13);
        let dims = [6, 16, 3];
        let config = small_config(48, 4, 8);
        let mut steps = crash_steps;
        steps.sort_unstable();
        let mut last = f64::INFINITY;
        for k in 0..=steps.len() {
            // worker 0 never crashes, so the run always completes
            let events = steps[..k]
                .iter()
                .enumerate()
                .map(|(i, &s)| FaultEvent::WorkerCrash {
                    worker: 1 + (i % 3),
                    at_step: s,
                })
                .collect();
            let plan = FaultPlan::new(events);
            let (_, report) =
                resilient_local_sgd(&cluster(4), &data, &eval, &dims, &config, &plan);
            assert!(
                report.goodput <= last + 1e-9,
                "goodput rose from {last} to {} at {k} crashes",
                report.goodput
            );
            last = report.goodput;
        }
    }

    /// Deterministic spot-checks of the monotonicity contract; the
    /// property test below randomizes the schedule.
    #[test]
    fn goodput_non_increasing_fixed_schedules() {
        check_goodput_monotone(vec![3, 19, 40]);
        check_goodput_monotone(vec![10, 11, 12]);
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(8))]
        /// Property: goodput is monotonically non-increasing in the number
        /// of crashes (acceptance criterion for the fault framework).
        #[test]
        fn goodput_non_increasing_in_crash_rate(
            a in 1usize..16,
            b in 16usize..32,
            c in 32usize..46,
        ) {
            check_goodput_monotone(vec![a, b, c]);
        }
    }
}
