//! The simulated cluster: devices, links, and time/byte accounting.
//!
//! All quantities are deterministic functions of the declared hardware
//! profile — no wall clock is ever read. Simulated time is `f64` seconds.

/// A compute device (an abstract accelerator).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    /// Sustained compute rate in FLOP/s.
    pub flops_per_sec: f64,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
}

impl Device {
    /// A mid-range accelerator profile (10 TFLOP/s, 16 GB) used as the
    /// default in experiments.
    pub fn accelerator() -> Self {
        Device {
            flops_per_sec: 10e12,
            memory_bytes: 16 * (1 << 30),
        }
    }

    /// A slower edge-class device (500 GFLOP/s, 4 GB).
    pub fn edge() -> Self {
        Device {
            flops_per_sec: 0.5e12,
            memory_bytes: 4 * (1 << 30),
        }
    }

    /// Seconds to execute `flops` of work.
    pub fn compute_time(&self, flops: u64) -> f64 {
        flops as f64 / self.flops_per_sec
    }
}

/// A bidirectional network link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Bandwidth in bytes/s.
    pub bandwidth: f64,
    /// One-way latency in seconds.
    pub latency: f64,
}

impl Link {
    /// Datacenter-class interconnect (25 GB/s, 5 µs).
    pub fn nvlink() -> Self {
        Link {
            bandwidth: 25e9,
            latency: 5e-6,
        }
    }

    /// Commodity Ethernet (1.25 GB/s, 100 µs).
    pub fn ethernet() -> Self {
        Link {
            bandwidth: 1.25e9,
            latency: 100e-6,
        }
    }

    /// Seconds to move `bytes` across the link.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// A homogeneous-link cluster of (possibly heterogeneous) devices.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Devices, indexed by worker id.
    pub devices: Vec<Device>,
    /// The interconnect between any pair of distinct devices.
    pub link: Link,
}

impl Cluster {
    /// `n` identical devices joined by `link`.
    pub fn homogeneous(n: usize, device: Device, link: Link) -> Self {
        assert!(n > 0, "a cluster needs at least one device");
        Cluster {
            devices: vec![device; n],
            link,
        }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the cluster is empty (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Simulated time for a synchronous all-reduce of `bytes` per worker
    /// using the standard ring algorithm: `2 (n-1)/n * bytes` traverses the
    /// slowest link, plus `2(n-1)` latency hops.
    pub fn allreduce_time(&self, bytes: u64) -> f64 {
        let n = self.len() as f64;
        if self.len() == 1 {
            return 0.0;
        }
        let volume = 2.0 * (n - 1.0) / n * bytes as f64;
        volume / self.link.bandwidth + 2.0 * (n - 1.0) * self.link.latency
    }

    /// Simulated time for a synchronous training step where every worker
    /// computes `flops` then all-reduces `grad_bytes`. Stragglers dominate:
    /// the step takes the slowest worker's compute time.
    pub fn sync_step_time(&self, flops: u64, grad_bytes: u64) -> f64 {
        let slowest = self
            .devices
            .iter()
            .map(|d| d.compute_time(flops))
            .fold(0.0, f64::max);
        slowest + self.allreduce_time(grad_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_time_scales_linearly() {
        let d = Device::accelerator();
        assert!((d.compute_time(10_000_000_000_000) - 1.0).abs() < 1e-9);
        assert_eq!(d.compute_time(0), 0.0);
    }

    #[test]
    fn transfer_time_includes_latency() {
        let l = Link::ethernet();
        assert!(l.transfer_time(0) == l.latency);
        let t = l.transfer_time(1_250_000_000);
        assert!((t - (1.0 + l.latency)).abs() < 1e-9);
    }

    #[test]
    fn nvlink_faster_than_ethernet() {
        let bytes = 100_000_000;
        assert!(Link::nvlink().transfer_time(bytes) < Link::ethernet().transfer_time(bytes));
    }

    #[test]
    fn allreduce_single_worker_is_free() {
        let c = Cluster::homogeneous(1, Device::accelerator(), Link::ethernet());
        assert_eq!(c.allreduce_time(1_000_000), 0.0);
    }

    #[test]
    fn allreduce_grows_with_bytes_and_saturates_with_workers() {
        let c2 = Cluster::homogeneous(2, Device::accelerator(), Link::ethernet());
        let c8 = Cluster::homogeneous(8, Device::accelerator(), Link::ethernet());
        assert!(c2.allreduce_time(2_000_000) > c2.allreduce_time(1_000_000));
        // ring all-reduce volume factor 2(n-1)/n approaches 2: going 2 -> 8
        // workers less than doubles the bandwidth term
        let v2 = c2.allreduce_time(100_000_000);
        let v8 = c8.allreduce_time(100_000_000);
        assert!(v8 < v2 * 2.0);
        assert!(v8 > v2);
    }

    #[test]
    fn sync_step_dominated_by_slowest_device() {
        let mut c = Cluster::homogeneous(2, Device::accelerator(), Link::nvlink());
        c.devices[1] = Device::edge();
        let t = c.sync_step_time(1_000_000_000_000, 0);
        // edge device takes 2 s for 1 TFLOP; accelerator 0.1 s
        assert!((2.0..2.1).contains(&t));
    }

    proptest::proptest! {
        /// All-reduce time is monotone in bytes and never negative; the
        /// synchronous step is bounded below by the slowest compute.
        #[test]
        fn sim_cost_monotonicity(
            n in 1usize..16,
            bytes in 0u64..1_000_000_000,
            extra in 1u64..1_000_000_000,
            flops in 0u64..10_000_000_000_000,
        ) {
            let c = Cluster::homogeneous(n, Device::accelerator(), Link::ethernet());
            let t1 = c.allreduce_time(bytes);
            let t2 = c.allreduce_time(bytes + extra);
            proptest::prop_assert!(t1 >= 0.0);
            proptest::prop_assert!(t2 >= t1);
            let step = c.sync_step_time(flops, bytes);
            let compute = c.devices[0].compute_time(flops);
            proptest::prop_assert!(step >= compute);
            proptest::prop_assert!(step >= t1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_cluster_rejected() {
        Cluster::homogeneous(0, Device::accelerator(), Link::ethernet());
    }
}
