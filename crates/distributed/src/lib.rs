//! # dl-distributed
//!
//! Distributed deep learning on a **simulated cluster** (the substitution
//! for the GPU clusters the tutorial's Part 1 assumes — see `DESIGN.md`).
//! The simulator models devices with compute rates and links with bandwidth
//! and latency; training code runs real networks on real data shards, while
//! time and bytes are charged against the cost model. That keeps both sides
//! of every claim measurable: statistical efficiency (real accuracy) and
//! hardware efficiency (simulated seconds and bytes).
//!
//! * [`sim`] — the cluster cost model.
//! * [`datapar`] — synchronous data-parallel SGD and **Local SGD**
//!   (§2.1: relaxing the freshness constraint to cut communication).
//! * [`gradcomp`] — **gradient compression**: top-k sparsification and
//!   low-bit quantization with error feedback.
//! * [`priority`] — **priority-based parameter propagation**: overlapping
//!   communication with compute, scheduling first-needed-first.
//! * [`flexflow`] — **optimize-then-parallelize**: an MCMC search over
//!   layer-to-device placements driven by the simulator (§2.2).
//! * [`morph`] — **MorphNet-style** iterative width optimization under a
//!   resource budget (§2.2).
//! * [`fault`] — deterministic, seeded **fault injection**: crash/rejoin,
//!   link degradation and straggler schedules from MTBF/MTTR profiles.
//! * [`checkpoint`] — checkpoint/restore of training state with a
//!   simulated storage cost model.
//! * [`resilient`] — **elastic Local SGD**: crash detection, group
//!   re-formation, checkpoint rollback, allreduce retry with backoff.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod datapar;
pub mod fault;
pub mod flexflow;
pub mod gradcomp;
pub mod morph;
pub mod priority;
pub mod resilient;
pub mod sim;

pub use checkpoint::{Checkpoint, CheckpointError, CheckpointStore, StorageProfile};
pub use datapar::{
    local_sgd, local_sgd_traced, local_sgd_with_failures, LocalSgdConfig, LocalSgdReport,
};
pub use fault::{FaultEvent, FaultPlan, FaultProfile};
pub use resilient::{
    resilient_local_sgd, resilient_local_sgd_traced, BackoffPolicy, ResilienceReport,
    ResilientConfig,
};
pub use flexflow::{data_parallel_cost, optimize_placement, Placement, PlacementSearchConfig, StrategyCost};
pub use gradcomp::{compressed_sgd, compressed_sgd_opts, GradCompressionReport, GradCompressor};
pub use morph::{morph_resize, uniform_baseline, MorphConfig, MorphReport};
pub use priority::{layer_comm_profile, schedule_backward_comm, CommSchedule, LayerComm, SchedulePolicy};
pub use sim::{Cluster, Device, Link};
