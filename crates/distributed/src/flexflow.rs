//! Optimize-then-parallelize (FlexFlow-style, §2.2).
//!
//! FlexFlow's core idea: spend *optimization time* up front — simulate
//! candidate parallelization strategies and search the strategy space with
//! a guided (MCMC) random walk — to save *execution time* on every
//! subsequent training iteration. This module reproduces that loop against
//! the `sim` cost model:
//!
//! * a **strategy** is an assignment of layers to devices
//!   ([`Placement`]),
//! * the **simulator** ([`Placement::simulate`]) prices a strategy:
//!   per-device compute load (the pipeline bottleneck) plus activation
//!   transfers across device boundaries,
//! * the **search** ([`optimize_placement`]) is simulated-annealing MCMC
//!   over single-layer reassignments,
//! * **baselines**: everything-on-one-device and round-robin model
//!   parallelism, plus fully data-parallel execution priced by the same
//!   model.

use crate::sim::Cluster;
use dl_nn::LayerCost;
use dl_tensor::init;
use rand::Rng;

/// A layer-to-device assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// `assignment[i]` = device executing layer `i`.
    pub assignment: Vec<usize>,
}

/// Simulated cost of a strategy.
#[must_use = "the cost breakdown is the output the placement search exists to produce"]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyCost {
    /// Seconds per training iteration in pipelined steady state.
    pub step_seconds: f64,
    /// Bytes of activations crossing device boundaries per iteration.
    pub transfer_bytes: u64,
}

impl Placement {
    /// Everything on device 0.
    pub fn single_device(layers: usize) -> Self {
        Placement {
            assignment: vec![0; layers],
        }
    }

    /// Layer `i` on device `i % n` (naive model parallelism).
    pub fn round_robin(layers: usize, devices: usize) -> Self {
        Placement {
            assignment: (0..layers).map(|i| i % devices).collect(),
        }
    }

    /// Simulated steady-state cost of this placement on `cluster` for a
    /// model with the given per-layer costs at the training batch size.
    ///
    /// Model: in pipelined execution the iteration time is bounded by the
    /// busiest device (compute bottleneck) plus the serialized activation
    /// traffic it must exchange. Backward is included (2x forward, same
    /// communication pattern).
    ///
    /// # Panics
    /// Panics when assignment length and layer count differ or a device
    /// index is out of range.
    pub fn simulate(&self, cluster: &Cluster, costs: &[LayerCost]) -> StrategyCost {
        assert_eq!(
            self.assignment.len(),
            costs.len(),
            "placement must assign every layer"
        );
        assert!(
            self.assignment.iter().all(|&d| d < cluster.len()),
            "device index out of range"
        );
        // per-device compute load (forward + backward)
        let mut load = vec![0.0f64; cluster.len()];
        for (i, c) in costs.iter().enumerate() {
            let d = self.assignment[i];
            load[d] += cluster.devices[d]
                .compute_time(c.forward_flops + c.backward_flops);
        }
        let bottleneck = load.iter().copied().fold(0.0, f64::max);
        // activations crossing boundaries (forward) + gradients back
        let mut transfer_bytes = 0u64;
        for w in self.assignment.windows(2).zip(costs.windows(2)) {
            let (pair, cpair) = w;
            if pair[0] != pair[1] {
                // activation of the earlier layer moves, twice (fwd + bwd)
                transfer_bytes += 2 * cpair[0].activation_elems * 4;
            }
        }
        let comm = cluster.link.transfer_time(transfer_bytes);
        StrategyCost {
            step_seconds: bottleneck + comm,
            transfer_bytes,
        }
    }
}

/// Cost of pure data parallelism on the same cluster: every device holds a
/// replica, computes `1/n` of the batch, and all-reduces every parameter.
pub fn data_parallel_cost(cluster: &Cluster, costs: &[LayerCost]) -> StrategyCost {
    let n = cluster.len() as u64;
    let total_flops: u64 = costs
        .iter()
        .map(|c| c.forward_flops + c.backward_flops)
        .sum();
    let per_device = total_flops / n;
    let compute = cluster
        .devices
        .iter()
        .map(|d| d.compute_time(per_device))
        .fold(0.0, f64::max);
    let grad_bytes: u64 = costs.iter().map(|c| c.params * 4).sum();
    StrategyCost {
        step_seconds: compute + cluster.allreduce_time(grad_bytes),
        transfer_bytes: grad_bytes,
    }
}

/// MCMC search configuration.
#[derive(Debug, Clone)]
pub struct PlacementSearchConfig {
    /// Proposal/acceptance iterations.
    pub iterations: usize,
    /// Initial annealing temperature (in seconds of step-time slack).
    pub initial_temperature: f64,
    /// Multiplicative temperature decay per iteration.
    pub cooling: f64,
    /// Seed for the proposal chain.
    pub seed: u64,
}

impl Default for PlacementSearchConfig {
    fn default() -> Self {
        PlacementSearchConfig {
            iterations: 2000,
            initial_temperature: 0.05,
            cooling: 0.998,
            seed: 0,
        }
    }
}

/// Searches the placement space with simulated-annealing MCMC, starting
/// from round-robin. Returns the best placement found, its cost, and the
/// number of simulator evaluations spent (the "optimization time" axis of
/// experiment E7).
pub fn optimize_placement(
    cluster: &Cluster,
    costs: &[LayerCost],
    config: &PlacementSearchConfig,
) -> (Placement, StrategyCost, usize) {
    assert!(!costs.is_empty(), "cannot place an empty network");
    let mut rng = init::rng(config.seed);
    let mut current = Placement::round_robin(costs.len(), cluster.len());
    let mut current_cost = current.simulate(cluster, costs);
    let mut best = current.clone();
    let mut best_cost = current_cost;
    let mut temperature = config.initial_temperature;
    let mut evals = 1usize;
    for _ in 0..config.iterations {
        // propose: move one random layer to one random device
        let mut proposal = current.clone();
        let layer = rng.gen_range(0..costs.len());
        proposal.assignment[layer] = rng.gen_range(0..cluster.len());
        let cost = proposal.simulate(cluster, costs);
        evals += 1;
        let delta = cost.step_seconds - current_cost.step_seconds;
        let accept = delta <= 0.0
            || (temperature > 0.0 && rng.gen::<f64>() < (-delta / temperature).exp());
        if accept {
            current = proposal;
            current_cost = cost;
            if current_cost.step_seconds < best_cost.step_seconds {
                best = current.clone();
                best_cost = current_cost;
            }
        }
        temperature *= config.cooling;
    }
    (best, best_cost, evals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Device, Link};

    /// A 6-layer model with uneven compute and activation profiles.
    fn costs() -> Vec<LayerCost> {
        (0..6)
            .map(|i| LayerCost {
                forward_flops: [8, 1, 6, 1, 4, 1][i] * 1_000_000_000,
                backward_flops: [16, 2, 12, 2, 8, 2][i] * 1_000_000_000,
                params: 1_000_000,
                activation_elems: [400_000, 50_000, 300_000, 50_000, 200_000, 50_000][i],
            })
            .collect()
    }

    fn cluster() -> Cluster {
        Cluster::homogeneous(4, Device::accelerator(), Link::nvlink())
    }

    #[test]
    fn single_device_has_no_transfers() {
        let p = Placement::single_device(6);
        let c = p.simulate(&cluster(), &costs());
        assert_eq!(c.transfer_bytes, 0);
        assert!(c.step_seconds > 0.0);
    }

    #[test]
    fn round_robin_transfers_every_boundary() {
        let p = Placement::round_robin(6, 4);
        let c = p.simulate(&cluster(), &costs());
        assert!(c.transfer_bytes > 0);
    }

    #[test]
    fn simulate_rewards_load_balance() {
        let cl = cluster();
        let cs = costs();
        // all heavy layers on one device vs spread across two
        let lopsided = Placement {
            assignment: vec![0, 0, 0, 0, 0, 0],
        };
        let spread = Placement {
            assignment: vec![0, 0, 1, 1, 2, 2],
        };
        let a = lopsided.simulate(&cl, &cs);
        let b = spread.simulate(&cl, &cs);
        assert!(b.step_seconds < a.step_seconds, "{} vs {}", b.step_seconds, a.step_seconds);
    }

    #[test]
    fn search_beats_or_matches_round_robin() {
        let cl = cluster();
        let cs = costs();
        let rr = Placement::round_robin(6, 4).simulate(&cl, &cs);
        let (_, found, evals) = optimize_placement(&cl, &cs, &PlacementSearchConfig::default());
        assert!(found.step_seconds <= rr.step_seconds + 1e-12);
        assert!(evals > 1000);
    }

    #[test]
    fn search_beats_single_device_when_compute_dominates() {
        let cl = cluster();
        let cs = costs();
        let single = Placement::single_device(6).simulate(&cl, &cs);
        let (_, found, _) = optimize_placement(&cl, &cs, &PlacementSearchConfig::default());
        assert!(
            found.step_seconds < single.step_seconds,
            "search {} vs single {}",
            found.step_seconds,
            single.step_seconds
        );
    }

    #[test]
    fn search_is_seed_deterministic() {
        let cl = cluster();
        let cs = costs();
        let cfg = PlacementSearchConfig::default();
        let (a, ca, _) = optimize_placement(&cl, &cs, &cfg);
        let (b, cb, _) = optimize_placement(&cl, &cs, &cfg);
        assert_eq!(a, b);
        assert_eq!(ca.step_seconds, cb.step_seconds);
    }

    #[test]
    fn data_parallel_priced_by_allreduce() {
        let cl = cluster();
        let cs = costs();
        let dp = data_parallel_cost(&cl, &cs);
        assert_eq!(dp.transfer_bytes, 6 * 1_000_000 * 4);
        // on slow links data parallel loses to the searched placement
        let slow = Cluster::homogeneous(4, Device::accelerator(), Link::ethernet());
        let dp_slow = data_parallel_cost(&slow, &cs);
        assert!(dp_slow.step_seconds > dp.step_seconds);
    }

    #[test]
    #[should_panic(expected = "assign every layer")]
    fn mismatched_assignment_rejected() {
        let _ = Placement::single_device(3).simulate(&cluster(), &costs());
    }
}
