//! Priority-based parameter propagation (P3-style, §2.1).
//!
//! During the backward pass, gradients become available from the last layer
//! to the first, but the *next* forward pass consumes updated parameters
//! from the first layer onward. A FIFO communication queue therefore ships
//! big late-layer gradients first and leaves the first layer's (urgently
//! needed) update stuck behind the backlog. Priority scheduling slices
//! gradients and ships first-needed-first, overlapping the remaining
//! communication with the next forward pass.
//!
//! This module is a deterministic discrete-event simulation of one training
//! iteration under both policies, driven by per-layer compute times and
//! gradient sizes from the real cost model.

use crate::sim::Link;

/// Per-layer timing and size inputs to the schedule simulation.
#[derive(Debug, Clone, Copy)]
pub struct LayerComm {
    /// Seconds of backward compute for this layer.
    pub backward_time: f64,
    /// Seconds of forward compute for this layer.
    pub forward_time: f64,
    /// Gradient bytes this layer must synchronize.
    pub grad_bytes: u64,
}

/// Communication scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Ship gradients in the order backward produces them (last layer
    /// first).
    Fifo,
    /// Ship slices in order of next-forward need (first layer first),
    /// preempting at slice granularity.
    Priority,
}

/// The simulated outcome of one iteration.
#[must_use = "the schedule carries the timing measurements this simulation exists to produce"]
#[derive(Debug, Clone)]
pub struct CommSchedule {
    /// Policy simulated.
    pub policy: SchedulePolicy,
    /// Seconds from backward start until the next forward pass completes.
    pub iteration_seconds: f64,
    /// Seconds the next forward pass spent stalled waiting for parameters.
    pub stall_seconds: f64,
}

/// Number of slices each layer's gradient is cut into under the priority
/// policy (P3 uses fixed-size slices; a constant count keeps the simulation
/// simple while preserving the preemption effect).
const SLICES: usize = 8;

/// Simulates one iteration (backward pass, gradient communication, next
/// forward pass) under `policy`.
///
/// # Panics
/// Panics when `layers` is empty.
pub fn schedule_backward_comm(
    layers: &[LayerComm],
    link: &Link,
    policy: SchedulePolicy,
) -> CommSchedule {
    assert!(!layers.is_empty(), "need at least one layer");
    let n = layers.len();
    // gradient availability: backward runs from layer n-1 down to 0
    let mut avail = vec![0.0f64; n];
    let mut t = 0.0;
    for i in (0..n).rev() {
        t += layers[i].backward_time;
        avail[i] = t;
    }
    // build transfer jobs: (layer, ready_time, seconds_on_wire)
    struct Job {
        layer: usize,
        ready: f64,
        duration: f64,
    }
    let mut jobs: Vec<Job> = Vec::new();
    match policy {
        SchedulePolicy::Fifo => {
            for i in (0..n).rev() {
                jobs.push(Job {
                    layer: i,
                    ready: avail[i],
                    duration: link.transfer_time(layers[i].grad_bytes),
                });
            }
        }
        SchedulePolicy::Priority => {
            // slice each gradient; slices of earlier layers preempt.
            // Slices of one message stream over an open connection, so the
            // per-message latency is amortized across its slices rather
            // than paid per slice.
            for i in 0..n {
                let per_slice = layers[i].grad_bytes as f64 / SLICES as f64 / link.bandwidth
                    + link.latency / SLICES as f64;
                for _ in 0..SLICES {
                    jobs.push(Job {
                        layer: i,
                        ready: avail[i],
                        duration: per_slice,
                    });
                }
            }
        }
    }
    // serialize the channel
    let mut done = vec![0.0f64; n]; // completion of each layer's full gradient
    let mut remaining: Vec<usize> = (0..jobs.len()).collect();
    let mut channel_free = 0.0f64;
    let mut slices_left: Vec<usize> = match policy {
        SchedulePolicy::Fifo => vec![1; n],
        SchedulePolicy::Priority => vec![SLICES; n],
    };
    while !remaining.is_empty() {
        // choose next job among ready ones
        let now = channel_free;
        let pick = match policy {
            SchedulePolicy::Fifo => {
                // earliest-ready first (ties by layer descending = FIFO of
                // the backward stream)
                remaining
                    .iter()
                    .enumerate()
                    .min_by(|(_, &a), (_, &b)| {
                        jobs[a]
                            .ready
                            .total_cmp(&jobs[b].ready)
                            .then(jobs[b].layer.cmp(&jobs[a].layer))
                    })
                    .map(|(pos, _)| pos)
                    .expect("non-empty")
            }
            SchedulePolicy::Priority => {
                // among jobs ready by `now`, lowest layer index wins;
                // if none are ready, the earliest-ready one
                let ready: Vec<(usize, &usize)> = remaining
                    .iter()
                    .enumerate()
                    .filter(|(_, &j)| jobs[j].ready <= now)
                    .collect();
                if ready.is_empty() {
                    remaining
                        .iter()
                        .enumerate()
                        .min_by(|(_, &a), (_, &b)| {
                            jobs[a]
                                .ready
                                .total_cmp(&jobs[b].ready)
                                .then(jobs[a].layer.cmp(&jobs[b].layer))
                        })
                        .map(|(pos, _)| pos)
                        .expect("non-empty")
                } else {
                    ready
                        .iter()
                        .min_by_key(|(_, &j)| jobs[j].layer)
                        .map(|&(pos, _)| pos)
                        .expect("non-empty")
                }
            }
        };
        let job_idx = remaining.swap_remove(pick);
        let job = &jobs[job_idx];
        let start = channel_free.max(job.ready);
        channel_free = start + job.duration;
        slices_left[job.layer] -= 1;
        if slices_left[job.layer] == 0 {
            done[job.layer] = channel_free;
        }
    }
    // next forward pass: layer i starts when layer i-1's forward finished
    // AND layer i's parameters have arrived
    let backward_end = avail[0];
    let mut fwd_t = backward_end; // forward cannot start before backward ends
    let mut stall = 0.0;
    for i in 0..n {
        let ready = fwd_t.max(done[i]);
        stall += ready - fwd_t;
        fwd_t = ready + layers[i].forward_time;
    }
    CommSchedule {
        policy,
        iteration_seconds: fwd_t,
        stall_seconds: stall,
    }
}

/// Builds [`LayerComm`] inputs from a network's layer costs on a device of
/// the given FLOP/s rate.
pub fn layer_comm_profile(
    costs: &[dl_nn::LayerCost],
    flops_per_sec: f64,
) -> Vec<LayerComm> {
    costs
        .iter()
        .map(|c| LayerComm {
            backward_time: c.backward_flops as f64 / flops_per_sec,
            forward_time: c.forward_flops as f64 / flops_per_sec,
            grad_bytes: c.params * 4,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A network shaped like real CNNs: early conv layers are param-light,
    /// late dense layers param-heavy. Their huge gradients become available
    /// FIRST in backward and hog a FIFO channel while the small early-layer
    /// gradients (needed first by the next forward) queue behind them —
    /// exactly the regime where P3's preemption wins.
    fn cnn_like() -> Vec<LayerComm> {
        vec![
            LayerComm {
                backward_time: 0.01,
                forward_time: 0.01,
                grad_bytes: 2_000_000,
            },
            LayerComm {
                backward_time: 0.01,
                forward_time: 0.01,
                grad_bytes: 10_000_000,
            },
            LayerComm {
                backward_time: 0.01,
                forward_time: 0.01,
                grad_bytes: 20_000_000,
            },
            LayerComm {
                backward_time: 0.01,
                forward_time: 0.01,
                grad_bytes: 40_000_000,
            },
        ]
    }

    #[test]
    fn priority_beats_fifo_on_cnn_like_networks() {
        let link = Link::ethernet();
        let layers = cnn_like();
        let fifo = schedule_backward_comm(&layers, &link, SchedulePolicy::Fifo);
        let prio = schedule_backward_comm(&layers, &link, SchedulePolicy::Priority);
        assert!(
            prio.iteration_seconds < fifo.iteration_seconds,
            "priority {} vs fifo {}",
            prio.iteration_seconds,
            fifo.iteration_seconds
        );
        assert!(prio.stall_seconds <= fifo.stall_seconds);
    }

    #[test]
    fn both_policies_ship_all_bytes() {
        // iteration time must be at least total wire time + compute floor
        let link = Link::ethernet();
        let layers = cnn_like();
        let total_bytes: u64 = layers.iter().map(|l| l.grad_bytes).sum();
        let wire_floor = total_bytes as f64 / link.bandwidth;
        for policy in [SchedulePolicy::Fifo, SchedulePolicy::Priority] {
            let s = schedule_backward_comm(&layers, &link, policy);
            assert!(
                s.iteration_seconds >= wire_floor,
                "{policy:?} finished faster than the wire allows"
            );
        }
    }

    #[test]
    fn single_layer_policies_agree() {
        let link = Link::ethernet();
        let layers = vec![LayerComm {
            backward_time: 0.01,
            forward_time: 0.02,
            grad_bytes: 1_000_000,
        }];
        let fifo = schedule_backward_comm(&layers, &link, SchedulePolicy::Fifo);
        let prio = schedule_backward_comm(&layers, &link, SchedulePolicy::Priority);
        // one layer: nothing to reorder (slicing adds only extra latency
        // per slice, which is tiny)
        assert!((fifo.iteration_seconds - prio.iteration_seconds).abs() < 1e-3);
    }

    #[test]
    fn zero_communication_means_zero_stall() {
        let link = Link::nvlink();
        let layers = vec![
            LayerComm {
                backward_time: 0.01,
                forward_time: 0.01,
                grad_bytes: 0,
            };
            3
        ];
        let s = schedule_backward_comm(&layers, &link, SchedulePolicy::Priority);
        // latency-only transfers complete during compute: negligible stall
        assert!(s.stall_seconds < 1e-3);
    }

    #[test]
    fn profile_conversion_matches_costs() {
        let costs = vec![dl_nn::LayerCost {
            forward_flops: 1_000_000,
            backward_flops: 2_000_000,
            params: 100,
            activation_elems: 10,
        }];
        let p = layer_comm_profile(&costs, 1e9);
        assert!((p[0].forward_time - 1e-3).abs() < 1e-12);
        assert!((p[0].backward_time - 2e-3).abs() < 1e-12);
        assert_eq!(p[0].grad_bytes, 400);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_layers_rejected() {
        let _ = schedule_backward_comm(&[], &Link::ethernet(), SchedulePolicy::Fifo);
    }
}
