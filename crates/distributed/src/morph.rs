//! MorphNet-style iterative structure optimization (§2.2).
//!
//! MorphNet alternates short training phases with a resize step that
//! reallocates width under a resource constraint: layers whose neurons
//! carry weight mass get wider, layers that don't get narrower, and the
//! whole network is rescaled to the parameter budget. The comparison
//! baseline is *uniform scaling*, which shrinks every layer by the same
//! factor regardless of where the capacity is needed.

use dl_nn::{Dataset, Dense, Layer, Network, Optimizer, TrainConfig, Trainer};
use rand::rngs::StdRng;

/// Morph optimization configuration.
#[derive(Debug, Clone)]
pub struct MorphConfig {
    /// Target total parameter budget.
    pub param_budget: usize,
    /// Morph iterations (train -> resize).
    pub rounds: usize,
    /// Epochs of training inside each round.
    pub epochs_per_round: usize,
    /// Minimum width any hidden layer may shrink to.
    pub min_width: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for MorphConfig {
    fn default() -> Self {
        MorphConfig {
            param_budget: 2000,
            rounds: 3,
            epochs_per_round: 10,
            min_width: 2,
            seed: 0,
        }
    }
}

/// Outcome of a morph run.
#[must_use = "the report carries the width/accuracy measurements this run exists to produce"]
#[derive(Debug, Clone)]
pub struct MorphReport {
    /// Hidden widths after the final resize.
    pub final_widths: Vec<usize>,
    /// Parameters of the final network.
    pub final_params: usize,
    /// Accuracy of the final network on the evaluation set.
    pub accuracy: f64,
    /// Total optimization-time FLOPs spent across rounds.
    pub optimization_flops: u64,
}

/// Per-hidden-layer importance: mean L2 mass of each layer's neurons
/// (incoming + outgoing weights), summed over the layer.
fn layer_importance(net: &Network) -> Vec<f64> {
    let dense: Vec<&Dense> = net
        .layers()
        .iter()
        .filter_map(|l| match l {
            Layer::Dense(d) => Some(d),
            _ => None,
        })
        .collect();
    // hidden layer h sits between dense[h] (incoming) and dense[h+1]
    (0..dense.len().saturating_sub(1))
        .map(|h| {
            let incoming = f64::from(dense[h].weight.sum_squares());
            let outgoing = f64::from(dense[h + 1].weight.sum_squares());
            (incoming + outgoing).sqrt()
        })
        .collect()
}

/// Computes hidden widths proportional to `importance`, scaled so the MLP
/// `input -> widths -> classes` meets `budget` parameters as closely as
/// possible (floored at `min_width`).
fn widths_for_budget(
    input: usize,
    classes: usize,
    importance: &[f64],
    budget: usize,
    min_width: usize,
) -> Vec<usize> {
    assert!(!importance.is_empty(), "need at least one hidden layer");
    let total_imp: f64 = importance.iter().sum();
    let shares: Vec<f64> = importance
        .iter()
        .map(|&i| if total_imp > 0.0 { i / total_imp } else { 1.0 / importance.len() as f64 })
        .collect();
    // binary search a global scale so params(widths = scale * share) ~ budget
    let params_of = |widths: &[usize]| -> usize {
        let mut dims = vec![input];
        dims.extend_from_slice(widths);
        dims.push(classes);
        dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    };
    let mut lo = 1.0f64;
    let mut hi = 4096.0f64;
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        let widths: Vec<usize> = shares
            .iter()
            .map(|s| ((s * mid).round() as usize).max(min_width))
            .collect();
        if params_of(&widths) > budget {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    shares
        .iter()
        .map(|s| ((s * lo).round() as usize).max(min_width))
        .collect()
}

/// Runs the morph loop on an MLP: train, measure importance, resize to the
/// budget, re-embed surviving structure, repeat. Returns the final network
/// and report.
pub fn morph_resize(
    data: &Dataset,
    eval: &Dataset,
    initial_hidden: &[usize],
    config: &MorphConfig,
    rng: &mut StdRng,
) -> (Network, MorphReport) {
    assert!(!initial_hidden.is_empty(), "morph needs hidden layers");
    let input = data.x.dims()[1];
    let classes = data.classes;
    let mut widths = initial_hidden.to_vec();
    let mut dims = vec![input];
    dims.extend(&widths);
    dims.push(classes);
    let mut net = Network::mlp(&dims, rng);
    let mut flops = 0u64;
    for round in 0..config.rounds {
        let mut trainer = Trainer::new(
            TrainConfig {
                epochs: config.epochs_per_round,
                seed: config.seed.wrapping_add(round as u64),
                ..TrainConfig::default()
            },
            Optimizer::adam(0.01),
        );
        trainer.fit(&mut net, data);
        flops += trainer.flops;
        if round + 1 == config.rounds {
            break; // final round trains only
        }
        let importance = layer_importance(&net);
        widths = widths_for_budget(input, classes, &importance, config.param_budget, config.min_width);
        let mut new_dims = vec![input];
        new_dims.extend(&widths);
        new_dims.push(classes);
        net = reembed(&net, &new_dims, rng);
    }
    net.clear_caches();
    let accuracy = dl_nn::metrics::accuracy(&net.predict(&eval.x), &eval.y);
    let report = MorphReport {
        final_widths: widths,
        final_params: net.param_count(),
        accuracy,
        optimization_flops: flops,
    };
    (net, report)
}

/// Uniform-scaling baseline: shrink every hidden layer by the same factor
/// to meet the budget, then train once with the same total epoch budget.
pub fn uniform_baseline(
    data: &Dataset,
    eval: &Dataset,
    initial_hidden: &[usize],
    config: &MorphConfig,
    rng: &mut StdRng,
) -> (Network, MorphReport) {
    let input = data.x.dims()[1];
    let classes = data.classes;
    let uniform_imp = vec![1.0; initial_hidden.len()];
    // uniform shares but honoring the relative sizes of the initial widths
    let imp: Vec<f64> = initial_hidden
        .iter()
        .zip(&uniform_imp)
        .map(|(&w, &u)| w as f64 * u)
        .collect();
    let widths = widths_for_budget(input, classes, &imp, config.param_budget, config.min_width);
    let mut dims = vec![input];
    dims.extend(&widths);
    dims.push(classes);
    let mut net = Network::mlp(&dims, rng);
    let mut trainer = Trainer::new(
        TrainConfig {
            epochs: config.epochs_per_round * config.rounds,
            seed: config.seed,
            ..TrainConfig::default()
        },
        Optimizer::adam(0.01),
    );
    trainer.fit(&mut net, data);
    net.clear_caches();
    let accuracy = dl_nn::metrics::accuracy(&net.predict(&eval.x), &eval.y);
    let report = MorphReport {
        final_widths: widths,
        final_params: net.param_count(),
        accuracy,
        optimization_flops: trainer.flops,
    };
    (net, report)
}

/// Builds a network of `dims`, copying the overlapping weight block from
/// `old` (keeping its highest-norm neurons when shrinking).
fn reembed(old: &Network, dims: &[usize], rng: &mut StdRng) -> Network {
    let old_dense: Vec<&Dense> = old
        .layers()
        .iter()
        .filter_map(|l| match l {
            Layer::Dense(d) => Some(d),
            _ => None,
        })
        .collect();
    let mut fresh = Network::mlp(dims, rng);
    // per-interface kept indices: input/output interfaces keep identity
    let mut kept: Vec<Vec<usize>> = Vec::with_capacity(dims.len());
    kept.push((0..dims[0]).collect());
    for (h, &width) in dims[1..dims.len() - 1].iter().enumerate() {
        let d = old_dense[h];
        let old_width = d.fan_out();
        if width >= old_width {
            kept.push((0..old_width).collect());
        } else {
            // keep the top-norm neurons
            let mut norms: Vec<(f32, usize)> = (0..old_width)
                .map(|j| {
                    let n: f32 = (0..d.fan_in()).map(|i| d.weight.get(&[i, j]).powi(2)).sum();
                    (n, j)
                })
                .collect();
            norms.sort_by(|a, b| b.0.total_cmp(&a.0));
            let mut keep: Vec<usize> = norms[..width].iter().map(|&(_, j)| j).collect();
            keep.sort_unstable();
            kept.push(keep);
        }
    }
    kept.push((0..*dims.last().expect("non-empty dims")).collect());
    let mut dense_idx = 0;
    for layer in fresh.layers_mut() {
        let Layer::Dense(nd) = layer else { continue };
        let od = old_dense[dense_idx];
        let rows = &kept[dense_idx];
        let cols = &kept[dense_idx + 1];
        let mut w = nd.weight.clone();
        for (ni, &oi) in rows.iter().enumerate().take(nd.fan_in()) {
            if oi >= od.fan_in() {
                continue;
            }
            for (nj, &oj) in cols.iter().enumerate().take(nd.fan_out()) {
                if oj >= od.fan_out() {
                    continue;
                }
                w.set(&[ni, nj], od.weight.get(&[oi, oj]));
            }
        }
        let mut b = nd.bias.clone();
        for (nj, &oj) in cols.iter().enumerate().take(nd.fan_out()) {
            if oj < od.fan_out() {
                b.data_mut()[nj] = od.bias.data()[oj];
            }
        }
        *nd = Dense::from_parts(w, b);
        dense_idx += 1;
    }
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_data::blobs;
    use dl_tensor::init::rng;

    #[test]
    fn widths_meet_budget() {
        let widths = widths_for_budget(10, 3, &[1.0, 1.0], 500, 2);
        let mut dims = vec![10];
        dims.extend(&widths);
        dims.push(3);
        let params: usize = dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum();
        assert!(params <= 550, "params {params} exceed budget slack");
        assert!(params >= 300, "params {params} far below budget");
    }

    #[test]
    fn importance_shifts_width_allocation() {
        let balanced = widths_for_budget(10, 3, &[1.0, 1.0], 500, 2);
        let skewed = widths_for_budget(10, 3, &[4.0, 1.0], 500, 2);
        assert!(skewed[0] > balanced[0]);
        assert!(skewed[1] < balanced[1]);
    }

    #[test]
    fn min_width_respected() {
        let widths = widths_for_budget(10, 3, &[100.0, 0.0001], 400, 3);
        assert!(widths.iter().all(|&w| w >= 3));
    }

    #[test]
    fn reembed_same_dims_preserves_function() {
        let mut r = rng(0);
        let data = blobs(40, 2, 3, 6.0, 0.3, 0);
        let mut old = Network::mlp(&[3, 8, 2], &mut r);
        let mut new = reembed(&old, &[3, 8, 2], &mut r);
        let a = old.forward(&data.x, false);
        let b = new.forward(&data.x, false);
        assert!(a.approx_eq(&b, 1e-6));
    }

    #[test]
    fn morph_meets_budget_and_learns() {
        let data = blobs(150, 3, 4, 6.0, 0.4, 1);
        let eval = blobs(60, 3, 4, 6.0, 0.4, 2);
        let mut r = rng(3);
        let cfg = MorphConfig {
            param_budget: 150,
            rounds: 3,
            epochs_per_round: 10,
            ..MorphConfig::default()
        };
        let (net, report) = morph_resize(&data, &eval, &[32, 32], &cfg, &mut r);
        assert!(
            report.final_params <= 200,
            "final params {} blew the budget",
            report.final_params
        );
        assert_eq!(report.final_params, net.param_count());
        assert!(report.accuracy > 0.7, "accuracy {}", report.accuracy);
    }

    #[test]
    fn morph_at_least_matches_uniform_at_same_budget() {
        let data = blobs(200, 3, 4, 6.0, 0.4, 4);
        let eval = blobs(80, 3, 4, 6.0, 0.4, 5);
        let cfg = MorphConfig {
            param_budget: 150,
            rounds: 3,
            epochs_per_round: 12,
            ..MorphConfig::default()
        };
        let (_, morph) = morph_resize(&data, &eval, &[32, 32], &cfg, &mut rng(6));
        let (_, uniform) = uniform_baseline(&data, &eval, &[32, 32], &cfg, &mut rng(6));
        // the resized network should be at least competitive
        assert!(
            morph.accuracy >= uniform.accuracy - 0.1,
            "morph {} vs uniform {}",
            morph.accuracy,
            uniform.accuracy
        );
    }
}
