//! Gradient compression for distributed training (§2.1).
//!
//! Two families from the literature the tutorial cites:
//!
//! * **Top-k sparsification** (Deep Gradient Compression): send only the
//!   largest-magnitude `k` fraction of gradient entries; the rest
//!   accumulate locally as *error feedback* and are sent once they grow.
//! * **Low-bit quantization**: send gradients at 1-8 bits with the same
//!   error-feedback correction.
//!
//! The compressor is exact about the bytes it would put on the wire, so
//! experiments can plot accuracy against real communication volume.

use crate::sim::Cluster;
use dl_nn::{loss::one_hot, Dataset, Loss, Network, Optimizer};
use dl_tensor::init;

/// A lossy gradient encoder with error feedback.
#[derive(Debug, Clone)]
pub enum GradCompressor {
    /// Send every value at full precision (the baseline).
    None,
    /// Keep the top `frac` fraction of entries by magnitude.
    TopK {
        /// Fraction kept, in `(0, 1]`.
        frac: f64,
    },
    /// Uniform quantization to `bits` per value.
    Quantize {
        /// Bits per transmitted value (1-8).
        bits: u8,
    },
}

impl GradCompressor {
    /// Name for reports.
    pub fn name(&self) -> String {
        match self {
            GradCompressor::None => "none".into(),
            GradCompressor::TopK { frac } => {
                let pct = frac * 100.0;
                if pct < 1.0 {
                    format!("top{pct:.1}%")
                } else {
                    format!("top{pct:.0}%")
                }
            }
            GradCompressor::Quantize { bits } => format!("quant{bits}"),
        }
    }

    /// Compresses `grad` in place (values not transmitted become 0),
    /// returns the bytes that would go on the wire.
    ///
    /// `residual` carries the error feedback between calls and must have
    /// the same length as `grad`.
    ///
    /// # Panics
    /// Panics on residual length mismatch or invalid parameters.
    pub fn compress(&self, grad: &mut [f32], residual: &mut [f32]) -> u64 {
        assert_eq!(grad.len(), residual.len(), "residual length mismatch");
        // fold in the residual first: g <- g + r
        for (g, r) in grad.iter_mut().zip(residual.iter()) {
            *g += r;
        }
        match self {
            GradCompressor::None => {
                residual.fill(0.0);
                (grad.len() * 4) as u64
            }
            GradCompressor::TopK { frac } => {
                assert!(
                    *frac > 0.0 && *frac <= 1.0,
                    "top-k fraction must lie in (0,1], got {frac}"
                );
                let k = ((grad.len() as f64 * frac).ceil() as usize).clamp(1, grad.len());
                let mut mags: Vec<f32> = grad.iter().map(|v| v.abs()).collect();
                let cut = grad.len() - k;
                let threshold = if cut == 0 {
                    f32::NEG_INFINITY
                } else {
                    let (_, t, _) = mags.select_nth_unstable_by(cut - 1, f32::total_cmp);
                    *t
                };
                let mut kept = 0usize;
                for (g, r) in grad.iter_mut().zip(residual.iter_mut()) {
                    if g.abs() > threshold && kept < k {
                        *r = 0.0;
                        kept += 1;
                    } else {
                        *r = *g; // accumulate for later
                        *g = 0.0;
                    }
                }
                // value (4B) + index (4B) per kept entry
                (kept * 8) as u64
            }
            GradCompressor::Quantize { bits } => {
                assert!((1..=8).contains(bits), "bits must be 1-8");
                let levels = ((1u32 << bits) - 1) as f32;
                let (lo, hi) = grad
                    .iter()
                    .fold((f32::INFINITY, f32::NEG_INFINITY), |(l, h), &v| {
                        (l.min(v), h.max(v))
                    });
                let range = (hi - lo).max(1e-12);
                let scale = range / levels;
                for (g, r) in grad.iter_mut().zip(residual.iter_mut()) {
                    let code = ((*g - lo) / scale).round().clamp(0.0, levels);
                    let decoded = lo + code * scale;
                    *r = *g - decoded; // quantization error feeds back
                    *g = decoded;
                }
                (grad.len() * *bits as usize).div_ceil(8) as u64 + 8
            }
        }
    }
}

/// Result of a compressed data-parallel training run.
#[must_use = "the report carries the compression/accuracy measurements this run exists to produce"]
#[derive(Debug, Clone)]
pub struct GradCompressionReport {
    /// Compressor name.
    pub compressor: String,
    /// Final evaluation accuracy.
    pub accuracy: f64,
    /// Total gradient bytes put on the wire.
    pub bytes_communicated: u64,
    /// Bytes an uncompressed run would have sent.
    pub baseline_bytes: u64,
    /// Simulated seconds.
    pub simulated_seconds: f64,
}

impl GradCompressionReport {
    /// Compression ratio achieved on the wire.
    pub fn ratio(&self) -> f64 {
        self.baseline_bytes as f64 / self.bytes_communicated.max(1) as f64
    }
}

/// Synchronous data-parallel training with compressed gradient exchange.
///
/// Workers compute gradients on their shards, compress with error
/// feedback, and the (decoded) compressed gradients are averaged and
/// applied by every worker identically.
#[allow(clippy::too_many_arguments)]
pub fn compressed_sgd(
    cluster: &Cluster,
    data: &Dataset,
    eval: &Dataset,
    dims: &[usize],
    compressor: &GradCompressor,
    steps: usize,
    batch_size: usize,
    lr: f32,
    seed: u64,
) -> (Network, GradCompressionReport) {
    compressed_sgd_opts(
        cluster, data, eval, dims, compressor, steps, batch_size, lr, seed, true,
    )
}

/// [`compressed_sgd`] with error feedback optionally disabled — the
/// ablation that shows why the residual accumulator matters (without it,
/// aggressive top-k silently discards most of the gradient signal
/// forever).
#[allow(clippy::too_many_arguments)]
pub fn compressed_sgd_opts(
    cluster: &Cluster,
    data: &Dataset,
    eval: &Dataset,
    dims: &[usize],
    compressor: &GradCompressor,
    steps: usize,
    batch_size: usize,
    lr: f32,
    seed: u64,
    error_feedback: bool,
) -> (Network, GradCompressionReport) {
    let workers = cluster.len();
    let mut seed_rng = init::rng(seed);
    let mut model = Network::mlp(dims, &mut seed_rng);
    let mut opt = Optimizer::sgd(lr);
    let shards: Vec<Vec<usize>> = (0..workers)
        .map(|w| (w..data.len()).step_by(workers).collect())
        .collect();
    let mut shard_rngs: Vec<_> = (0..workers)
        .map(|w| init::rng(seed.wrapping_add(w as u64 + 1)))
        .collect();
    let nparams = model.param_count();
    let mut residuals = vec![vec![0.0f32; nparams]; workers];
    let step_flops = model.cost_profile(batch_size).train_step_flops();
    let mut bytes = 0u64;
    let mut seconds = 0.0f64;
    for _ in 0..steps {
        let mut mean_grad = vec![0.0f32; nparams];
        let mut step_bytes = 0u64;
        for w in 0..workers {
            let idx: Vec<usize> = (0..batch_size)
                .map(|_| shards[w][init::sample_indices(shards[w].len(), 1, &mut shard_rngs[w])[0]])
                .collect();
            let xb = data.x.select_rows(&idx);
            let labels: Vec<usize> = idx.iter().map(|&i| data.y[i]).collect();
            let targets = one_hot(&labels, data.classes);
            model.zero_grads();
            let logits = model.forward(&xb, true);
            let (_, grad) = Loss::SoftmaxCrossEntropy.evaluate(&logits, &targets);
            model.backward(&grad);
            let mut g = model.flat_grads();
            step_bytes += compressor.compress(&mut g, &mut residuals[w]);
            if !error_feedback {
                residuals[w].fill(0.0); // ablation: drop the unsent signal
            }
            for (m, v) in mean_grad.iter_mut().zip(&g) {
                *m += v / workers as f32;
            }
        }
        model.set_flat_grads(&mean_grad);
        let mut pg = model.params_and_grads();
        opt.step(&mut pg, 1.0);
        bytes += step_bytes;
        seconds += cluster
            .devices
            .iter()
            .map(|d| d.compute_time(step_flops))
            .fold(0.0, f64::max)
            + cluster.allreduce_time(step_bytes / workers as u64);
    }
    model.clear_caches();
    let accuracy = dl_nn::metrics::accuracy(&model.predict(&eval.x), &eval.y);
    let baseline_bytes = (nparams * 4 * workers * steps) as u64;
    (
        model,
        GradCompressionReport {
            compressor: compressor.name(),
            accuracy,
            bytes_communicated: bytes,
            baseline_bytes,
            simulated_seconds: seconds,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Device, Link};
    use dl_data::blobs;

    #[test]
    fn topk_keeps_largest_and_banks_rest() {
        let mut g = vec![0.1, -5.0, 0.2, 3.0];
        let mut r = vec![0.0; 4];
        let c = GradCompressor::TopK { frac: 0.5 };
        let bytes = c.compress(&mut g, &mut r);
        assert_eq!(bytes, 16); // 2 entries * 8 bytes
        assert_eq!(g, vec![0.0, -5.0, 0.0, 3.0]);
        assert_eq!(r, vec![0.1, 0.0, 0.2, 0.0]);
    }

    #[test]
    fn error_feedback_accumulates_until_sent() {
        let c = GradCompressor::TopK { frac: 0.25 };
        let mut r = vec![0.0; 4];
        // small entry grows across rounds until it wins the top-k slot
        let mut g1 = vec![0.4, 1.0, 0.0, 0.0];
        c.compress(&mut g1, &mut r);
        assert_eq!(g1[0], 0.0);
        assert!((r[0] - 0.4).abs() < 1e-6);
        let mut g2 = vec![0.4, 0.1, 0.0, 0.0];
        c.compress(&mut g2, &mut r);
        // 0.4 + banked 0.4 = 0.8 beats everything else
        assert!((g2[0] - 0.8).abs() < 1e-6);
        assert_eq!(r[0], 0.0);
    }

    #[test]
    fn quantize_error_bounded_and_fed_back() {
        let c = GradCompressor::Quantize { bits: 4 };
        let mut g = vec![-1.0, -0.33, 0.2, 1.0];
        let orig = g.clone();
        let mut r = vec![0.0; 4];
        let bytes = c.compress(&mut g, &mut r);
        assert_eq!(bytes, 2 + 8);
        let step = 2.0 / 15.0;
        for ((&d, &o), &res) in g.iter().zip(&orig).zip(&r) {
            assert!((d - o).abs() <= step / 2.0 + 1e-6);
            assert!((d + res - o).abs() < 1e-6, "feedback must capture the error");
        }
    }

    #[test]
    fn none_compressor_is_identity() {
        let c = GradCompressor::None;
        let mut g = vec![1.0, 2.0];
        let mut r = vec![0.5, 0.0]; // pending residual folds in
        let bytes = c.compress(&mut g, &mut r);
        assert_eq!(bytes, 8);
        assert_eq!(g, vec![1.5, 2.0]);
        assert_eq!(r, vec![0.0, 0.0]);
    }

    #[test]
    fn compressed_training_saves_bytes_and_still_learns() {
        let data = blobs(200, 2, 4, 6.0, 0.4, 0);
        let eval = blobs(80, 2, 4, 6.0, 0.4, 1);
        let cluster = Cluster::homogeneous(4, Device::accelerator(), Link::ethernet());
        let run = |c: &GradCompressor| {
            compressed_sgd(&cluster, &data, &eval, &[4, 16, 2], c, 120, 16, 0.05, 7).1
        };
        let dense = run(&GradCompressor::None);
        let sparse = run(&GradCompressor::TopK { frac: 0.05 });
        let quant = run(&GradCompressor::Quantize { bits: 4 });
        assert!(dense.accuracy > 0.9);
        // top-5% with value+index pairs: theoretical ratio 4B / (8B * 5%) = 10
        assert!(sparse.ratio() > 8.0, "top-5% ratio {}", sparse.ratio());
        assert!(quant.ratio() > 6.0, "4-bit ratio {}", quant.ratio());
        assert!(sparse.accuracy > dense.accuracy - 0.15);
        assert!(quant.accuracy > dense.accuracy - 0.15);
        assert!(sparse.simulated_seconds < dense.simulated_seconds);
    }

    #[test]
    #[should_panic(expected = "fraction must lie")]
    fn topk_rejects_zero_fraction() {
        GradCompressor::TopK { frac: 0.0 }.compress(&mut [1.0], &mut [0.0]);
    }
}
