//! Checkpoint/restore for distributed training, with a simulated-time
//! cost model.
//!
//! A [`Checkpoint`] captures everything needed to resume elastic Local
//! SGD after a crash: the (synchronized) model parameters, the optimizer,
//! and each worker's data-shard cursor (how many samples it has drawn, so
//! the sampling RNG can be replayed to the exact same state). The
//! [`CheckpointStore`] charges simulated seconds for every write and
//! restore via a [`StorageProfile`], which is what turns the checkpoint
//! interval into a measurable knob: frequent checkpoints cost write time,
//! rare checkpoints cost replayed work after a failure (experiment E22).

use dl_nn::{Network, Optimizer};
use dl_store::{load_checkpoint, save_checkpoint, CheckpointData, StoreError};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Simulated storage target for checkpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageProfile {
    /// Sustained write bandwidth in bytes/second.
    pub write_bandwidth: f64,
    /// Sustained read bandwidth in bytes/second.
    pub read_bandwidth: f64,
    /// Fixed per-operation latency in seconds (metadata, fsync, RPC).
    pub latency: f64,
}

impl StorageProfile {
    /// A node-local NVMe SSD: fast, low latency.
    pub fn local_ssd() -> Self {
        StorageProfile {
            write_bandwidth: 2.0e9,
            read_bandwidth: 3.0e9,
            latency: 1.0e-4,
        }
    }

    /// A remote blob store: durable but slow and latency-heavy — the
    /// setting where the checkpoint-interval tradeoff bites.
    pub fn blob_store() -> Self {
        StorageProfile {
            write_bandwidth: 1.0e8,
            read_bandwidth: 2.0e8,
            latency: 2.0e-3,
        }
    }

    /// Simulated seconds to persist `bytes`.
    pub fn write_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.write_bandwidth
    }

    /// Simulated seconds to load `bytes`.
    pub fn read_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.read_bandwidth
    }
}

/// A resumable snapshot of an elastic Local SGD run.
///
/// Parameters are stored once (checkpoints are only taken at sync
/// boundaries, where all live workers agree), so the footprint is one
/// model regardless of cluster size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Number of completed steps at capture time.
    pub step: usize,
    /// Flattened model parameters (identical across live workers).
    pub params: Vec<f32>,
    /// Optimizer at capture time (plain SGD is stateless; momentum/Adam
    /// accumulators are `#[serde(skip)]` and rebuilt on resume).
    pub optimizer: Optimizer,
    /// Per-worker data-shard cursors: samples drawn so far, used to
    /// fast-forward each worker's sampling RNG on restore.
    pub cursors: Vec<u64>,
}

impl Checkpoint {
    /// Serialized footprint in bytes (params dominate; metadata is
    /// approximated as one cursor-width word per worker plus a header).
    pub fn size_bytes(&self) -> u64 {
        (self.params.len() * 4 + self.cursors.len() * 8 + 64) as u64
    }

    /// Writes the snapshot into `net`, replacing its parameters.
    ///
    /// # Panics
    /// Panics if `net` has a different parameter count.
    pub fn restore_into(&self, net: &mut Network) {
        net.set_flat_params(&self.params);
    }

    /// Persists the checkpoint as a `dl-store` binary artifact (real
    /// I/O, for tooling — the simulated cost model lives in
    /// [`CheckpointStore`]). Params and optimizer hyper-parameters
    /// round-trip bit-for-bit; moment buffers were never persisted
    /// (previously `#[serde(skip)]`) and still are not.
    pub fn save_file(&self, path: &Path) -> Result<(), CheckpointError> {
        std::fs::write(path, save_checkpoint(&self.to_data())).map_err(CheckpointError::Io)
    }

    /// Loads a checkpoint previously written by [`Checkpoint::save_file`].
    pub fn load_file(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path).map_err(CheckpointError::Io)?;
        let data = load_checkpoint(&bytes).map_err(CheckpointError::Format)?;
        Ok(Checkpoint {
            step: data.step as usize,
            params: data.params,
            optimizer: data.optimizer,
            cursors: data.cursors,
        })
    }

    /// The format-level view this checkpoint serializes through.
    pub fn to_data(&self) -> CheckpointData {
        CheckpointData {
            step: self.step as u64,
            params: self.params.clone(),
            optimizer: self.optimizer.clone(),
            cursors: self.cursors.clone(),
        }
    }
}

/// Why a checkpoint file failed to round-trip.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Artifact-format failure (bad magic, truncation, checksum, ...).
    Format(StoreError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Format(e) => write!(f, "checkpoint format error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Holds the latest checkpoint and meters the simulated cost of every
/// storage operation.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    storage: StorageProfile,
    latest: Option<Checkpoint>,
    /// Checkpoints written (the free initial seed is not counted).
    pub writes: usize,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Simulated seconds spent writing.
    pub write_seconds: f64,
    /// Restores served.
    pub reads: usize,
    /// Simulated seconds spent restoring.
    pub read_seconds: f64,
}

impl CheckpointStore {
    /// An empty store over the given storage target.
    pub fn new(storage: StorageProfile) -> Self {
        CheckpointStore {
            storage,
            latest: None,
            writes: 0,
            bytes_written: 0,
            write_seconds: 0.0,
            reads: 0,
            read_seconds: 0.0,
        }
    }

    /// Installs the step-0 checkpoint without charging simulated time:
    /// the initial model exists before the clock starts.
    pub fn seed_initial(&mut self, ckpt: Checkpoint) {
        self.latest = Some(ckpt);
    }

    /// Saves `ckpt` as the latest and returns the simulated seconds the
    /// write cost.
    pub fn save(&mut self, ckpt: Checkpoint) -> f64 {
        let cost = self.storage.write_time(ckpt.size_bytes());
        self.writes += 1;
        self.bytes_written += ckpt.size_bytes();
        self.write_seconds += cost;
        self.latest = Some(ckpt);
        cost
    }

    /// The most recent checkpoint, if any.
    pub fn latest(&self) -> Option<&Checkpoint> {
        self.latest.as_ref()
    }

    /// Meters one restore of the latest checkpoint and returns the
    /// simulated seconds it cost.
    ///
    /// # Panics
    /// Panics if the store is empty.
    pub fn charge_read(&mut self) -> f64 {
        let bytes = self
            .latest
            .as_ref()
            .expect("charge_read on an empty checkpoint store")
            .size_bytes();
        let cost = self.storage.read_time(bytes);
        self.reads += 1;
        self.read_seconds += cost;
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_tensor::init;

    fn sample_checkpoint() -> (Network, Checkpoint) {
        let mut rng = init::rng(9);
        let net = Network::mlp(&[4, 8, 3], &mut rng);
        let ckpt = Checkpoint {
            step: 17,
            params: net.flat_params(),
            optimizer: Optimizer::sgd(0.05),
            cursors: vec![272, 272, 256],
        };
        (net, ckpt)
    }

    #[test]
    fn restore_reproduces_params_exactly() {
        let (net, ckpt) = sample_checkpoint();
        let mut rng = init::rng(10);
        let mut other = Network::mlp(&[4, 8, 3], &mut rng);
        assert_ne!(net.flat_params(), other.flat_params());
        ckpt.restore_into(&mut other);
        assert_eq!(net.flat_params(), other.flat_params());
    }

    #[test]
    fn file_round_trip() {
        let (_, ckpt) = sample_checkpoint();
        let dir = std::env::temp_dir().join("dl_distributed_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.dlst");
        ckpt.save_file(&path).unwrap();
        let raw = std::fs::read(&path).unwrap();
        assert_eq!(&raw[..4], b"DLST", "checkpoints use the artifact format");
        let loaded = Checkpoint::load_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.step, ckpt.step);
        assert_eq!(loaded.cursors, ckpt.cursors);
        assert_eq!(loaded.params.len(), ckpt.params.len());
        for (x, y) in ckpt.params.iter().zip(&loaded.params) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(loaded.optimizer.base_lr(), ckpt.optimizer.base_lr());
        // Same pricing as before: the cost model keys off size_bytes,
        // which is unchanged by the serializer swap.
        assert_eq!(loaded.size_bytes(), ckpt.size_bytes());
    }

    #[test]
    fn corrupt_checkpoint_file_is_detected() {
        let (_, ckpt) = sample_checkpoint();
        let dir = std::env::temp_dir().join("dl_distributed_ckpt_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.dlst");
        ckpt.save_file(&path).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x10;
        std::fs::write(&path, &raw).unwrap();
        let err = Checkpoint::load_file(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, CheckpointError::Format(_)));
    }

    #[test]
    fn store_meters_write_and_read_costs() {
        let (_, ckpt) = sample_checkpoint();
        let storage = StorageProfile::blob_store();
        let mut store = CheckpointStore::new(storage);
        let bytes = ckpt.size_bytes();
        let w = store.save(ckpt);
        assert!((w - storage.write_time(bytes)).abs() < 1e-12);
        assert_eq!(store.writes, 1);
        assert_eq!(store.bytes_written, bytes);
        let r = store.charge_read();
        assert!((r - storage.read_time(bytes)).abs() < 1e-12);
        assert_eq!(store.reads, 1);
        assert!(store.latest().is_some());
    }

    #[test]
    fn seed_initial_is_free() {
        let (_, ckpt) = sample_checkpoint();
        let mut store = CheckpointStore::new(StorageProfile::local_ssd());
        store.seed_initial(ckpt);
        assert_eq!(store.writes, 0);
        assert_eq!(store.write_seconds, 0.0);
        assert_eq!(store.latest().unwrap().step, 17);
    }

    #[test]
    fn blob_store_slower_than_ssd() {
        let bytes = 10_000_000;
        assert!(
            StorageProfile::blob_store().write_time(bytes)
                > StorageProfile::local_ssd().write_time(bytes)
        );
    }

    #[test]
    fn size_scales_with_params() {
        let (_, ckpt) = sample_checkpoint();
        assert!(ckpt.size_bytes() > (ckpt.params.len() * 4) as u64);
    }
}
