//! Integration test: the trace a resilient run emits must tell the same
//! story as its report — every crash is followed by its rollback, every
//! rejoin lands on the crashed worker's track, and the virtual clock
//! mirrors the simulated-seconds accounting.

use dl_distributed::{
    resilient_local_sgd, resilient_local_sgd_traced, FaultEvent, FaultPlan, LocalSgdConfig,
    ResilientConfig, {Cluster, Device, Link},
};
use dl_nn::Network;
use dl_obs::{EventKind, Recorder, TimelineRecorder};

fn cluster(n: usize) -> Cluster {
    Cluster::homogeneous(n, Device::accelerator(), Link::ethernet())
}

fn config(steps: usize) -> ResilientConfig {
    ResilientConfig {
        base: LocalSgdConfig {
            sync_period: 4,
            steps,
            batch_size: 8,
            lr: 0.05,
            seed: 0,
        },
        checkpoint_interval: 8,
        ..ResilientConfig::default()
    }
}

fn run_traced(
    plan: &FaultPlan,
    steps: usize,
) -> (Network, dl_distributed::ResilienceReport, TimelineRecorder) {
    let data = dl_data::blobs(120, 3, 6, 6.0, 0.5, 2);
    let eval = dl_data::blobs(60, 3, 6, 6.0, 0.5, 3);
    let rec = TimelineRecorder::new();
    let (net, report) = resilient_local_sgd_traced(
        &cluster(4),
        &data,
        &eval,
        &[6, 16, 3],
        &config(steps),
        plan,
        &rec,
    );
    (net, report, rec)
}

#[test]
fn trace_contains_matching_crash_rollback_rejoin_sequences() {
    let plan = FaultPlan::new(vec![
        FaultEvent::WorkerCrash {
            worker: 2,
            at_step: 10,
        },
        FaultEvent::WorkerRejoin {
            worker: 2,
            at_step: 26,
        },
        FaultEvent::WorkerCrash {
            worker: 1,
            at_step: 37,
        },
    ]);
    let (_, report, rec) = run_traced(&plan, 48);
    assert_eq!(report.crashes, 2);
    assert_eq!(report.rollbacks, 2);
    assert_eq!(report.rejoins, 1);

    let events = rec.events();
    let named = |name: &str| -> Vec<usize> {
        events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.kind == EventKind::Instant && e.name == name)
            .map(|(i, _)| i)
            .collect()
    };
    let crashes = named("crash");
    let rollbacks = named("rollback");
    let rejoins = named("rejoin");
    assert_eq!(crashes.len(), report.crashes);
    assert_eq!(rollbacks.len(), report.rollbacks);
    assert_eq!(rejoins.len(), report.rejoins);

    // Each crash is immediately followed (in event order) by its rollback,
    // and the rollback rewinds to a checkpointed step at or before the
    // crash step.
    for (&c, &r) in crashes.iter().zip(&rollbacks) {
        assert!(r > c, "rollback must trail its crash in the timeline");
        let crash_step = events[c]
            .fields
            .iter()
            .find(|(k, _)| k == "step")
            .and_then(|(_, v)| v.as_u64())
            .expect("crash carries its step");
        let to_step = events[r]
            .fields
            .iter()
            .find(|(k, _)| k == "to_step")
            .and_then(|(_, v)| v.as_u64())
            .expect("rollback carries to_step");
        assert!(to_step <= crash_step);
        assert!(events[r].ts_micros >= events[c].ts_micros);
    }

    // Crash and rejoin instants live on the crashed worker's track
    // (track = worker + 1; track 0 is the coordinator).
    assert_eq!(events[crashes[0]].track, 3);
    assert_eq!(events[rejoins[0]].track, 3);
    assert_eq!(events[crashes[1]].track, 2);
    // The rejoin names its bootstrap source.
    assert!(events[rejoins[0]]
        .fields
        .iter()
        .any(|(k, v)| k == "source" && matches!(v.as_str(), Some("checkpoint") | Some("peer"))));

    // Checkpoint writes appear as balanced spans.
    let ckpt_starts = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanStart && e.name == "checkpoint_write")
        .count();
    let ckpt_ends = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanEnd && e.name == "checkpoint_write")
        .count();
    assert_eq!(ckpt_starts, report.checkpoints_written);
    assert_eq!(ckpt_starts, ckpt_ends);

    // The virtual clock mirrors the driver's simulated-seconds total.
    assert!((rec.clock().now() - report.simulated_seconds).abs() < 1e-9);
    // Timestamps never run backwards.
    assert!(events.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
}

#[test]
fn tracing_does_not_perturb_the_trajectory() {
    let data = dl_data::blobs(120, 3, 6, 6.0, 0.5, 2);
    let eval = dl_data::blobs(60, 3, 6, 6.0, 0.5, 3);
    let plan = FaultPlan::new(vec![FaultEvent::WorkerCrash {
        worker: 2,
        at_step: 21,
    }]);
    let (plain_net, plain) =
        resilient_local_sgd(&cluster(4), &data, &eval, &[6, 16, 3], &config(40), &plan);
    let rec = TimelineRecorder::new();
    let (traced_net, traced) = resilient_local_sgd_traced(
        &cluster(4),
        &data,
        &eval,
        &[6, 16, 3],
        &config(40),
        &plan,
        &rec,
    );
    assert_eq!(plain_net.flat_params(), traced_net.flat_params());
    assert_eq!(plain, traced);
    assert!(!rec.events().is_empty());
}

#[test]
fn clean_run_trace_has_no_fault_instants() {
    let (_, report, rec) = run_traced(&FaultPlan::none(), 24);
    assert_eq!(report.crashes, 0);
    let events = rec.events();
    assert!(events
        .iter()
        .all(|e| e.name != "crash" && e.name != "rollback" && e.name != "rejoin"));
    let rounds = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanStart && e.name == "sync_round")
        .count();
    assert_eq!(rounds, report.sync_rounds);
    assert_eq!(
        rec.counters()["bytes_communicated"],
        report.bytes_communicated
    );
}
