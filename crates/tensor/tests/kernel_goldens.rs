//! Golden-file guard for the per-precision kernel bits.
//!
//! Each [`par::Kernel`] has its own pinned golden: the scalar oracle's
//! bits equal the sequential `Tensor` kernels by construction, and the
//! unrolled kernel's bits are pinned to its fixed FMA + lane-tree
//! accumulation order. Any change to an accumulation order shows up here
//! as a bit diff, at every `DL_THREADS` count.
//!
//! Regenerate (after an intentional order change) with:
//! `DL_REGEN_GOLDEN=1 cargo test -p dl-tensor --test kernel_goldens`

use dl_tensor::{par, Tensor};

const M: usize = 17;
const K: usize = 33;
const N: usize = 9;

/// Deterministic, RNG-free fill with exact zeros every 4th element so
/// the sparse skip participates (mirrors the bench crate's generator).
fn filled(rows: usize, cols: usize, salt: usize) -> Tensor {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            if (i + salt).is_multiple_of(4) {
                0.0
            } else {
                ((i.wrapping_mul(2_654_435_761).wrapping_add(salt * 97)) % 1000) as f32 / 499.5
                    - 1.0
            }
        })
        .collect();
    Tensor::from_vec(data, [rows, cols]).expect("length matches by construction")
}

/// Every pinned output of one kernel, flattened into a bit vector:
/// matmul, sum_axis(0), sum, dot.
fn kernel_bits(kern: par::Kernel, threads: usize) -> Vec<u32> {
    par::with_kernel(kern, || {
        par::with_threads(threads, || {
            let a = filled(M, K, 1);
            let b = filled(K, N, 2);
            let mm = par::matmul(&a, &b);
            let sa = par::sum_axis(&a, 0);
            let v = filled(1, 203, 3).reshape([203]).expect("vector reshape");
            let w = filled(1, 203, 4).reshape([203]).expect("vector reshape");
            let mut bits: Vec<u32> = mm.data().iter().map(|x| x.to_bits()).collect();
            bits.extend(sa.data().iter().map(|x| x.to_bits()));
            bits.push(par::sum(&v).to_bits());
            bits.push(par::dot(&v, &w).to_bits());
            bits
        })
    })
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn read_golden(name: &str) -> Vec<u32> {
    let path = golden_path(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| u32::from_str_radix(l.trim(), 16).expect("golden lines are hex u32 bit patterns"))
        .collect()
}

fn write_golden(name: &str, bits: &[u32]) {
    let path = golden_path(name);
    std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
        .expect("create golden dir");
    let text: String = bits.iter().map(|b| format!("{b:08x}\n")).collect();
    std::fs::write(&path, text).expect("write golden");
}

fn check_kernel(kern: par::Kernel, golden_name: &str) {
    let reference = kernel_bits(kern, 1);
    if std::env::var("DL_REGEN_GOLDEN").is_ok() {
        write_golden(golden_name, &reference);
    }
    let golden = read_golden(golden_name);
    assert_eq!(
        reference, golden,
        "{kern:?} kernel bits diverged from pinned golden {golden_name} — \
         accumulation order changed (regenerate only if intentional)"
    );
    for t in [2, par::hardware_threads().max(3)] {
        assert_eq!(
            kernel_bits(kern, t),
            golden,
            "{kern:?} kernel bits depend on thread count {t}"
        );
    }
}

#[test]
fn scalar_kernel_matches_pinned_golden_at_every_thread_count() {
    check_kernel(par::Kernel::Scalar, "kernels_scalar.hex");
    // The scalar golden is, by construction, the sequential Tensor
    // kernels' bits — re-derive a few entries to prove the oracle link.
    let a = filled(M, K, 1);
    let b = filled(K, N, 2);
    let golden = read_golden("kernels_scalar.hex");
    let oracle = a.matmul(&b);
    for (g, o) in golden.iter().zip(oracle.data()) {
        assert_eq!(*g, o.to_bits(), "scalar golden must equal Tensor::matmul");
    }
}

#[test]
fn unrolled_kernel_matches_pinned_golden_at_every_thread_count() {
    check_kernel(par::Kernel::Unrolled, "kernels_unrolled.hex");
}

#[test]
fn per_kernel_goldens_differ_only_in_low_bits() {
    // The two pinned orders are genuinely different (FMA fuses a
    // rounding) but describe the same math: every element agrees to
    // float tolerance.
    let s = read_golden("kernels_scalar.hex");
    let u = read_golden("kernels_unrolled.hex");
    assert_eq!(s.len(), u.len());
    for (a, b) in s.iter().zip(&u) {
        let (x, y) = (f32::from_bits(*a), f32::from_bits(*b));
        assert!(
            (x - y).abs() <= 1e-3 * y.abs().max(1.0),
            "kernels disagree beyond rounding: {x} vs {y}"
        );
    }
}
