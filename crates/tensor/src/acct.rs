//! Deterministic op-cost accounting: FLOPs and bytes actually moved.
//!
//! The static model in `dl-nn::cost` predicts what a layer *should* cost;
//! this module counts what the tensor kernels *actually* do. Profiling
//! code opens a scope with [`begin`], runs tensor work, and collects the
//! measured [`OpCost`] with [`end`] (or uses the [`measure`] wrapper).
//! Every instrumented kernel ([`Tensor::matmul`], the elementwise maps,
//! `im2col`/`col2im`, the reductions) charges its scope as it executes.
//!
//! Accounting is thread-local and **off by default**: when no scope is
//! open, a charge is a single thread-local counter read, so untraced
//! training paths stay at full speed and — since counting never touches a
//! float — bit-identical. Scopes nest; an outer scope includes everything
//! charged inside inner scopes (a per-network profile sees the sum of its
//! per-layer scopes).
//!
//! # Merge rule under threads
//!
//! Scopes are strictly thread-local — a scope opened on one thread never
//! sees charges issued on another, and the `crate::par` worker threads
//! never open scopes of their own. Instead, every parallel kernel follows
//! one rule: **workers return their share of the work counters, and the
//! kernel merges the shares and issues a single [`charge`] on the thread
//! that called it** (the thread whose scope is open). Because the shares
//! partition exactly the work the sequential kernel counts — e.g. each
//! matmul worker reports the non-zero left-operand elements in its row
//! range, and the charge is `2·Σnnz·n` — a parallel kernel charges an
//! [`OpCost`] bit-for-bit equal to its sequential counterpart at any
//! thread count. Integer counters merge by addition ([`OpCost::merge`]),
//! so no ordering or rounding concerns arise the way they would for
//! floats.
//!
//! # Per-precision charging rules
//!
//! The kernel layer in `crate::par` spans three precisions; each has a
//! fixed charging rule so measured tables (and everything priced off
//! them — `DeviceModel` service times, batch-cost tables, residency
//! economics) are reproducible by hand:
//!
//! * **f32, scalar or unrolled** (`DL_KERNEL` dispatch): the unrolled
//!   FMA kernels charge **exactly what the scalar oracle charges** — a
//!   fused multiply-add still counts as 2 flops (the FMA-free
//!   convention above), and bytes are 4 per element. The knob changes
//!   wall-clock and last-bit rounding, never an [`OpCost`]. A matmul
//!   charges `2·nnz·n` flops, `4·(m·k + k·n)` bytes read, `4·m·n`
//!   written, under either kernel at any thread count.
//! * **int8 GEMM** (`par::matmul_q8`): `2·m·k·n + 4·m·n` flops (the
//!   integer multiply-adds plus the per-output affine rescale, counted
//!   by the same 2-flops-per-multiply-add convention; no zero-skip
//!   discount — the integer skip is pure speed), **`m·k + k·n` bytes
//!   read — one byte per packed code**, which is what actually streams
//!   from memory and why a quantized variant's measured bytes-read term
//!   is ~4× smaller than its f32 shadow's, and `4·m·n` bytes written
//!   for the f32 output. Per-row/per-column code-sum precomputation is
//!   excluded, like panel packing in the f32 path.
//! * **dynamic activation quantization** (`dl-compress`'s int8 forward
//!   quantizing each activation batch on the fly): `3·n` flops
//!   (subtract, scale, round per element), `8·n` bytes read (one f32
//!   pass for the min/max range scan, one for the encode), `n` bytes
//!   written (the codes).
//!
//! ```
//! use dl_tensor::{acct, Tensor};
//! let a = Tensor::ones([4, 8]);
//! let b = Tensor::ones([8, 2]);
//! let (_, cost) = acct::measure(|| a.matmul(&b));
//! assert_eq!(cost.flops, 2 * 4 * 8 * 2);
//! ```
//!
//! [`Tensor::matmul`]: crate::Tensor::matmul

use std::cell::{Cell, RefCell};

/// Measured cost of a region of tensor work.
#[must_use = "a measured cost is the whole point of opening an accounting scope"]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCost {
    /// Floating-point operations executed (multiply and add counted
    /// separately, the FMA-free convention of the static model).
    pub flops: u64,
    /// Bytes read from operand buffers.
    pub bytes_read: u64,
    /// Bytes written to result buffers.
    pub bytes_written: u64,
}

impl OpCost {
    /// Component-wise sum.
    pub fn merge(self, other: OpCost) -> OpCost {
        OpCost {
            flops: self.flops + other.flops,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
        }
    }

    /// Total bytes moved in either direction.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

thread_local! {
    /// Number of open scopes — the fast path checks this single cell.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Stack of per-scope accumulators (top = innermost).
    static SCOPES: RefCell<Vec<OpCost>> = const { RefCell::new(Vec::new()) };
}

/// True while at least one accounting scope is open on this thread.
pub fn enabled() -> bool {
    DEPTH.with(|d| d.get()) > 0
}

/// Opens a nested accounting scope on this thread.
pub fn begin() {
    DEPTH.with(|d| d.set(d.get() + 1));
    SCOPES.with(|s| s.borrow_mut().push(OpCost::default()));
}

/// Closes the innermost scope and returns everything charged inside it.
/// The total also flows into the enclosing scope, if any.
///
/// # Panics
/// Panics when no scope is open.
pub fn end() -> OpCost {
    let cost = SCOPES.with(|s| {
        let mut stack = s.borrow_mut();
        let cost = stack.pop().expect("acct::end without a matching begin");
        if let Some(parent) = stack.last_mut() {
            *parent = parent.merge(cost);
        }
        cost
    });
    DEPTH.with(|d| d.set(d.get() - 1));
    cost
}

/// Runs `f` inside a fresh scope and returns its result and measured cost.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, OpCost) {
    begin();
    let out = f();
    (out, end())
}

/// Charges the innermost open scope; a no-op when accounting is off.
/// Called by the instrumented tensor kernels.
#[inline]
pub fn charge(flops: u64, bytes_read: u64, bytes_written: u64) {
    if DEPTH.with(|d| d.get()) == 0 {
        return;
    }
    SCOPES.with(|s| {
        if let Some(top) = s.borrow_mut().last_mut() {
            top.flops += flops;
            top.bytes_read += bytes_read;
            top.bytes_written += bytes_written;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn disabled_by_default_and_charges_are_dropped() {
        assert!(!enabled());
        charge(100, 100, 100);
        let (_, cost) = measure(|| ());
        assert_eq!(cost, OpCost::default());
    }

    #[test]
    fn matmul_cost_is_exact() {
        let a = Tensor::ones([3, 4]);
        let b = Tensor::ones([4, 5]);
        let (_, cost) = measure(|| a.matmul(&b));
        assert_eq!(cost.flops, 2 * 3 * 4 * 5);
        assert_eq!(cost.bytes_read, 4 * (3 * 4 + 4 * 5));
        assert_eq!(cost.bytes_written, 4 * 3 * 5);
    }

    #[test]
    fn scopes_nest_and_roll_up() {
        let x = Tensor::ones([8]);
        begin();
        let (_, inner) = measure(|| x.map(|v| v + 1.0));
        let _ = x.map(|v| v * 2.0);
        let outer = end();
        assert_eq!(inner.flops, 8);
        assert_eq!(outer.flops, 16, "outer scope includes the inner scope");
        assert!(!enabled());
    }

    #[test]
    #[should_panic(expected = "without a matching begin")]
    fn end_without_begin_panics() {
        let _ = end();
    }

    #[test]
    fn elementwise_and_reduction_costs() {
        let a = Tensor::ones([2, 6]);
        let b = Tensor::ones([2, 6]);
        let (_, zip) = measure(|| a.zip(&b, |x, y| x + y));
        assert_eq!(zip.flops, 12);
        assert_eq!(zip.bytes_read, 4 * 24);
        let (_, sum) = measure(|| a.sum());
        assert_eq!(sum.flops, 12);
        assert_eq!(sum.bytes_written, 0);
        let (_, bc) = measure(|| &a + &Tensor::ones([6]));
        assert_eq!(bc.flops, 12);
    }

    #[test]
    fn accounting_never_perturbs_results() {
        let a = Tensor::ones([4, 4]);
        let b = Tensor::ones([4, 4]);
        let plain = a.matmul(&b);
        let (measured, _) = measure(|| a.matmul(&b));
        assert_eq!(plain.data(), measured.data());
    }
}
