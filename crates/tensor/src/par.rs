//! Zero-dependency parallel + cache-blocked compute backend.
//!
//! Every FLOP in the workspace funnels through the scalar kernels in
//! [`Tensor`]; this module provides drop-in parallel and cache-blocked
//! variants built on `std::thread` alone (the build environment has no
//! route to a crates registry, so no rayon/crossbeam). Three design rules
//! govern everything here:
//!
//! 1. **Bit-identical results.** Parallelism splits only over *output*
//!    rows, channels, or column tiles; the per-element accumulation order
//!    (the `k` loop in matmul, the `mid` loop in `sum_axis`, the
//!    `ky/kx/oy/ox` scatter order in `col2im`) is exactly the sequential
//!    kernel's. Identical `f32` operation sequences produce identical
//!    bits, so [`par::matmul`](matmul) == [`Tensor::matmul`] bitwise at
//!    any thread count — the same contract the `NullRecorder` paths keep.
//! 2. **Exact cost accounting.** Worker threads never touch
//!    [`acct`]'s thread-local scopes; each worker returns its share of
//!    the work counters (the `nnz` count for matmul) and the *calling*
//!    thread issues one [`acct::charge`] with the merged totals — the
//!    same totals the sequential kernel charges. See the merge rule in
//!    the [`acct`] module docs.
//! 3. **A persistent pool.** Workers are spawned once (lazily, up to
//!    [`MAX_THREADS`]) and parked on a condvar between kernels, so a
//!    training loop issuing thousands of small launches pays no
//!    per-kernel thread spawn. Panics inside a worker task are caught
//!    and re-raised on the calling thread after every sibling task has
//!    finished, so the scoped borrows below stay sound.
//!
//! Thread count resolves in priority order: a scoped [`with_threads`]
//! override, then [`set_threads`], then the `DL_THREADS` environment
//! variable, then `std::thread::available_parallelism()`.
//!
//! # Kernel dispatch (`DL_KERNEL`)
//!
//! The f32 kernels come in two implementations selected by a knob that
//! mirrors the thread knob exactly: a scoped [`with_kernel`] override,
//! then [`set_kernel`], then the `DL_KERNEL` environment variable
//! (`scalar` or `unrolled`), defaulting to [`Kernel::Scalar`].
//!
//! * [`Kernel::Scalar`] is the reference oracle: plain multiply-then-add
//!   in strict ascending order, bit-identical to the sequential
//!   [`Tensor`] kernels.
//! * [`Kernel::Unrolled`] is the data-level parallel path: width-8
//!   explicitly unrolled inner loops built on [`f32::mul_add`] (one
//!   rounding per multiply-add instead of two), and one-output
//!   reductions ([`sum`], [`dot`], the `mid` loop of [`sum_axis`])
//!   accumulated in **eight lanes folded by a fixed tree**: element `i`
//!   goes to lane `i % 8` in ascending order, and the lanes reduce as
//!   `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`. Because the accumulation
//!   order is fixed per output element and work only ever splits along
//!   independent outputs, unrolled results are bitwise-pinned: identical
//!   at every `DL_THREADS` count and every tile width — they just differ
//!   from the scalar oracle in the last bits (fused roundings), which is
//!   why goldens are pinned *per precision*. Both kernels charge the
//!   identical [`acct`] cost (an FMA counts as 2 flops, the static
//!   model's convention), so cost tables never depend on the knob.
//!
//! [`matmul_q8`] is the third precision: a native int8 GEMM over packed
//! affine codes with exact integer accumulation (see its docs and the
//! per-precision charging rules in [`acct`]). Integer arithmetic is
//! associative, so it has a single implementation — deterministic at any
//! thread count with no kernel dispatch.
//!
//! Cache blocking: [`matmul_blocked`] tiles the output columns and packs
//! each `[k, tile]` panel of `B` into a contiguous scratch buffer per
//! tile, so the inner fused multiply-add loop walks two dense arrays that
//! both fit in cache even when `B`'s rows are long. Blocking wins once
//! `B`'s working set (`4·k·n` bytes) spills the last-level cache; below
//! that the packing copy is pure overhead, which is why the default tile
//! is generous.
//!
//! ```
//! use dl_tensor::{par, Tensor};
//! let a = Tensor::ones([64, 32]);
//! let b = Tensor::ones([32, 48]);
//! let fast = par::with_threads(4, || par::matmul(&a, &b));
//! assert_eq!(fast.data(), a.matmul(&b).data()); // bitwise, not approx
//! ```

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::acct;
use crate::Tensor;
use dl_obs::{fields, Recorder};

/// Hard upper bound on pool workers; `set_threads`/`with_threads` clamp
/// to this.
pub const MAX_THREADS: usize = 64;

/// Default output-column tile width for [`matmul`]: 128 columns × 4 bytes
/// = 512 B per packed panel row, so a `[k, tile]` panel stays L1/L2
/// resident for every `k` in this workspace.
pub const DEFAULT_TILE_COLS: usize = 128;

// ----------------------------------------------------------------------
// Thread-count configuration
// ----------------------------------------------------------------------

/// Global thread count; 0 = not yet resolved.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Scoped override installed by [`with_threads`]; 0 = none.
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// Recorder installed by [`with_recorder`] for kernel spans.
    static KERNEL_REC: Cell<Option<*const (dyn Recorder + 'static)>> = const { Cell::new(None) };
}

/// Number of threads the machine advertises (never less than 1).
#[must_use]
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// `DL_THREADS` when set to a positive integer, else hardware threads.
fn default_threads() -> usize {
    std::env::var("DL_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(hardware_threads)
        .min(MAX_THREADS)
}

/// Sets the process-wide default thread count (clamped to
/// `1..=MAX_THREADS`). Overrides the `DL_THREADS` environment variable.
pub fn set_threads(n: usize) {
    GLOBAL_THREADS.store(n.clamp(1, MAX_THREADS), Ordering::SeqCst);
}

/// The effective thread count for kernels launched from this thread:
/// the innermost [`with_threads`] override if any, else the global
/// setting, resolved on first use from `DL_THREADS` / hardware.
#[must_use]
pub fn threads() -> usize {
    let o = OVERRIDE.with(Cell::get);
    if o > 0 {
        return o;
    }
    let g = GLOBAL_THREADS.load(Ordering::SeqCst);
    if g > 0 {
        return g;
    }
    let d = default_threads();
    // First resolver wins; a concurrent set_threads simply overwrites.
    let _ = GLOBAL_THREADS.compare_exchange(0, d, Ordering::SeqCst, Ordering::SeqCst);
    GLOBAL_THREADS.load(Ordering::SeqCst)
}

/// Runs `f` with the effective thread count forced to `n` (clamped to
/// `1..=MAX_THREADS`) on this thread, restoring the previous override on
/// exit — including on panic.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Reset(usize);
    impl Drop for Reset {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|o| o.replace(n.clamp(1, MAX_THREADS)));
    let _reset = Reset(prev);
    f()
}

// ----------------------------------------------------------------------
// Kernel dispatch
// ----------------------------------------------------------------------

/// Which f32 micro-kernel implementation the backend dispatches to. See
/// the module docs for the exact accumulation-order contract of each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Reference kernels: plain multiply-then-add in strict ascending
    /// order, bit-identical to the sequential [`Tensor`] kernels. The
    /// oracle every other implementation is tested against.
    Scalar,
    /// Width-8 explicitly unrolled kernels built on [`f32::mul_add`]
    /// with the fixed eight-lane tree-reduce for one-output reductions.
    /// Bitwise-pinned across thread counts and tile widths; differs from
    /// [`Kernel::Scalar`] only by the fused roundings.
    Unrolled,
}

/// Global kernel choice; 0 = not yet resolved, else `kernel_code`.
static GLOBAL_KERNEL: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Scoped override installed by [`with_kernel`]; 0 = none.
    static KERNEL_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

fn kernel_code(k: Kernel) -> usize {
    match k {
        Kernel::Scalar => 1,
        Kernel::Unrolled => 2,
    }
}

fn kernel_from_code(code: usize) -> Kernel {
    if code == 2 {
        Kernel::Unrolled
    } else {
        Kernel::Scalar
    }
}

/// `DL_KERNEL` when set to a recognised name, else [`Kernel::Scalar`].
fn default_kernel() -> usize {
    let k = match std::env::var("DL_KERNEL").ok().as_deref().map(str::trim) {
        Some(s) if s.eq_ignore_ascii_case("unrolled") => Kernel::Unrolled,
        _ => Kernel::Scalar,
    };
    kernel_code(k)
}

/// Sets the process-wide default kernel. Overrides the `DL_KERNEL`
/// environment variable.
pub fn set_kernel(k: Kernel) {
    GLOBAL_KERNEL.store(kernel_code(k), Ordering::SeqCst);
}

/// The effective kernel for launches from this thread: the innermost
/// [`with_kernel`] override if any, else the global setting, resolved on
/// first use from `DL_KERNEL` (default [`Kernel::Scalar`]).
#[must_use]
pub fn kernel() -> Kernel {
    let o = KERNEL_OVERRIDE.with(Cell::get);
    if o > 0 {
        return kernel_from_code(o);
    }
    let g = GLOBAL_KERNEL.load(Ordering::SeqCst);
    if g > 0 {
        return kernel_from_code(g);
    }
    let d = default_kernel();
    // First resolver wins; a concurrent set_kernel simply overwrites.
    let _ = GLOBAL_KERNEL.compare_exchange(0, d, Ordering::SeqCst, Ordering::SeqCst);
    kernel_from_code(GLOBAL_KERNEL.load(Ordering::SeqCst))
}

/// Runs `f` with the effective kernel forced to `k` on this thread,
/// restoring the previous override on exit — including on panic. The
/// kernel is resolved on the *launching* thread and handed to pool
/// workers, so the override governs parallel launches too.
pub fn with_kernel<R>(k: Kernel, f: impl FnOnce() -> R) -> R {
    struct Reset(usize);
    impl Drop for Reset {
        fn drop(&mut self) {
            KERNEL_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = KERNEL_OVERRIDE.with(|o| o.replace(kernel_code(k)));
    let _reset = Reset(prev);
    f()
}

// ----------------------------------------------------------------------
// Kernel spans
// ----------------------------------------------------------------------

/// Runs `f` with `rec` installed as this thread's kernel-span recorder:
/// every parallel kernel launched inside emits a `kernel.<name>` span
/// (with `rows`/`cols`/`k`/`threads` fields) onto it, so `exp --profile`
/// can decompose where kernel time goes. The previous recorder is
/// restored on exit. When `rec.enabled()` is false (the `NullRecorder`),
/// kernels skip span emission entirely — no `Fields` are ever built, so
/// the untraced path stays allocation-free.
pub fn with_recorder<R>(rec: &dyn Recorder, f: impl FnOnce() -> R) -> R {
    struct Reset(Option<*const (dyn Recorder + 'static)>);
    impl Drop for Reset {
        fn drop(&mut self) {
            KERNEL_REC.with(|c| c.set(self.0));
        }
    }
    // SAFETY: the pointer is only dereferenced by kernels called inside
    // `f`, and the guard clears it before this frame (and therefore the
    // borrow) ends — including on unwind.
    let ptr: *const (dyn Recorder + 'static) =
        unsafe { std::mem::transmute(rec as *const dyn Recorder) };
    let prev = KERNEL_REC.with(|c| c.replace(Some(ptr)));
    let _reset = Reset(prev);
    f()
}

/// Calls `f` with the installed kernel recorder, if any.
fn with_rec<T>(f: impl FnOnce(&dyn Recorder) -> T) -> Option<T> {
    KERNEL_REC.with(Cell::get).map(|p| {
        // SAFETY: set only by with_recorder, which outlives every kernel
        // call it wraps (see the guard there).
        f(unsafe { &*p })
    })
}

/// Opens a `kernel.<name>` span when a recorder is installed *and*
/// enabled; the geometry fields are only built in that case.
fn kernel_span_start(name: &'static str, m: usize, n: usize, k: usize, t: usize) -> Option<dl_obs::SpanId> {
    with_rec(|r| {
        if r.enabled() {
            Some(r.span_start(
                0,
                name,
                fields! { "rows" => m, "cols" => n, "k" => k, "threads" => t },
            ))
        } else {
            None
        }
    })
    .flatten()
}

/// Closes a span opened by [`kernel_span_start`].
fn kernel_span_end(span: Option<dl_obs::SpanId>, flops: u64) {
    if let Some(s) = span {
        with_rec(move |r| r.span_end(s, fields! { "flops" => flops }));
    }
}

// ----------------------------------------------------------------------
// The persistent worker pool
// ----------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    /// Workers spawned so far (grows on demand up to `MAX_THREADS - 1`).
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        spawned: Mutex::new(0),
    })
}

/// Parks on the queue forever, running jobs as they arrive. Jobs never
/// unwind (the submit path wraps every task in `catch_unwind`), so the
/// queue mutex cannot be poisoned from here.
fn worker_loop(pool: &'static Pool) {
    loop {
        let job = {
            let mut q = pool.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = pool.available.wait(q).expect("pool queue poisoned");
            }
        };
        job();
    }
}

/// Ensures at least `needed` workers exist (capped at `MAX_THREADS - 1`;
/// the calling thread always executes one task itself).
fn ensure_workers(needed: usize) {
    let p = pool();
    let mut spawned = p.spawned.lock().expect("pool spawn count poisoned");
    while *spawned < needed.min(MAX_THREADS - 1) {
        *spawned += 1;
        let name = format!("dl-par-{}", *spawned);
        std::thread::Builder::new()
            .name(name)
            .spawn(move || worker_loop(pool()))
            .expect("failed to spawn pool worker");
    }
}

/// Countdown latch with panic capture: the scoped-execution rendezvous.
struct Latch {
    state: Mutex<(usize, Option<Box<dyn Any + Send>>)>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            state: Mutex::new((count, None)),
            done: Condvar::new(),
        }
    }

    fn count_down(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut s = self.state.lock().expect("latch poisoned");
        s.0 -= 1;
        if s.1.is_none() {
            s.1 = panic; // first panic wins, later ones are dropped
        }
        if s.0 == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) -> Option<Box<dyn Any + Send>> {
        let mut s = self.state.lock().expect("latch poisoned");
        while s.0 > 0 {
            s = self.done.wait(s).expect("latch poisoned");
        }
        s.1.take()
    }
}

/// Runs every task to completion, the last one on the calling thread and
/// the rest on pool workers. Blocks until all tasks have finished — even
/// when one panics — then re-raises the first panic on the caller. This
/// wait-before-return is what makes handing the pool closures that
/// borrow the caller's stack sound.
fn run_tasks(mut tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let Some(own) = tasks.pop() else { return };
    if tasks.is_empty() {
        own();
        return;
    }
    ensure_workers(tasks.len());
    let latch = Arc::new(Latch::new(tasks.len()));
    let p = pool();
    {
        let mut q = p.queue.lock().expect("pool queue poisoned");
        for task in tasks {
            let l = Arc::clone(&latch);
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let r = catch_unwind(AssertUnwindSafe(task));
                l.count_down(r.err());
            });
            // SAFETY: only the lifetime is erased. The job borrows stack
            // data of this frame; run_tasks does not return until the
            // latch confirms every job has finished running, so the
            // borrows outlive every use.
            let job: Job = unsafe { std::mem::transmute(job) };
            q.push_back(job);
        }
    }
    p.available.notify_all();
    let own_result = catch_unwind(AssertUnwindSafe(own));
    let worker_panic = latch.wait();
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
    if let Err(payload) = own_result {
        resume_unwind(payload);
    }
}

/// Splits `0..count` into at most `parts` contiguous, near-equal ranges.
fn ranges(count: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.clamp(1, count.max(1));
    let chunk = count.div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0;
    while lo < count {
        let hi = usize::min(lo + chunk, count);
        out.push((lo, hi));
        lo = hi;
    }
    if out.is_empty() {
        out.push((0, 0));
    }
    out
}

// ----------------------------------------------------------------------
// Matmul
// ----------------------------------------------------------------------

/// The shared row-range GEMM: computes `out[lo..hi, :] += A[lo..hi, :] · B`
/// over a caller-provided slice that holds exactly rows `lo..hi`, with
/// output columns processed `tile` at a time through a packed panel of
/// `B`. For every output element the `k` accumulation runs in ascending
/// index order with the sequential kernel's `a == 0.0` skip, so the
/// result is bit-identical across thread counts and tile widths for
/// either kernel: [`Kernel::Scalar`] reproduces [`Tensor::matmul`]'s
/// triple loop exactly, while [`Kernel::Unrolled`] folds each
/// multiply-add with [`f32::mul_add`] in width-8 chunks — the same
/// per-element order, one rounding per step instead of two. Returns the
/// number of non-zero `A` elements visited (counted once per element,
/// on the first tile), the sequential kernel's `nnz`.
#[allow(clippy::too_many_arguments)]
fn gemm_rows(
    kern: Kernel,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    lo: usize,
    hi: usize,
    k: usize,
    n: usize,
    tile: usize,
) -> u64 {
    let mut nnz = 0u64;
    if n == 0 || lo >= hi {
        return 0;
    }
    let mut panel = vec![0.0f32; k * tile.min(n)];
    let mut j0 = 0usize;
    let mut first_tile = true;
    while j0 < n {
        let tw = tile.min(n - j0);
        // Pack B[:, j0..j0+tw] into a contiguous [k, tw] panel so the
        // inner loop streams it regardless of B's row stride.
        for kk in 0..k {
            panel[kk * tw..kk * tw + tw].copy_from_slice(&b[kk * n + j0..kk * n + j0 + tw]);
        }
        for i in lo..hi {
            let a_row = &a[i * k..(i + 1) * k];
            let local = (i - lo) * n + j0;
            let out_row = &mut out[local..local + tw];
            for (kk, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue; // the sequential kernel's sparse skip
                }
                if first_tile {
                    nnz += 1;
                }
                let b_row = &panel[kk * tw..kk * tw + tw];
                match kern {
                    Kernel::Scalar => {
                        for (o, &bv) in out_row.iter_mut().zip(b_row) {
                            *o += av * bv;
                        }
                    }
                    Kernel::Unrolled => {
                        let mut oc = out_row.chunks_exact_mut(8);
                        let mut bc = b_row.chunks_exact(8);
                        for (o8, b8) in (&mut oc).zip(&mut bc) {
                            o8[0] = av.mul_add(b8[0], o8[0]);
                            o8[1] = av.mul_add(b8[1], o8[1]);
                            o8[2] = av.mul_add(b8[2], o8[2]);
                            o8[3] = av.mul_add(b8[3], o8[3]);
                            o8[4] = av.mul_add(b8[4], o8[4]);
                            o8[5] = av.mul_add(b8[5], o8[5]);
                            o8[6] = av.mul_add(b8[6], o8[6]);
                            o8[7] = av.mul_add(b8[7], o8[7]);
                        }
                        for (o, &bv) in oc.into_remainder().iter_mut().zip(bc.remainder()) {
                            *o = av.mul_add(bv, *o);
                        }
                    }
                }
            }
        }
        first_tile = false;
        j0 += tw;
    }
    nnz
}

/// Validates matmul operands, returning `(m, k, n)`.
fn matmul_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    assert_eq!(a.rank(), 2, "matmul left operand must be a matrix");
    assert_eq!(b.rank(), 2, "matmul right operand must be a matrix");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        k,
        k2,
        "matmul inner dimensions differ: {} vs {}",
        a.shape(),
        b.shape()
    );
    (m, k, n)
}

/// Runs the blocked GEMM over `out` split row-wise across the effective
/// thread count and returns the merged `nnz`. The caller charges acct.
fn gemm_parallel(a: &Tensor, b: &Tensor, out: &mut [f32], k: usize, n: usize, tile: usize) -> u64 {
    // Resolve the kernel on the launching thread: workers must not read
    // their own (unset) thread-local override.
    let kern = kernel();
    let m = out.len() / n.max(1);
    let splits = ranges(m, threads());
    if splits.len() <= 1 {
        return gemm_rows(kern, a.data(), b.data(), out, 0, m, k, n, tile);
    }
    let mut shares = vec![0u64; splits.len()];
    {
        let a_data = a.data();
        let b_data = b.data();
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(splits.len());
        let mut remaining = out;
        for (&(lo, hi), share) in splits.iter().zip(shares.iter_mut()) {
            let (mine, rest) = remaining.split_at_mut((hi - lo) * n);
            remaining = rest;
            tasks.push(Box::new(move || {
                *share = gemm_rows(kern, a_data, b_data, mine, lo, hi, k, n, tile);
            }));
        }
        run_tasks(tasks);
    }
    shares.iter().sum()
}

/// Parallel, cache-blocked matrix multiplication, bit-identical to
/// [`Tensor::matmul`] and charging the identical [`acct`] cost.
///
/// # Panics
/// Panics when operands are not matrices or inner dimensions differ.
#[must_use]
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_blocked(a, b, DEFAULT_TILE_COLS)
}

/// [`matmul`] with an explicit output-column tile width (clamped to at
/// least 1). Exposed so E26 can sweep the blocking factor.
///
/// # Panics
/// Panics when operands are not matrices or inner dimensions differ.
#[must_use]
pub fn matmul_blocked(a: &Tensor, b: &Tensor, tile_cols: usize) -> Tensor {
    let (m, k, n) = matmul_dims(a, b);
    let t = threads().min(m.max(1));
    let span = kernel_span_start("kernel.matmul", m, n, k, t);
    let mut out = vec![0.0f32; m * n];
    let nnz = gemm_parallel(a, b, &mut out, k, n, tile_cols.max(1));
    let flops = 2 * nnz * n as u64;
    // One charge on the calling thread with the workers' merged shares —
    // exactly what the sequential kernel charges.
    acct::charge(flops, 4 * (m * k + k * n) as u64, 4 * (m * n) as u64);
    kernel_span_end(span, flops);
    Tensor::from_vec(out, [m, n]).expect("gemm output length matches by construction")
}

/// Accumulating matmul: `out += a · b`, in place, without allocating the
/// product. Each output element starts from its existing value and
/// accumulates the `k` products in ascending index order (with the
/// sequential zero-skip), so the result is bit-identical at any thread
/// count and equals `&out + &a.matmul(b)` up to the addition order — the
/// accumulated form folds each product directly into `out` instead of
/// summing into a zeroed temporary first.
///
/// Charges `2·nnz·n` FLOPs and counts `out` among the bytes read.
///
/// # Panics
/// Panics when operands are not matrices, inner dimensions differ, or
/// `out` is not `[m, n]`.
pub fn matmul_acc(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let (m, k, n) = matmul_dims(a, b);
    assert_eq!(
        out.dims(),
        &[m, n],
        "matmul_acc output must be [{m}, {n}], got {}",
        out.shape()
    );
    let t = threads().min(m.max(1));
    let span = kernel_span_start("kernel.matmul_acc", m, n, k, t);
    let nnz = gemm_parallel(a, b, out.data_mut(), k, n, DEFAULT_TILE_COLS);
    let flops = 2 * nnz * n as u64;
    acct::charge(flops, 4 * (m * k + k * n + m * n) as u64, 4 * (m * n) as u64);
    kernel_span_end(span, flops);
}

// ----------------------------------------------------------------------
// Native int8 GEMM
// ----------------------------------------------------------------------

/// Native int8 GEMM over packed affine codes: computes the `[m, n]` f32
/// product of two affinely-quantized matrices `Â·B̂` where
/// `Â[i,kk] = a_zero + a_scale·a_codes[i,kk]` (likewise for `B̂`), without
/// ever materialising the dequantized f32 operands. The accumulation is
/// exact: codes multiply in integer arithmetic (`i64`, immune to
/// overflow at any workspace size), and the affine terms expand to
///
/// ```text
/// Σ_k Â·B̂ = k·za·zb  +  za·sb·Σ_k b  +  zb·sa·Σ_k a  +  sa·sb·Σ_k a·b
/// ```
///
/// so each output pays exactly **one affine rescale** (two `f64`
/// multiply-adds over precomputed per-row/per-column code sums) at the
/// end. Integer sums are order-independent, so the result is bitwise
/// identical at every thread count and needs no kernel dispatch.
///
/// Charges the int8 rule documented in [`acct`]: `2·m·k·n + 4·m·n`
/// flops, `m·k + k·n` bytes read (**one byte per packed code** — this is
/// what actually streams from memory, and what makes the int8 serve
/// variant's measured bytes-read term shrink ~4× against f32), and
/// `4·m·n` bytes written. The zero-code multiply skip is a speed
/// optimisation only (`0·b` is exactly 0 in integers) and does not
/// change the charge.
///
/// # Panics
/// Panics when the code slices do not have exactly `m·k` / `k·n`
/// elements.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn matmul_q8(
    a_codes: &[u8],
    a_scale: f32,
    a_zero: f32,
    b_codes: &[u8],
    b_scale: f32,
    b_zero: f32,
    m: usize,
    k: usize,
    n: usize,
) -> Vec<f32> {
    assert_eq!(a_codes.len(), m * k, "a codes must be [m={m}, k={k}]");
    assert_eq!(b_codes.len(), k * n, "b codes must be [k={k}, n={n}]");
    let t = threads().min(m.max(1));
    let span = kernel_span_start("kernel.matmul_q8", m, n, k, t);
    if k == 0 {
        // An empty sum is exactly zero. Guarded up front because the
        // affine parameters of an empty quantized tensor are degenerate
        // (a range scan over no elements yields infinite zero points).
        let flops = 4 * (m * n) as u64;
        acct::charge(flops, 0, 4 * (m * n) as u64);
        kernel_span_end(span, flops);
        return vec![0.0f32; m * n];
    }
    // Per-column code sums for the affine expansion — shared by every
    // row, computed once (excluded from the charge like panel packing).
    let mut col_sums = vec![0i64; n];
    for kk in 0..k {
        let b_row = &b_codes[kk * n..(kk + 1) * n];
        for (s, &c) in col_sums.iter_mut().zip(b_row) {
            *s += i64::from(c);
        }
    }
    let base = f64::from(a_zero) * f64::from(b_zero) * k as f64;
    let za_sb = f64::from(a_zero) * f64::from(b_scale);
    let zb_sa = f64::from(b_zero) * f64::from(a_scale);
    let sa_sb = f64::from(a_scale) * f64::from(b_scale);
    let mut out = vec![0.0f32; m * n];
    {
        let splits = ranges(m, t);
        let col_sums = &col_sums;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(splits.len());
        let mut remaining = out.as_mut_slice();
        for &(lo, hi) in &splits {
            let (mine, rest) = remaining.split_at_mut((hi - lo) * n);
            remaining = rest;
            tasks.push(Box::new(move || {
                let mut acc = vec![0i64; n];
                for i in lo..hi {
                    let a_row = &a_codes[i * k..(i + 1) * k];
                    acc.fill(0);
                    let mut row_sum = 0i64;
                    for (kk, &ac) in a_row.iter().enumerate() {
                        let av = i64::from(ac);
                        row_sum += av;
                        if av == 0 {
                            continue; // 0·b is exactly 0: pure speed, same bits
                        }
                        let b_row = &b_codes[kk * n..(kk + 1) * n];
                        for (s, &bc) in acc.iter_mut().zip(b_row) {
                            *s += av * i64::from(bc);
                        }
                    }
                    let row_term = base + zb_sa * row_sum as f64;
                    let out_row = &mut mine[(i - lo) * n..(i - lo + 1) * n];
                    for ((o, &s), &cs) in out_row.iter_mut().zip(&acc).zip(col_sums) {
                        *o = (row_term + za_sb * cs as f64 + sa_sb * s as f64) as f32;
                    }
                }
            }));
        }
        run_tasks(tasks);
    }
    let flops = 2 * (m * k * n) as u64 + 4 * (m * n) as u64;
    acct::charge(flops, (m * k + k * n) as u64, 4 * (m * n) as u64);
    kernel_span_end(span, flops);
    out
}

// ----------------------------------------------------------------------
// Convolution lowering
// ----------------------------------------------------------------------

/// Parallel [`Tensor::im2col`]: splits the channel loop across threads.
/// Each channel owns a contiguous block of `kh·kw` output rows, so the
/// writes are disjoint; the kernel copies (no arithmetic), so results
/// are trivially identical. Charges the sequential kernel's cost.
///
/// # Panics
/// Panics when input is not rank 3 or the geometry yields no output.
#[must_use]
pub fn im2col(img: &Tensor, kh: usize, kw: usize, stride: usize, pad: usize) -> Tensor {
    assert_eq!(img.rank(), 3, "im2col input must be [C, H, W]");
    let (c, h, w) = (img.dims()[0], img.dims()[1], img.dims()[2]);
    let out_h = (h + 2 * pad).checked_sub(kh).map(|v| v / stride + 1);
    let out_w = (w + 2 * pad).checked_sub(kw).map(|v| v / stride + 1);
    let (out_h, out_w) = match (out_h, out_w) {
        (Some(a), Some(b)) if a > 0 && b > 0 => (a, b),
        _ => panic!("im2col: kernel {kh}x{kw} stride {stride} pad {pad} does not fit input {h}x{w}"),
    };
    let rows = c * kh * kw;
    let cols = out_h * out_w;
    let t = threads().min(c.max(1));
    let span = kernel_span_start("kernel.im2col", rows, cols, kh * kw, t);
    let mut out = vec![0.0f32; rows * cols];
    {
        let data = img.data();
        let splits = ranges(c, t);
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(splits.len());
        let mut remaining = out.as_mut_slice();
        for &(c_lo, c_hi) in &splits {
            let (mine, rest) = remaining.split_at_mut((c_hi - c_lo) * kh * kw * cols);
            remaining = rest;
            tasks.push(Box::new(move || {
                for ch in c_lo..c_hi {
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let row = ((ch - c_lo) * kh + ky) * kw + kx;
                            for oy in 0..out_h {
                                let iy = (oy * stride + ky) as isize - pad as isize;
                                for ox in 0..out_w {
                                    let ix = (ox * stride + kx) as isize - pad as isize;
                                    let col = oy * out_w + ox;
                                    let v = if iy >= 0
                                        && iy < h as isize
                                        && ix >= 0
                                        && ix < w as isize
                                    {
                                        data[(ch * h + iy as usize) * w + ix as usize]
                                    } else {
                                        0.0
                                    };
                                    mine[row * cols + col] = v;
                                }
                            }
                        }
                    }
                }
            }));
        }
        run_tasks(tasks);
    }
    acct::charge(0, 4 * (c * h * w) as u64, 4 * (rows * cols) as u64);
    kernel_span_end(span, 0);
    Tensor::from_vec(out, [rows, cols]).expect("im2col output length matches by construction")
}

/// Parallel [`Tensor::col2im`]: splits the channel loop across threads.
/// The scatter-adds overlap only *within* a channel, and each worker
/// replays its channels' `ky/kx/oy/ox` adds in the sequential order, so
/// the result is bit-identical. Charges the sequential kernel's cost.
///
/// # Panics
/// Panics when `cols` does not have the shape `im2col` would produce.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    cols_mat: &Tensor,
    channels: usize,
    height: usize,
    width: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Tensor {
    let out_h = (height + 2 * pad - kh) / stride + 1;
    let out_w = (width + 2 * pad - kw) / stride + 1;
    assert_eq!(
        cols_mat.dims(),
        &[channels * kh * kw, out_h * out_w],
        "col2im input shape {} does not match geometry",
        cols_mat.shape()
    );
    let cols = out_h * out_w;
    let t = threads().min(channels.max(1));
    let span = kernel_span_start("kernel.col2im", channels * height, width, kh * kw, t);
    let mut out = vec![0.0f32; channels * height * width];
    {
        let data = cols_mat.data();
        let splits = ranges(channels, t);
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(splits.len());
        let mut remaining = out.as_mut_slice();
        for &(c_lo, c_hi) in &splits {
            let (mine, rest) = remaining.split_at_mut((c_hi - c_lo) * height * width);
            remaining = rest;
            tasks.push(Box::new(move || {
                for ch in c_lo..c_hi {
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let row = (ch * kh + ky) * kw + kx;
                            for oy in 0..out_h {
                                let iy = (oy * stride + ky) as isize - pad as isize;
                                for ox in 0..out_w {
                                    let ix = (ox * stride + kx) as isize - pad as isize;
                                    if iy >= 0
                                        && iy < height as isize
                                        && ix >= 0
                                        && ix < width as isize
                                    {
                                        let col = oy * out_w + ox;
                                        mine[((ch - c_lo) * height + iy as usize) * width
                                            + ix as usize] += data[row * cols + col];
                                    }
                                }
                            }
                        }
                    }
                }
            }));
        }
        run_tasks(tasks);
    }
    acct::charge(
        cols_mat.len() as u64,
        4 * cols_mat.len() as u64,
        4 * out.len() as u64,
    );
    kernel_span_end(span, cols_mat.len() as u64);
    Tensor::from_vec(out, [channels, height, width])
        .expect("col2im output length matches by construction")
}

// ----------------------------------------------------------------------
// Elementwise map and order-preserving reduction
// ----------------------------------------------------------------------

/// Parallel [`Tensor::map`]: applies `f` to every element with the flat
/// buffer split contiguously across threads. `f` is applied to each
/// element independently, so any split is bit-identical — and so is the
/// [`Kernel::Unrolled`] width-8 body (eight independent applications per
/// iteration; no accumulation order to pin). Charges the sequential
/// kernel's cost.
#[must_use]
pub fn map(t_in: &Tensor, f: impl Fn(f32) -> f32 + Send + Sync) -> Tensor {
    let kern = kernel();
    let len = t_in.len();
    let t = threads().min(len.max(1));
    let mut out = vec![0.0f32; len];
    {
        let data = t_in.data();
        let splits = ranges(len, t);
        let f = &f;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(splits.len());
        let mut remaining = out.as_mut_slice();
        for &(lo, hi) in &splits {
            let (mine, rest) = remaining.split_at_mut(hi - lo);
            remaining = rest;
            tasks.push(Box::new(move || match kern {
                Kernel::Scalar => {
                    for (o, &x) in mine.iter_mut().zip(&data[lo..hi]) {
                        *o = f(x);
                    }
                }
                Kernel::Unrolled => {
                    let mut oc = mine.chunks_exact_mut(8);
                    let mut xc = data[lo..hi].chunks_exact(8);
                    for (o8, x8) in (&mut oc).zip(&mut xc) {
                        o8[0] = f(x8[0]);
                        o8[1] = f(x8[1]);
                        o8[2] = f(x8[2]);
                        o8[3] = f(x8[3]);
                        o8[4] = f(x8[4]);
                        o8[5] = f(x8[5]);
                        o8[6] = f(x8[6]);
                        o8[7] = f(x8[7]);
                    }
                    for (o, &x) in oc.into_remainder().iter_mut().zip(xc.remainder()) {
                        *o = f(x);
                    }
                }
            }));
        }
        run_tasks(tasks);
    }
    let n = len as u64;
    acct::charge(n, 4 * n, 4 * n);
    Tensor::from_vec(out, t_in.shape().clone()).expect("map output length matches input")
}

/// The fixed lane fold of the unrolled reductions:
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`. Part of the documented
/// accumulation order — changing this changes pinned goldens.
#[inline]
fn tree_reduce8(l: [f32; 8]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// Full-tensor sum with kernel dispatch, charging [`Tensor::sum`]'s
/// cost. [`Kernel::Scalar`] is bit-identical to [`Tensor::sum`]'s serial
/// fold. [`Kernel::Unrolled`] accumulates element `i` into lane `i % 8`
/// in ascending order and folds the lanes with the fixed tree — a
/// single-output reduction, so it stays sequential (the lane tree is the
/// data-level parallelism), and its bits are pinned independent of
/// `DL_THREADS`.
#[must_use]
pub fn sum(t_in: &Tensor) -> f32 {
    let n = t_in.len() as u64;
    acct::charge(n, 4 * n, 0);
    match kernel() {
        Kernel::Scalar => t_in.data().iter().sum(),
        Kernel::Unrolled => {
            let mut lanes = [0.0f32; 8];
            for (i, &x) in t_in.data().iter().enumerate() {
                lanes[i % 8] += x;
            }
            tree_reduce8(lanes)
        }
    }
}

/// Vector dot product with kernel dispatch, charging [`Tensor::dot`]'s
/// cost. [`Kernel::Scalar`] is bit-identical to [`Tensor::dot`].
/// [`Kernel::Unrolled`] fuses each product into lane `i % 8` with
/// [`f32::mul_add`] in ascending order and folds with the fixed tree.
///
/// # Panics
/// Panics when operands are not vectors of equal length.
#[must_use]
pub fn dot(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.rank(), 1, "dot requires vectors");
    assert_eq!(b.rank(), 1, "dot requires vectors");
    assert_eq!(a.len(), b.len(), "dot requires equal lengths");
    let n = a.len() as u64;
    acct::charge(2 * n, 8 * n, 0);
    match kernel() {
        Kernel::Scalar => a
            .data()
            .iter()
            .zip(b.data())
            .map(|(&x, &y)| x * y)
            .sum(),
        Kernel::Unrolled => {
            let mut lanes = [0.0f32; 8];
            for (i, (&x, &y)) in a.data().iter().zip(b.data()).enumerate() {
                lanes[i % 8] = x.mul_add(y, lanes[i % 8]);
            }
            tree_reduce8(lanes)
        }
    }
}

/// Parallel [`Tensor::sum_axis`]: the reduction is split over *output*
/// elements, and each output element accumulates its `mid` addends in a
/// fixed order, so the result is bit-identical at any thread count.
/// Under [`Kernel::Scalar`] that order is the sequential kernel's
/// ascending serial fold (== [`Tensor::sum_axis`] bitwise); under
/// [`Kernel::Unrolled`] addend `m` goes to lane `m % 8` ascending and
/// the lanes fold with the fixed tree. (A full serial-order
/// [`Tensor::sum`] cannot be parallelized without reordering — see
/// [`sum`] for the lane-tree version.) Charges the sequential kernel's
/// cost.
///
/// # Panics
/// Panics when `axis >= rank`.
#[must_use]
pub fn sum_axis(t_in: &Tensor, axis: usize) -> Tensor {
    assert!(
        axis < t_in.rank(),
        "axis {axis} out of range for {}",
        t_in.shape()
    );
    let dims = t_in.dims();
    let outer: usize = dims[..axis].iter().product();
    let mid = dims[axis];
    let inner: usize = dims[axis + 1..].iter().product();
    let out_len = outer * inner;
    let kern = kernel();
    let t = threads().min(out_len.max(1));
    let mut out = vec![0.0f32; out_len];
    {
        let data = t_in.data();
        let splits = ranges(out_len, t);
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(splits.len());
        let mut remaining = out.as_mut_slice();
        for &(lo, hi) in &splits {
            let (mine, rest) = remaining.split_at_mut(hi - lo);
            remaining = rest;
            tasks.push(Box::new(move || {
                for (off, o) in mine.iter_mut().enumerate() {
                    let idx = lo + off;
                    let (ob, i) = (idx / inner.max(1), idx % inner.max(1));
                    *o = match kern {
                        Kernel::Scalar => {
                            let mut acc = 0.0f32;
                            for m in 0..mid {
                                acc += data[(ob * mid + m) * inner + i];
                            }
                            acc
                        }
                        Kernel::Unrolled => {
                            let mut lanes = [0.0f32; 8];
                            for m in 0..mid {
                                lanes[m % 8] += data[(ob * mid + m) * inner + i];
                            }
                            tree_reduce8(lanes)
                        }
                    };
                }
            }));
        }
        run_tasks(tasks);
    }
    acct::charge(
        t_in.len() as u64,
        4 * t_in.len() as u64,
        4 * out_len as u64,
    );
    let mut new_dims = dims.to_vec();
    new_dims.remove(axis);
    Tensor::from_vec(out, new_dims).expect("sum_axis output length matches by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use proptest::prelude::*;

    /// A seeded random matrix with ~25% exact zeros so the sparse skip
    /// (and its nnz accounting) is genuinely exercised.
    fn sparse_random(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut r = init::rng(seed);
        let mut t = init::uniform([rows, cols], -1.0, 1.0, &mut r);
        for (i, v) in t.data_mut().iter_mut().enumerate() {
            if i % 4 == 0 {
                *v = 0.0;
            }
        }
        t
    }

    fn thread_counts() -> Vec<usize> {
        let mut t = vec![1, 2, hardware_threads().max(3)];
        t.dedup();
        t
    }

    #[test]
    fn matmul_bitwise_equals_sequential_across_threads_and_tiles() {
        // The plain-loop version of the proptest below: always executes,
        // even where the proptest harness is unavailable.
        let shapes = [
            (1usize, 7usize, 1usize), // degenerate 1×k·k×1
            (5, 1, 3),
            (4, 4, 4),
            (17, 33, 9),
            (64, 32, 48),
            (0, 4, 4), // empty-dim cases
            (4, 0, 4),
            (4, 4, 0),
            (0, 0, 0),
        ];
        for (si, &(m, k, n)) in shapes.iter().enumerate() {
            let a = sparse_random(m, k, 100 + si as u64);
            let b = sparse_random(k, n, 200 + si as u64);
            let want = a.matmul(&b);
            for &t in &thread_counts() {
                for tile in [1usize, 2, 16, 256] {
                    let got = with_kernel(Kernel::Scalar, || {
                        with_threads(t, || matmul_blocked(&a, &b, tile))
                    });
                    assert_eq!(
                        got.data(),
                        want.data(),
                        "shape ({m},{k},{n}) threads {t} tile {tile} diverged"
                    );
                    assert_eq!(got.dims(), want.dims());
                }
            }
        }
    }

    #[test]
    fn unrolled_matmul_bitwise_stable_across_threads_and_tiles() {
        // The unrolled kernel's bits differ from scalar (fused
        // roundings) but must be pinned across every thread count and
        // tile width — the PR's core determinism contract.
        let shapes = [
            (1usize, 7usize, 1usize),
            (5, 1, 3),
            (17, 33, 9),
            (64, 32, 48),
            (0, 4, 4),
            (4, 0, 4),
            (4, 4, 0),
        ];
        for (si, &(m, k, n)) in shapes.iter().enumerate() {
            let a = sparse_random(m, k, 300 + si as u64);
            let b = sparse_random(k, n, 400 + si as u64);
            let want = with_kernel(Kernel::Unrolled, || {
                with_threads(1, || matmul_blocked(&a, &b, DEFAULT_TILE_COLS))
            });
            for &t in &thread_counts() {
                for tile in [1usize, 2, 16, 256] {
                    let got = with_kernel(Kernel::Unrolled, || {
                        with_threads(t, || matmul_blocked(&a, &b, tile))
                    });
                    assert_eq!(
                        got.data(),
                        want.data(),
                        "unrolled shape ({m},{k},{n}) threads {t} tile {tile} diverged"
                    );
                }
            }
            // And it stays a faithful matmul: tiny elementwise distance
            // from the scalar oracle (pure rounding differences).
            let oracle = a.matmul(&b);
            for (g, w) in want.data().iter().zip(oracle.data()) {
                assert!(
                    (g - w).abs() <= 1e-4 * w.abs().max(1.0),
                    "unrolled drifted beyond rounding: {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn with_kernel_scopes_and_restores() {
        let outer = kernel();
        let inner = with_kernel(Kernel::Unrolled, || {
            assert_eq!(kernel(), Kernel::Unrolled);
            with_kernel(Kernel::Scalar, kernel)
        });
        assert_eq!(inner, Kernel::Scalar);
        assert_eq!(kernel(), outer);
    }

    proptest! {
        #[test]
        fn matmul_bitwise_equals_sequential_proptest(
            m in 0usize..12,
            k in 0usize..12,
            n in 0usize..12,
            tile in 1usize..40,
            seed in 0u64..1000,
        ) {
            let a = sparse_random(m, k, seed);
            let b = sparse_random(k, n, seed.wrapping_add(1));
            let want = a.matmul(&b);
            for &t in &thread_counts() {
                let got =
                    with_kernel(Kernel::Scalar, || with_threads(t, || matmul_blocked(&a, &b, tile)));
                prop_assert_eq!(got.data(), want.data());
            }
        }
    }

    #[test]
    fn matmul_acc_accumulates_in_place() {
        let a = sparse_random(6, 5, 7);
        let b = sparse_random(5, 4, 8);
        // Sequential reference computed by the same per-element order:
        // start from the existing value, add products in ascending k.
        let init_out = sparse_random(6, 4, 9);
        let mut want = init_out.clone();
        for i in 0..6 {
            for kk in 0..5 {
                let av = a.data()[i * 5 + kk];
                if av == 0.0 {
                    continue;
                }
                for j in 0..4 {
                    want.data_mut()[i * 4 + j] += av * b.data()[kk * 4 + j];
                }
            }
        }
        for &t in &thread_counts() {
            let mut out = init_out.clone();
            with_kernel(Kernel::Scalar, || {
                with_threads(t, || matmul_acc(&a, &b, &mut out))
            });
            assert_eq!(out.data(), want.data(), "threads {t} diverged");
        }
        // Unrolled matmul_acc: pinned across thread counts too.
        let want_u = {
            let mut out = init_out.clone();
            with_kernel(Kernel::Unrolled, || {
                with_threads(1, || matmul_acc(&a, &b, &mut out))
            });
            out
        };
        for &t in &thread_counts() {
            let mut out = init_out.clone();
            with_kernel(Kernel::Unrolled, || {
                with_threads(t, || matmul_acc(&a, &b, &mut out))
            });
            assert_eq!(out.data(), want_u.data(), "unrolled threads {t} diverged");
        }
    }

    #[test]
    fn conv_kernels_bitwise_equal_sequential() {
        let mut r = init::rng(42);
        let img = init::uniform([3, 8, 7], -1.0, 1.0, &mut r);
        let want_cols = img.im2col(3, 2, 2, 1);
        let grad = init::uniform(want_cols.shape().clone(), -1.0, 1.0, &mut r);
        let want_img = grad.col2im(3, 8, 7, 3, 2, 2, 1);
        for &t in &thread_counts() {
            let (cols, back) = with_threads(t, || {
                (im2col(&img, 3, 2, 2, 1), col2im(&grad, 3, 8, 7, 3, 2, 2, 1))
            });
            assert_eq!(cols.data(), want_cols.data(), "im2col threads {t}");
            assert_eq!(cols.dims(), want_cols.dims());
            assert_eq!(back.data(), want_img.data(), "col2im threads {t}");
            assert_eq!(back.dims(), want_img.dims());
        }
    }

    #[test]
    fn map_and_sum_axis_bitwise_equal_sequential() {
        let mut r = init::rng(5);
        let x = init::uniform([7, 11], -2.0, 2.0, &mut r);
        let want_map = x.map(|v| v * 1.5 - 0.25);
        let want_rows = x.sum_axis(0);
        let want_cols = x.sum_axis(1);
        for &t in &thread_counts() {
            let (m2, r0, r1) = with_kernel(Kernel::Scalar, || {
                with_threads(t, || {
                    (
                        map(&x, |v| v * 1.5 - 0.25),
                        sum_axis(&x, 0),
                        sum_axis(&x, 1),
                    )
                })
            });
            assert_eq!(m2.data(), want_map.data(), "map threads {t}");
            assert_eq!(r0.data(), want_rows.data(), "sum_axis(0) threads {t}");
            assert_eq!(r1.data(), want_cols.data(), "sum_axis(1) threads {t}");
        }
        // Map is kernel-independent bitwise; unrolled sum_axis is pinned
        // across thread counts.
        let (m_u, r_u) = with_kernel(Kernel::Unrolled, || {
            with_threads(1, || (map(&x, |v| v * 1.5 - 0.25), sum_axis(&x, 0)))
        });
        assert_eq!(m_u.data(), want_map.data(), "map must not depend on kernel");
        for &t in &thread_counts() {
            let r = with_kernel(Kernel::Unrolled, || with_threads(t, || sum_axis(&x, 0)));
            assert_eq!(r.data(), r_u.data(), "unrolled sum_axis threads {t}");
        }
    }

    #[test]
    fn sum_and_dot_scalar_match_tensor_bitwise_and_unrolled_are_pinned() {
        let mut r = init::rng(77);
        let x = init::uniform([203], -2.0, 2.0, &mut r);
        let y = init::uniform([203], -2.0, 2.0, &mut r);
        let s_scalar = with_kernel(Kernel::Scalar, || sum(&x));
        assert_eq!(s_scalar.to_bits(), x.sum().to_bits());
        let d_scalar = with_kernel(Kernel::Scalar, || dot(&x, &y));
        assert_eq!(d_scalar.to_bits(), x.dot(&y).to_bits());
        // Unrolled: deterministic (same bits every call), close to scalar.
        let s_u = with_kernel(Kernel::Unrolled, || sum(&x));
        assert_eq!(s_u.to_bits(), with_kernel(Kernel::Unrolled, || sum(&x)).to_bits());
        assert!((s_u - s_scalar).abs() <= 1e-3 * s_scalar.abs().max(1.0));
        let d_u = with_kernel(Kernel::Unrolled, || dot(&x, &y));
        assert_eq!(
            d_u.to_bits(),
            with_kernel(Kernel::Unrolled, || dot(&x, &y)).to_bits()
        );
        assert!((d_u - d_scalar).abs() <= 1e-3 * d_scalar.abs().max(1.0));
        // Both kernels charge the sequential cost.
        let (_, want_sum) = acct::measure(|| x.sum());
        let (_, want_dot) = acct::measure(|| x.dot(&y));
        for kern in [Kernel::Scalar, Kernel::Unrolled] {
            let (_, cs) = acct::measure(|| with_kernel(kern, || sum(&x)));
            assert_eq!(cs, want_sum);
            let (_, cd) = acct::measure(|| with_kernel(kern, || dot(&x, &y)));
            assert_eq!(cd, want_dot);
        }
    }

    #[test]
    fn parallel_matmul_charges_exactly_the_sequential_cost() {
        let a = sparse_random(33, 17, 11); // odd sizes => uneven splits
        let b = sparse_random(17, 29, 12);
        let (_, seq) = acct::measure(|| a.matmul(&b));
        // Both kernels charge the identical cost — an FMA counts as 2
        // flops, so the cost model never depends on DL_KERNEL.
        for kern in [Kernel::Scalar, Kernel::Unrolled] {
            for &t in &thread_counts() {
                let (_, par_cost) =
                    acct::measure(|| with_kernel(kern, || with_threads(t, || matmul(&a, &b))));
                assert_eq!(par_cost, seq, "{kern:?} threads {t}: OpCost diverged");
            }
        }
        // The other kernels too.
        let (_, seq_map) = acct::measure(|| a.map(|v| v + 1.0));
        let (_, seq_red) = acct::measure(|| a.sum_axis(0));
        for kern in [Kernel::Scalar, Kernel::Unrolled] {
            let (_, par_map) = acct::measure(|| {
                with_kernel(kern, || with_threads(3, || map(&a, |v| v + 1.0)))
            });
            assert_eq!(par_map, seq_map);
            let (_, par_red) =
                acct::measure(|| with_kernel(kern, || with_threads(3, || sum_axis(&a, 0))));
            assert_eq!(par_red, seq_red);
        }
    }

    /// Deterministic codes with some exact zeros, mimicking quantized
    /// activations/weights.
    fn codes(len: usize, salt: u64) -> Vec<u8> {
        (0..len)
            .map(|i| {
                if i % 7 == 0 {
                    0
                } else {
                    ((i as u64).wrapping_mul(2_654_435_761).wrapping_add(salt * 13) % 256) as u8
                }
            })
            .collect()
    }

    #[test]
    fn matmul_q8_matches_dequantized_reference_and_is_thread_stable() {
        for &(m, k, n) in &[(4usize, 6usize, 5usize), (17, 33, 9), (1, 1, 1), (0, 3, 2), (3, 0, 2), (3, 2, 0)] {
            let ac = codes(m * k, 1);
            let bc = codes(k * n, 2);
            let (sa, za, sb, zb) = (0.031f32, -1.7f32, 0.011f32, -0.4f32);
            let want = with_threads(1, || matmul_q8(&ac, sa, za, &bc, sb, zb, m, k, n));
            // Bitwise-stable at every thread count (exact integer sums).
            for &t in &thread_counts() {
                let got = with_threads(t, || matmul_q8(&ac, sa, za, &bc, sb, zb, m, k, n));
                assert_eq!(got, want, "({m},{k},{n}) threads {t} diverged");
            }
            // And kernel-knob independent: one int8 implementation.
            let got_u = with_kernel(Kernel::Unrolled, || {
                matmul_q8(&ac, sa, za, &bc, sb, zb, m, k, n)
            });
            assert_eq!(got_u, want);
            // Close to the dequantize-then-f32 reference (the int8 path
            // is *more* exact: integer accumulation + one f64 rescale).
            let a = Tensor::from_vec(
                ac.iter().map(|&c| za + sa * f32::from(c)).collect(),
                [m, k],
            )
            .unwrap();
            let b = Tensor::from_vec(
                bc.iter().map(|&c| zb + sb * f32::from(c)).collect(),
                [k, n],
            )
            .unwrap();
            let reference = a.matmul(&b);
            for (g, w) in want.iter().zip(reference.data()) {
                assert!(
                    (g - w).abs() <= 1e-3 * w.abs().max(1.0),
                    "q8 ({m},{k},{n}): {g} vs reference {w}"
                );
            }
        }
    }

    #[test]
    fn matmul_q8_charges_the_documented_int8_rule() {
        let (m, k, n) = (9usize, 14usize, 11usize);
        let ac = codes(m * k, 3);
        let bc = codes(k * n, 4);
        let (_, cost) =
            acct::measure(|| with_threads(3, || matmul_q8(&ac, 0.1, 0.0, &bc, 0.2, -1.0, m, k, n)));
        assert_eq!(cost.flops, 2 * (m * k * n) as u64 + 4 * (m * n) as u64);
        assert_eq!(cost.bytes_read, (m * k + k * n) as u64, "one byte per packed code");
        assert_eq!(cost.bytes_written, 4 * (m * n) as u64);
        // Same totals at any thread count (merged-charge parity).
        let (_, c1) =
            acct::measure(|| with_threads(1, || matmul_q8(&ac, 0.1, 0.0, &bc, 0.2, -1.0, m, k, n)));
        assert_eq!(c1, cost);
    }

    #[test]
    fn with_threads_scopes_and_restores() {
        let outer = threads();
        let inner = with_threads(2, || {
            assert_eq!(threads(), 2);
            with_threads(5, threads)
        });
        assert_eq!(inner, 5);
        assert_eq!(threads(), outer);
    }

    #[test]
    fn worker_panic_propagates_after_all_tasks_finish() {
        let a = sparse_random(8, 4, 1);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            with_threads(4, || {
                let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
                let data = a.data();
                for w in 0..4usize {
                    tasks.push(Box::new(move || {
                        assert!(w != 2 || data[0].is_nan(), "deliberate test panic");
                    }));
                }
                run_tasks(tasks);
            });
        }));
        assert!(caught.is_err(), "worker panic must reach the caller");
        // The pool must still be serviceable afterwards.
        let b = sparse_random(4, 6, 2);
        let got = with_kernel(Kernel::Scalar, || with_threads(4, || matmul(&a, &b)));
        assert_eq!(got.data(), a.matmul(&b).data());
    }

    #[test]
    fn kernel_spans_only_emitted_when_recorder_enabled() {
        let a = sparse_random(4, 3, 21);
        let b = sparse_random(3, 5, 22);
        let rec = dl_obs::TimelineRecorder::new();
        let traced = with_kernel(Kernel::Scalar, || with_recorder(&rec, || matmul(&a, &b)));
        assert_eq!(traced.data(), a.matmul(&b).data());
        let events: Vec<_> = rec
            .events()
            .iter()
            .filter(|e| e.name == "kernel.matmul")
            .cloned()
            .collect();
        assert_eq!(events.len(), 2, "one start + one end edge");
        let rows = events[0]
            .fields
            .iter()
            .find(|(k, _)| k == "rows")
            .and_then(|(_, v)| v.as_u64());
        assert_eq!(rows, Some(4));
        // NullRecorder: enabled() is false, so nothing is recorded and no
        // Fields are built.
        let null = dl_obs::NullRecorder::new();
        let quiet = with_kernel(Kernel::Scalar, || with_recorder(&null, || matmul(&a, &b)));
        assert_eq!(quiet.data(), traced.data());
    }
}
