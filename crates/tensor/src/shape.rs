//! Shape and stride bookkeeping for row-major dense tensors.

use std::fmt;

/// The dimensions of a tensor, stored outermost-first (row-major).
///
/// A `Shape` is cheap to clone (it owns a small `Vec<usize>`) and knows how
/// to translate between multi-dimensional indices and flat offsets.
///
/// ```
/// use dl_tensor::Shape;
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.flat_index(&[1, 2, 3]), 23);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from its dimensions.
    ///
    /// A zero-length `dims` denotes a scalar; zero-sized dimensions are
    /// allowed and give an empty tensor.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// Shape of a scalar (rank 0, one element).
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True when the shape holds no elements (some dimension is zero).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The size of dimension `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides: `strides[i]` is the flat distance between two
    /// elements that differ by one in dimension `i`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// # Panics
    /// Panics when the index rank or any coordinate is out of range.
    pub fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut flat = 0;
        let mut stride = 1;
        for axis in (0..self.dims.len()).rev() {
            assert!(
                index[axis] < self.dims[axis],
                "index {} out of bounds for dimension {} of size {}",
                index[axis],
                axis,
                self.dims[axis]
            );
            flat += index[axis] * stride;
            stride *= self.dims[axis];
        }
        flat
    }

    /// Inverse of [`Shape::flat_index`]: the multi-dimensional index of a
    /// flat offset.
    ///
    /// # Panics
    /// Panics when `flat >= len()`.
    pub fn multi_index(&self, flat: usize) -> Vec<usize> {
        assert!(
            flat < self.len().max(1),
            "flat index {flat} out of bounds for shape of {} elements",
            self.len()
        );
        let mut rem = flat;
        let mut index = vec![0; self.dims.len()];
        for (axis, &stride) in self.strides().iter().enumerate() {
            index[axis] = rem / stride;
            rem %= stride;
        }
        index
    }

    /// Computes the shape two operands broadcast to under NumPy rules
    /// (trailing dimensions aligned; a dimension broadcasts when either side
    /// is 1), or `None` when they are incompatible.
    pub fn broadcast(&self, other: &Shape) -> Option<Shape> {
        let rank = self.rank().max(other.rank());
        let mut dims = vec![0; rank];
        for (i, dim) in dims.iter_mut().enumerate() {
            let a = if i < rank - self.rank() {
                1
            } else {
                self.dims[i - (rank - self.rank())]
            };
            let b = if i < rank - other.rank() {
                1
            } else {
                other.dims[i - (rank - other.rank())]
            };
            *dim = match (a, b) {
                (a, b) if a == b => a,
                (1, b) => b,
                (a, 1) => a,
                _ => return None,
            };
        }
        Some(Shape::new(dims))
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::from([2, 3, 4]).len(), 24);
        assert_eq!(Shape::from([5]).len(), 5);
        assert_eq!(Shape::from([3, 0, 2]).len(), 0);
    }

    #[test]
    fn zero_sized_dimension_is_empty() {
        assert!(Shape::from([3, 0]).is_empty());
        assert!(!Shape::from([3, 1]).is_empty());
    }

    #[test]
    fn row_major_strides() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([7]).strides(), vec![1]);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn flat_index_row_major_order() {
        let s = Shape::from([2, 3]);
        assert_eq!(s.flat_index(&[0, 0]), 0);
        assert_eq!(s.flat_index(&[0, 2]), 2);
        assert_eq!(s.flat_index(&[1, 0]), 3);
        assert_eq!(s.flat_index(&[1, 2]), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn flat_index_rejects_out_of_range() {
        Shape::from([2, 3]).flat_index(&[0, 3]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn flat_index_rejects_wrong_rank() {
        Shape::from([2, 3]).flat_index(&[0]);
    }

    #[test]
    fn broadcast_equal_shapes() {
        let a = Shape::from([2, 3]);
        assert_eq!(a.broadcast(&a), Some(a.clone()));
    }

    #[test]
    fn broadcast_scalar_with_anything() {
        let a = Shape::from([4, 5]);
        assert_eq!(Shape::scalar().broadcast(&a), Some(a.clone()));
        assert_eq!(a.broadcast(&Shape::scalar()), Some(a));
    }

    #[test]
    fn broadcast_trailing_alignment() {
        let a = Shape::from([5, 1, 3]);
        let b = Shape::from([4, 3]);
        assert_eq!(a.broadcast(&b), Some(Shape::from([5, 4, 3])));
    }

    #[test]
    fn broadcast_incompatible() {
        assert_eq!(Shape::from([2, 3]).broadcast(&Shape::from([2, 4])), None);
    }

    proptest! {
        /// flat_index and multi_index are inverses for every valid offset.
        #[test]
        fn flat_and_multi_index_roundtrip(
            dims in proptest::collection::vec(1usize..6, 1..4),
            frac in 0.0f64..1.0,
        ) {
            let shape = Shape::new(dims);
            let flat = ((shape.len() as f64 - 1.0) * frac) as usize;
            let multi = shape.multi_index(flat);
            prop_assert_eq!(shape.flat_index(&multi), flat);
        }

        /// Broadcasting is symmetric.
        #[test]
        fn broadcast_symmetric(
            a in proptest::collection::vec(1usize..4, 0..4),
            b in proptest::collection::vec(1usize..4, 0..4),
        ) {
            let sa = Shape::new(a);
            let sb = Shape::new(b);
            prop_assert_eq!(sa.broadcast(&sb), sb.broadcast(&sa));
        }

        /// Broadcast result is at least as large in every aligned dimension.
        #[test]
        fn broadcast_dominates_operands(
            a in proptest::collection::vec(1usize..4, 1..4),
        ) {
            let sa = Shape::new(a.clone());
            let ones = Shape::new(vec![1; a.len()]);
            prop_assert_eq!(sa.broadcast(&ones), Some(sa));
        }
    }
}
