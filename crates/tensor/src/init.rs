//! Seeded random tensor initializers.
//!
//! Every stochastic component in the workspace takes an explicit seed so the
//! experiment harness is fully reproducible (see the determinism convention
//! in `DESIGN.md`).

use crate::{Shape, Tensor};
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform values in `[lo, hi)`.
pub fn uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
    let shape = shape.into();
    let data = (0..shape.len()).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, shape).expect("length matches by construction")
}

/// Standard normal values scaled by `std` around `mean`, via Box-Muller.
pub fn normal(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut StdRng) -> Tensor {
    let shape = shape.into();
    let n = shape.len();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        // Box-Muller transform: two uniforms -> two independent normals.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < n {
            data.push(mean + std * r * theta.sin());
        }
    }
    Tensor::from_vec(data, shape).expect("length matches by construction")
}

/// Xavier/Glorot uniform initialization for a dense weight matrix of shape
/// `[fan_in, fan_out]`: uniform in `±sqrt(6 / (fan_in + fan_out))`.
///
/// Keeps activation variance stable through sigmoid/tanh-style layers.
pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform([fan_in, fan_out], -bound, bound, rng)
}

/// He (Kaiming) normal initialization for ReLU layers: `N(0, sqrt(2/fan_in))`.
pub fn he(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    normal([fan_in, fan_out], 0.0, (2.0 / fan_in as f32).sqrt(), rng)
}

/// A seeded RNG for use with the initializers in this module.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples `k` distinct indices from `0..n` without replacement
/// (partial Fisher-Yates).
///
/// # Panics
/// Panics when `k > n`.
pub fn sample_indices(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct indices from {n}");
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

/// A random permutation of `0..n`.
pub fn permutation(n: usize, rng: &mut StdRng) -> Vec<usize> {
    sample_indices(n, n, rng)
}

/// Draws one index from a discrete distribution given by non-negative
/// `weights` (not necessarily normalized).
///
/// # Panics
/// Panics when the weights are empty or sum to zero.
pub fn weighted_choice(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && !weights.is_empty(),
        "weighted_choice requires positive total weight"
    );
    let mut target = rand::distributions::Uniform::new(0.0, total).sample(rng);
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1 // floating point slack: fall back to the last bucket
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bounds() {
        let mut r = rng(1);
        let t = uniform([1000], -0.5, 0.5, &mut r);
        assert!(t.min() >= -0.5 && t.max() < 0.5);
    }

    #[test]
    fn uniform_is_seed_deterministic() {
        let a = uniform([64], 0.0, 1.0, &mut rng(42));
        let b = uniform([64], 0.0, 1.0, &mut rng(42));
        assert_eq!(a, b);
        let c = uniform([64], 0.0, 1.0, &mut rng(43));
        assert_ne!(a, c);
    }

    #[test]
    fn normal_moments() {
        let mut r = rng(7);
        let t = normal([20_000], 1.0, 2.0, &mut r);
        assert!((t.mean() - 1.0).abs() < 0.05, "mean was {}", t.mean());
        let var = t.map(|x| (x - t.mean()).powi(2)).mean();
        assert!((var - 4.0).abs() < 0.2, "variance was {var}");
    }

    #[test]
    fn xavier_bound() {
        let mut r = rng(3);
        let t = xavier(100, 100, &mut r);
        let bound = (6.0f32 / 200.0).sqrt();
        assert!(t.max() <= bound && t.min() >= -bound);
        assert_eq!(t.dims(), &[100, 100]);
    }

    #[test]
    fn he_scale_shrinks_with_fan_in() {
        let wide = he(1000, 10, &mut rng(5));
        let narrow = he(10, 10, &mut rng(5));
        let std_wide = wide.map(|x| x * x).mean().sqrt();
        let std_narrow = narrow.map(|x| x * x).mean().sqrt();
        assert!(std_wide < std_narrow);
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = rng(9);
        let s = sample_indices(50, 20, &mut r);
        assert_eq!(s.len(), 20);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = rng(11);
        let mut p = permutation(100, &mut r);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_rejects_oversample() {
        sample_indices(3, 4, &mut rng(0));
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut r = rng(13);
        let weights = [0.0, 0.0, 1.0];
        for _ in 0..100 {
            assert_eq!(weighted_choice(&weights, &mut r), 2);
        }
        // roughly proportional sampling
        let weights = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..4000 {
            counts[weighted_choice(&weights, &mut r)] += 1;
        }
        let frac = counts[1] as f64 / 4000.0;
        assert!((frac - 0.75).abs() < 0.05, "frac was {frac}");
    }
}
