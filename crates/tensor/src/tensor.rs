//! The dense `f32` tensor at the heart of the workspace.

use crate::acct;
use crate::shape::Shape;
use std::fmt;
use std::ops::{Add, Div, Index, IndexMut, Mul, Neg, Sub};

/// Errors produced by fallible tensor construction and reshaping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided buffer length does not match the requested shape.
    LengthMismatch {
        /// Number of elements the shape requires.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two shapes that had to agree (exactly or via broadcasting) do not.
    ShapeMismatch {
        /// Left-hand operand shape, rendered.
        left: String,
        /// Right-hand operand shape, rendered.
        right: String,
        /// The operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "buffer of {actual} elements cannot fill a shape of {expected} elements"
            ),
            TensorError::ShapeMismatch { left, right, op } => {
                write!(f, "shape mismatch in {op}: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// An owned, contiguous, row-major `f32` tensor.
///
/// ```
/// use dl_tensor::Tensor;
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.data(), a.data());
/// ```
#[derive(Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(try_from = "RawTensor")]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

/// Wire form of [`Tensor`]; deserialization funnels through a length check
/// so a hand-edited model file cannot violate the shape/data invariant.
#[derive(serde::Deserialize)]
struct RawTensor {
    shape: Shape,
    data: Vec<f32>,
}

impl TryFrom<RawTensor> for Tensor {
    type Error = TensorError;
    fn try_from(raw: RawTensor) -> crate::Result<Self> {
        Tensor::from_vec(raw.data, raw.shape)
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Builds a tensor from a flat row-major buffer.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> crate::Result<Self> {
        let shape = shape.into();
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let data = vec![value; shape.len()];
        Tensor { shape, data }
    }

    /// A tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 0.0)
    }

    /// A tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// A rank-0 tensor holding one value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// The `n`-by-`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros([n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Evenly spaced values `start, start+step, ...` of length `len`,
    /// shaped `[len]`.
    pub fn arange(start: f32, step: f32, len: usize) -> Self {
        let data = (0..len).map(|i| start + step * i as f32).collect();
        Tensor {
            shape: Shape::from([len]),
            data,
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat row-major data buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.shape.flat_index(index)]
    }

    /// Sets the element at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let flat = self.shape.flat_index(index);
        self.data[flat] = value;
    }

    /// The single value of a one-element tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() requires exactly one element, tensor has {}",
            self.data.len()
        );
        self.data[0]
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns the same data under a new shape of equal element count.
    pub fn reshape(&self, shape: impl Into<Shape>) -> crate::Result<Self> {
        Tensor::from_vec(self.data.clone(), shape)
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Panics
    /// Panics on non-matrix input.
    pub fn transpose(&self) -> Self {
        assert_eq!(self.rank(), 2, "transpose requires a matrix, got {}", self.shape);
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        acct::charge(0, 4 * (r * c) as u64, 4 * (r * c) as u64);
        Tensor {
            shape: Shape::from([c, r]),
            data: out,
        }
    }

    /// Extracts row `i` of a matrix as a `[cols]` tensor.
    ///
    /// # Panics
    /// Panics on non-matrix input or out-of-range `i`.
    pub fn row(&self, i: usize) -> Self {
        assert_eq!(self.rank(), 2, "row() requires a matrix, got {}", self.shape);
        let cols = self.dims()[1];
        let start = i * cols;
        Tensor {
            shape: Shape::from([cols]),
            data: self.data[start..start + cols].to_vec(),
        }
    }

    /// Selects rows of a matrix by index, producing `[indices.len(), cols]`.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        assert_eq!(self.rank(), 2, "select_rows requires a matrix");
        let cols = self.dims()[1];
        let mut data = Vec::with_capacity(indices.len() * cols);
        for &i in indices {
            let start = i * cols;
            data.extend_from_slice(&self.data[start..start + cols]);
        }
        let moved = 4 * (indices.len() * cols) as u64;
        acct::charge(0, moved, moved);
        Tensor {
            shape: Shape::from([indices.len(), cols]),
            data,
        }
    }

    /// Stacks rank-1 tensors of equal length into a matrix `[n, len]`.
    ///
    /// # Panics
    /// Panics when `rows` is empty or lengths differ.
    pub fn stack_rows(rows: &[Tensor]) -> Self {
        assert!(!rows.is_empty(), "stack_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "stack_rows requires equal-length rows");
            data.extend_from_slice(&r.data);
        }
        let moved = 4 * (rows.len() * cols) as u64;
        acct::charge(0, moved, moved);
        Tensor {
            shape: Shape::from([rows.len(), cols]),
            data,
        }
    }

    // ------------------------------------------------------------------
    // Elementwise maps
    // ------------------------------------------------------------------

    /// Applies `f` to every element, producing a new tensor.
    ///
    /// Cost accounting charges one FLOP per element — the workspace-wide
    /// convention for opaque elementwise closures (shared with the static
    /// model in `dl-nn::cost`).
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        let n = self.data.len() as u64;
        acct::charge(n, 4 * n, 4 * n);
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        let n = self.data.len() as u64;
        acct::charge(n, 4 * n, 4 * n);
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Panics
    /// Panics on shape mismatch (use arithmetic operators for broadcasting).
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(
            self.shape, other.shape,
            "zip requires identical shapes: {} vs {}",
            self.shape, other.shape
        );
        let n = self.data.len() as u64;
        acct::charge(n, 8 * n, 4 * n);
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise binary operation with NumPy-style broadcasting.
    ///
    /// # Panics
    /// Panics when shapes are not broadcast-compatible.
    pub fn broadcast_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        if self.shape == other.shape {
            return self.zip(other, f);
        }
        let out_shape = self.shape.broadcast(&other.shape).unwrap_or_else(|| {
            panic!(
                "cannot broadcast {} with {}",
                self.shape, other.shape
            )
        });
        let mut out = vec![0.0; out_shape.len()];
        let a_dims = pad_dims(self.shape.dims(), out_shape.rank());
        let b_dims = pad_dims(other.shape.dims(), out_shape.rank());
        let a_strides = broadcast_strides(&a_dims, &self.shape);
        let b_strides = broadcast_strides(&b_dims, &other.shape);
        let out_strides = out_shape.strides();
        for (flat, slot) in out.iter_mut().enumerate() {
            let mut rem = flat;
            let mut a_off = 0;
            let mut b_off = 0;
            for axis in 0..out_shape.rank() {
                let coord = rem / out_strides[axis];
                rem %= out_strides[axis];
                a_off += coord.min(a_dims[axis] - 1) * a_strides[axis];
                b_off += coord.min(b_dims[axis] - 1) * b_strides[axis];
            }
            *slot = f(self.data[a_off], other.data[b_off]);
        }
        acct::charge(
            out.len() as u64,
            4 * (self.data.len() + other.data.len()) as u64,
            4 * out.len() as u64,
        );
        Tensor {
            shape: out_shape,
            data: out,
        }
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        let n = self.data.len() as u64;
        acct::charge(n, 4 * n, 0);
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Flat index of the maximum element (first occurrence).
    ///
    /// # Panics
    /// Panics on an empty tensor.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Sum of squares of all elements.
    pub fn sum_squares(&self) -> f32 {
        let n = self.data.len() as u64;
        acct::charge(2 * n, 4 * n, 0);
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f32 {
        self.sum_squares().sqrt()
    }

    /// Reduces along `axis`, summing, producing a tensor with that axis
    /// removed.
    ///
    /// # Panics
    /// Panics when `axis >= rank`.
    pub fn sum_axis(&self, axis: usize) -> Self {
        assert!(axis < self.rank(), "axis {axis} out of range for {}", self.shape);
        let dims = self.dims();
        let outer: usize = dims[..axis].iter().product();
        let mid = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out = vec![0.0; outer * inner];
        for o in 0..outer {
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                let out_base = o * inner;
                for i in 0..inner {
                    out[out_base + i] += self.data[base + i];
                }
            }
        }
        acct::charge(
            self.data.len() as u64,
            4 * self.data.len() as u64,
            4 * out.len() as u64,
        );
        let mut new_dims = dims.to_vec();
        new_dims.remove(axis);
        Tensor {
            shape: Shape::new(new_dims),
            data: out,
        }
    }

    /// Mean along `axis` (axis removed from the result).
    pub fn mean_axis(&self, axis: usize) -> Self {
        let n = self.dims()[axis] as f32;
        let mut t = self.sum_axis(axis);
        t.map_inplace(|x| x / n);
        t
    }

    /// Per-row argmax of a matrix: returns `[rows]` worth of column indices.
    ///
    /// # Panics
    /// Panics on non-matrix input or zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2, "argmax_rows requires a matrix");
        let (r, c) = (self.dims()[0], self.dims()[1]);
        assert!(c > 0, "argmax_rows requires at least one column");
        (0..r)
            .map(|i| {
                let row = &self.data[i * c..(i + 1) * c];
                let mut best = 0;
                for (j, &x) in row.iter().enumerate() {
                    if x > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix multiplication of two rank-2 tensors.
    ///
    /// Uses an ikj loop order with a pre-zeroed output buffer so the inner
    /// loop is a contiguous fused multiply-add — the classic cache-friendly
    /// ordering for row-major data.
    ///
    /// # Panics
    /// Panics when operands are not matrices or inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Self {
        assert_eq!(self.rank(), 2, "matmul left operand must be a matrix");
        assert_eq!(other.rank(), 2, "matmul right operand must be a matrix");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(
            k, k2,
            "matmul inner dimensions differ: {} vs {}",
            self.shape, other.shape
        );
        let mut out = vec![0.0f32; m * n];
        let mut nnz = 0u64;
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue; // pays off for pruned (sparse) weight matrices
                }
                nnz += 1;
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        // Effective FLOPs: the zero-skip above means a sparse left operand
        // really does less work, and the accounting reflects that.
        acct::charge(
            2 * nnz * n as u64,
            4 * (m * k + k * n) as u64,
            4 * (m * n) as u64,
        );
        Tensor {
            shape: Shape::from([m, n]),
            data: out,
        }
    }

    /// Dot product of two rank-1 tensors of equal length.
    ///
    /// # Panics
    /// Panics when operands are not vectors of equal length.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.rank(), 1, "dot requires vectors");
        assert_eq!(other.rank(), 1, "dot requires vectors");
        assert_eq!(self.len(), other.len(), "dot requires equal lengths");
        let n = self.data.len() as u64;
        acct::charge(2 * n, 8 * n, 0);
        self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).sum()
    }

    /// `im2col` for 2-D convolution.
    ///
    /// Input must be `[channels, height, width]`. Produces a matrix of shape
    /// `[channels * kh * kw, out_h * out_w]` whose columns are the flattened
    /// receptive fields, so convolution becomes one `matmul` — the
    /// "convolution as query processing" layout transformation.
    ///
    /// # Panics
    /// Panics when input is not rank 3 or the kernel/stride/pad combination
    /// yields no output positions.
    pub fn im2col(&self, kh: usize, kw: usize, stride: usize, pad: usize) -> Self {
        assert_eq!(self.rank(), 3, "im2col input must be [C, H, W]");
        let (c, h, w) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let out_h = (h + 2 * pad).checked_sub(kh).map(|v| v / stride + 1);
        let out_w = (w + 2 * pad).checked_sub(kw).map(|v| v / stride + 1);
        let (out_h, out_w) = match (out_h, out_w) {
            (Some(a), Some(b)) if a > 0 && b > 0 => (a, b),
            _ => panic!(
                "im2col: kernel {kh}x{kw} stride {stride} pad {pad} does not fit input {h}x{w}"
            ),
        };
        let rows = c * kh * kw;
        let cols = out_h * out_w;
        let mut out = vec![0.0f32; rows * cols];
        for ch in 0..c {
            for ky in 0..kh {
                for kx in 0..kw {
                    let row = (ch * kh + ky) * kw + kx;
                    for oy in 0..out_h {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        for ox in 0..out_w {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            let col = oy * out_w + ox;
                            let v = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                self.data[(ch * h + iy as usize) * w + ix as usize]
                            } else {
                                0.0
                            };
                            out[row * cols + col] = v;
                        }
                    }
                }
            }
        }
        acct::charge(0, 4 * (c * h * w) as u64, 4 * (rows * cols) as u64);
        Tensor {
            shape: Shape::from([rows, cols]),
            data: out,
        }
    }

    /// Inverse of [`Tensor::im2col`]: scatter-adds the column matrix back
    /// into a `[channels, height, width]` image. Used by the convolution
    /// backward pass.
    ///
    /// # Panics
    /// Panics when `self` does not have the shape `im2col` would produce for
    /// the given geometry.
    #[allow(clippy::too_many_arguments)]
    pub fn col2im(
        &self,
        channels: usize,
        height: usize,
        width: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        let out_h = (height + 2 * pad - kh) / stride + 1;
        let out_w = (width + 2 * pad - kw) / stride + 1;
        assert_eq!(
            self.dims(),
            &[channels * kh * kw, out_h * out_w],
            "col2im input shape {} does not match geometry",
            self.shape
        );
        let cols = out_h * out_w;
        let mut out = vec![0.0f32; channels * height * width];
        for ch in 0..channels {
            for ky in 0..kh {
                for kx in 0..kw {
                    let row = (ch * kh + ky) * kw + kx;
                    for oy in 0..out_h {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        for ox in 0..out_w {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if iy >= 0 && iy < height as isize && ix >= 0 && ix < width as isize {
                                let col = oy * out_w + ox;
                                out[(ch * height + iy as usize) * width + ix as usize] +=
                                    self.data[row * cols + col];
                            }
                        }
                    }
                }
            }
        }
        acct::charge(
            self.data.len() as u64,
            4 * self.data.len() as u64,
            4 * out.len() as u64,
        );
        Tensor {
            shape: Shape::from([channels, height, width]),
            data: out,
        }
    }

    // ------------------------------------------------------------------
    // Comparison helpers
    // ------------------------------------------------------------------

    /// True when shapes match and every element differs by at most `tol`.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

/// Left-pads `dims` with 1s to `rank` (broadcast alignment).
fn pad_dims(dims: &[usize], rank: usize) -> Vec<usize> {
    let mut out = vec![1; rank];
    out[rank - dims.len()..].copy_from_slice(dims);
    out
}

/// Strides for a broadcast operand: 0 where the (padded) dimension is 1.
fn broadcast_strides(padded_dims: &[usize], original: &Shape) -> Vec<usize> {
    let orig_strides = original.strides();
    let offset = padded_dims.len() - original.rank();
    padded_dims
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            if i < offset || d == 1 {
                0
            } else {
                orig_strides[i - offset]
            }
        })
        .collect()
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len() <= 16 {
            write!(f, "Tensor({}, {:?})", self.shape, self.data)
        } else {
            write!(
                f,
                "Tensor({}, [{}, {}, ... {} elements])",
                self.shape,
                self.data[0],
                self.data[1],
                self.len()
            )
        }
    }
}

impl Index<&[usize]> for Tensor {
    type Output = f32;
    fn index(&self, index: &[usize]) -> &f32 {
        &self.data[self.shape.flat_index(index)]
    }
}

impl IndexMut<&[usize]> for Tensor {
    fn index_mut(&mut self, index: &[usize]) -> &mut f32 {
        let flat = self.shape.flat_index(index);
        &mut self.data[flat]
    }
}

macro_rules! binop {
    ($trait:ident, $method:ident, $f:expr) => {
        impl $trait for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.broadcast_with(rhs, $f)
            }
        }
        impl $trait<f32> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: f32) -> Tensor {
                #[allow(clippy::redundant_closure_call)]
                self.map(|x| ($f)(x, rhs))
            }
        }
        impl $trait for Tensor {
            type Output = Tensor;
            fn $method(self, rhs: Tensor) -> Tensor {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Tensor> for Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                (&self).$method(rhs)
            }
        }
        impl $trait<Tensor> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: Tensor) -> Tensor {
                self.$method(&rhs)
            }
        }
        impl $trait<f32> for Tensor {
            type Output = Tensor;
            fn $method(self, rhs: f32) -> Tensor {
                (&self).$method(rhs)
            }
        }
    };
}

binop!(Add, add, |a: f32, b: f32| a + b);
binop!(Sub, sub, |a: f32, b: f32| a - b);
binop!(Mul, mul, |a: f32, b: f32| a * b);
binop!(Div, div, |a: f32, b: f32| a / b);

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|x| -x)
    }
}

impl Neg for Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        -&self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(data: Vec<f32>, dims: &[usize]) -> Tensor {
        Tensor::from_vec(data, dims).expect("valid test tensor")
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        let err = Tensor::from_vec(vec![1.0, 2.0], [3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 3,
                actual: 2
            }
        );
    }

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros([2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones([2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full([3], 2.5).sum(), 7.5);
        assert_eq!(Tensor::scalar(3.0).item(), 3.0);
        assert_eq!(Tensor::eye(3).sum(), 3.0);
        assert_eq!(Tensor::arange(1.0, 0.5, 3).data(), &[1.0, 1.5, 2.0]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut x = Tensor::zeros([2, 3]);
        x.set(&[1, 2], 7.0);
        assert_eq!(x.get(&[1, 2]), 7.0);
        assert_eq!(x[&[1, 2][..]], 7.0);
        x[&[0, 0][..]] = 1.0;
        assert_eq!(x.get(&[0, 0]), 1.0);
    }

    #[test]
    fn elementwise_operators_same_shape() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(vec![4.0, 3.0, 2.0, 1.0], &[2, 2]);
        assert_eq!((&a + &b).data(), &[5.0; 4]);
        assert_eq!((&a - &b).data(), &[-3.0, -1.0, 1.0, 3.0]);
        assert_eq!((&a * &b).data(), &[4.0, 6.0, 6.0, 4.0]);
        assert_eq!((&a / &b).data(), &[0.25, 2.0 / 3.0, 1.5, 4.0]);
        assert_eq!((-&a).data(), &[-1.0, -2.0, -3.0, -4.0]);
    }

    #[test]
    fn scalar_operators() {
        let a = t(vec![1.0, 2.0], &[2]);
        assert_eq!((&a + 1.0).data(), &[2.0, 3.0]);
        assert_eq!((&a * 3.0).data(), &[3.0, 6.0]);
    }

    #[test]
    fn broadcasting_row_vector_over_matrix() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let bias = t(vec![10.0, 20.0, 30.0], &[3]);
        let c = &a + &bias;
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn broadcasting_column_vector_over_matrix() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let col = t(vec![10.0, 100.0], &[2, 1]);
        let c = &a * &col;
        assert_eq!(c.data(), &[10.0, 20.0, 300.0, 400.0]);
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn broadcasting_incompatible_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 4]);
        let _ = &a + &b;
    }

    #[test]
    fn matmul_known_product() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.matmul(&Tensor::eye(2)).data(), a.data());
        assert_eq!(Tensor::eye(2).matmul(&a).data(), a.data());
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_rejects_bad_inner_dims() {
        Tensor::zeros([2, 3]).matmul(&Tensor::zeros([4, 2]));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let at = a.transpose();
        assert_eq!(at.dims(), &[3, 2]);
        assert_eq!(at.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(at.transpose(), a);
    }

    #[test]
    fn dot_product() {
        let a = t(vec![1.0, 2.0, 3.0], &[3]);
        let b = t(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    fn reductions() {
        let a = t(vec![1.0, -2.0, 3.0, -4.0], &[2, 2]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -4.0);
        assert_eq!(a.argmax(), 2);
        assert_eq!(a.sum_squares(), 30.0);
        assert!((a.norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn sum_axis_both_axes() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let rows = a.sum_axis(0);
        assert_eq!(rows.dims(), &[3]);
        assert_eq!(rows.data(), &[5.0, 7.0, 9.0]);
        let cols = a.sum_axis(1);
        assert_eq!(cols.dims(), &[2]);
        assert_eq!(cols.data(), &[6.0, 15.0]);
    }

    #[test]
    fn mean_axis() {
        let a = t(vec![2.0, 4.0, 6.0, 8.0], &[2, 2]);
        assert_eq!(a.mean_axis(0).data(), &[4.0, 6.0]);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let a = t(vec![1.0, 3.0, 3.0, 0.5, 0.2, 0.1], &[2, 3]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn row_and_select_rows() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        assert_eq!(a.row(1).data(), &[3.0, 4.0]);
        let sel = a.select_rows(&[2, 0]);
        assert_eq!(sel.dims(), &[2, 2]);
        assert_eq!(sel.data(), &[5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let r0 = t(vec![1.0, 2.0], &[2]);
        let r1 = t(vec![3.0, 4.0], &[2]);
        let m = Tensor::stack_rows(&[r0, r1]);
        assert_eq!(m.dims(), &[2, 2]);
        assert_eq!(m.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn im2col_identity_kernel_geometry() {
        // 1 channel, 3x3 input, 2x2 kernel, stride 1, no padding -> 2x2 output
        let img = t(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            &[1, 3, 3],
        );
        let cols = img.im2col(2, 2, 1, 0);
        assert_eq!(cols.dims(), &[4, 4]);
        // first column = top-left receptive field [1,2,4,5]
        assert_eq!(
            (0..4).map(|r| cols.get(&[r, 0])).collect::<Vec<_>>(),
            vec![1.0, 2.0, 4.0, 5.0]
        );
        // last column = bottom-right receptive field [5,6,8,9]
        assert_eq!(
            (0..4).map(|r| cols.get(&[r, 3])).collect::<Vec<_>>(),
            vec![5.0, 6.0, 8.0, 9.0]
        );
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let img = t(vec![1.0], &[1, 1, 1]);
        // 3x3 kernel over 1x1 input with pad 1 -> single output position
        let cols = img.im2col(3, 3, 1, 1);
        assert_eq!(cols.dims(), &[9, 1]);
        let center = cols.get(&[4, 0]);
        assert_eq!(center, 1.0);
        assert_eq!(cols.sum(), 1.0); // everything else is zero padding
    }

    #[test]
    fn conv_via_im2col_matches_direct() {
        // Direct 2D convolution vs im2col+matmul on a small case.
        let img = t(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            &[1, 3, 3],
        );
        let kernel = t(vec![1.0, 0.0, 0.0, -1.0], &[1, 4]); // 1 filter of 2x2
        let cols = img.im2col(2, 2, 1, 0);
        let out = kernel.matmul(&cols);
        // direct: out[y][x] = img[y][x] - img[y+1][x+1]
        assert_eq!(out.data(), &[1.0 - 5.0, 2.0 - 6.0, 4.0 - 8.0, 5.0 - 9.0]);
    }

    #[test]
    fn col2im_scatter_adds_overlaps() {
        let img = t(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]);
        let cols = img.im2col(1, 1, 1, 0); // trivially each pixel once
        let back = cols.col2im(1, 2, 2, 1, 1, 1, 0);
        assert!(back.approx_eq(&img, 1e-6));
        // 2x2 kernel over 3x3: center pixel participates in all 4 windows
        let img3 = Tensor::ones([1, 3, 3]);
        let cols3 = img3.im2col(2, 2, 1, 0);
        let back3 = cols3.col2im(1, 3, 3, 2, 2, 1, 0);
        assert_eq!(back3.get(&[0, 1, 1]), 4.0);
        assert_eq!(back3.get(&[0, 0, 0]), 1.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = a.reshape([4]).unwrap();
        assert_eq!(b.data(), a.data());
        assert!(a.reshape([3]).is_err());
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = t(vec![1.0, 2.0], &[2]);
        let b = t(vec![1.0005, 2.0], &[2]);
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-5));
        assert!(!a.approx_eq(&Tensor::zeros([2, 1]), 1.0));
    }

    proptest! {
        /// (A B)^T == B^T A^T
        #[test]
        fn matmul_transpose_identity(
            m in 1usize..5, k in 1usize..5, n in 1usize..5,
            seed in 0u64..1000,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = Tensor::from_vec(
                (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect(), [m, k]).unwrap();
            let b = Tensor::from_vec(
                (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect(), [k, n]).unwrap();
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            prop_assert!(lhs.approx_eq(&rhs, 1e-4));
        }

        /// Matmul distributes over addition: A(B + C) = AB + AC.
        #[test]
        fn matmul_distributive(
            m in 1usize..4, k in 1usize..4, n in 1usize..4,
            seed in 0u64..1000,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut gen = |r: usize, c: usize| Tensor::from_vec(
                (0..r * c).map(|_| rng.gen_range(-1.0..1.0)).collect(), [r, c]).unwrap();
            let a = gen(m, k);
            let b = gen(k, n);
            let c = gen(k, n);
            let lhs = a.matmul(&(&b + &c));
            let rhs = &a.matmul(&b) + &a.matmul(&c);
            prop_assert!(lhs.approx_eq(&rhs, 1e-4));
        }

        /// sum_axis over all axes equals the full sum.
        #[test]
        fn sum_axis_total(
            r in 1usize..5, c in 1usize..5, seed in 0u64..1000,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = Tensor::from_vec(
                (0..r * c).map(|_| rng.gen_range(-1.0..1.0)).collect(), [r, c]).unwrap();
            let total: f32 = a.sum();
            let via_axis = a.sum_axis(0).sum();
            prop_assert!((total - via_axis).abs() < 1e-4);
        }

        /// col2im(im2col(x)) with a 1x1 kernel is the identity.
        #[test]
        fn im2col_unit_kernel_roundtrip(
            c in 1usize..3, h in 1usize..5, w in 1usize..5, seed in 0u64..1000,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let x = Tensor::from_vec(
                (0..c * h * w).map(|_| rng.gen_range(-1.0..1.0)).collect(), [c, h, w]).unwrap();
            let back = x.im2col(1, 1, 1, 0).col2im(c, h, w, 1, 1, 1, 0);
            prop_assert!(back.approx_eq(&x, 1e-6));
        }
    }
}
