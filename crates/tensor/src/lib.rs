//! # dl-tensor
//!
//! A small, dependency-light dense tensor library that underpins the whole
//! `dl-sys` workspace. It provides exactly what a from-scratch deep learning
//! framework needs:
//!
//! * [`Shape`] — dimension bookkeeping with row-major strides,
//! * [`Tensor`] — an owned, contiguous `f32` tensor with elementwise math,
//!   broadcasting, reductions, matrix multiplication and 2-D convolution
//!   helpers (`im2col`),
//! * [`init`] — seeded random initializers (uniform, normal, Xavier/Glorot,
//!   He) so every experiment in the workspace is reproducible,
//! * [`acct`] — thread-local op-cost accounting (FLOPs, bytes moved) charged
//!   by every kernel above, free when no scope is open,
//! * [`par`] — a zero-dependency parallel + cache-blocked compute backend
//!   (persistent `std::thread` worker pool, `DL_THREADS`/[`par::set_threads`]
//!   thread-count control) whose kernels are **bit-identical** to the
//!   sequential ones and charge identical [`acct`] costs. It also hosts the
//!   reduced-precision kernel layer: a `DL_KERNEL={scalar,unrolled}` dispatch
//!   knob ([`par::with_kernel`]) selecting between the scalar reference
//!   oracle and width-8 `mul_add` kernels with a fixed lane tree-reduce, and
//!   [`par::matmul_q8`] — a native int8 GEMM over packed affine codes with
//!   exact integer accumulation and one rescale per output.
//!
//! Design notes (see `DESIGN.md` at the workspace root):
//!
//! * Data is always `f32` and stored contiguously in row-major order. The
//!   tutorial's systems lens is about *data movement and computation*, and a
//!   flat `Vec<f32>` keeps both easy to reason about and fast to iterate.
//! * All shape mismatches are programming errors inside this workspace, so
//!   the arithmetic operators panic with a descriptive message. Fallible
//!   construction (`Tensor::from_vec`) returns [`TensorError`] instead, since
//!   it sits on user-facing input paths.
//! * No interior mutability, no views with lifetimes: the workloads here are
//!   small enough that explicit `clone()`s are cheaper than the complexity
//!   budget of a borrow-splitting view system.

#![warn(missing_docs)]

pub mod acct;
pub mod init;
pub mod par;
mod shape;
mod tensor;

pub use shape::Shape;
pub use tensor::{Tensor, TensorError};

/// Convenience alias used across the workspace for `Result<T, TensorError>`.
pub type Result<T> = std::result::Result<T, TensorError>;
