//! A two-stage Recursive Model Index (Kraska et al.).
//!
//! The learned index views an index as a model of the cumulative
//! distribution function: position ≈ CDF(key) * n. Stage 1 (the root) is a
//! linear model over the whole key space that routes each key to one of
//! `leaf_count` stage-2 linear models, each fit to its share of keys by
//! least squares. Every leaf records its maximum prediction error, so a
//! lookup is: predict, then binary-search the `[pred - err, pred + err]`
//! window — exactness is preserved, and the window size is the
//! hardware-independent cost metric (compared against the B-tree's node
//! visits in E11).

/// A linear model `pos = slope * key + intercept`.
#[derive(Debug, Clone, Copy)]
struct Linear {
    slope: f64,
    intercept: f64,
}

impl Linear {
    fn fit(keys: &[u64], first_pos: usize) -> Linear {
        let n = keys.len() as f64;
        if keys.is_empty() {
            return Linear {
                slope: 0.0,
                intercept: first_pos as f64,
            };
        }
        if keys.len() == 1 || keys[0] == keys[keys.len() - 1] {
            return Linear {
                slope: 0.0,
                intercept: first_pos as f64,
            };
        }
        // least squares over (key, position)
        let mean_x = keys.iter().map(|&k| k as f64).sum::<f64>() / n;
        let mean_y = first_pos as f64 + (n - 1.0) / 2.0;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for (i, &k) in keys.iter().enumerate() {
            let dx = k as f64 - mean_x;
            let dy = (first_pos + i) as f64 - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
        }
        let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
        Linear {
            slope,
            intercept: mean_y - slope * mean_x,
        }
    }

    fn predict(&self, key: u64) -> f64 {
        self.slope * key as f64 + self.intercept
    }
}

/// The two-stage learned index.
#[derive(Debug, Clone)]
pub struct RecursiveModelIndex {
    root: Linear,
    leaves: Vec<Linear>,
    /// Per-leaf maximum absolute prediction error (positions).
    errors: Vec<usize>,
    keys: Vec<u64>,
}

impl RecursiveModelIndex {
    /// Builds the index over sorted, deduplicated keys with `leaf_count`
    /// second-stage models.
    ///
    /// # Panics
    /// Panics when keys are unsorted/duplicated or `leaf_count == 0`.
    pub fn build(keys: Vec<u64>, leaf_count: usize) -> Self {
        assert!(leaf_count > 0, "need at least one leaf model");
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "keys must be sorted and unique"
        );
        let n = keys.len();
        // root routes key -> leaf: fit a linear model from key to leaf id
        let root = if n == 0 {
            Linear {
                slope: 0.0,
                intercept: 0.0,
            }
        } else {
            // scale the position model into leaf space
            let pos_model = Linear::fit(&keys, 0);
            Linear {
                slope: pos_model.slope * leaf_count as f64 / n.max(1) as f64,
                intercept: pos_model.intercept * leaf_count as f64 / n.max(1) as f64,
            }
        };
        // partition keys by routed leaf
        let route = |key: u64| -> usize {
            (root.predict(key).floor().max(0.0) as usize).min(leaf_count - 1)
        };
        let mut starts = vec![usize::MAX; leaf_count];
        let mut counts = vec![0usize; leaf_count];
        for (i, &k) in keys.iter().enumerate() {
            let l = route(k);
            if starts[l] == usize::MAX {
                starts[l] = i;
            }
            counts[l] += 1;
        }
        let mut leaves = Vec::with_capacity(leaf_count);
        let mut errors = Vec::with_capacity(leaf_count);
        for l in 0..leaf_count {
            if counts[l] == 0 {
                leaves.push(Linear {
                    slope: 0.0,
                    intercept: if starts[l] == usize::MAX { 0.0 } else { starts[l] as f64 },
                });
                errors.push(0);
                continue;
            }
            let start = starts[l];
            let slice = &keys[start..start + counts[l]];
            let model = Linear::fit(slice, start);
            // max error over this leaf's keys
            let mut max_err = 0usize;
            for (i, &k) in slice.iter().enumerate() {
                let pred = model.predict(k).round();
                let actual = (start + i) as f64;
                max_err = max_err.max((pred - actual).abs() as usize);
            }
            leaves.push(model);
            errors.push(max_err);
        }
        RecursiveModelIndex {
            root,
            leaves,
            errors,
            keys,
        }
    }

    fn route(&self, key: u64) -> usize {
        (self.root.predict(key).floor().max(0.0) as usize).min(self.leaves.len() - 1)
    }

    /// Point lookup: `(position, search_window)` where `search_window` is
    /// the number of candidate slots binary-searched — the lookup cost.
    pub fn lookup(&self, key: u64) -> (Option<usize>, usize) {
        if self.keys.is_empty() {
            return (None, 0);
        }
        let leaf = self.route(key);
        let pred = self.leaves[leaf].predict(key).round().max(0.0) as usize;
        let err = self.errors[leaf];
        let lo = pred.saturating_sub(err).min(self.keys.len() - 1);
        let hi = (pred + err + 1).min(self.keys.len());
        let lo = lo.min(hi.saturating_sub(1));
        let window = hi - lo;
        match self.keys[lo..hi].binary_search(&key) {
            Ok(i) => (Some(lo + i), window),
            Err(_) => (None, window),
        }
    }

    /// Mean and max search-window size over all indexed keys.
    pub fn error_profile(&self) -> (f64, usize) {
        if self.keys.is_empty() {
            return (0.0, 0);
        }
        let mut total = 0usize;
        let mut max = 0usize;
        for (leaf, &err) in self.errors.iter().enumerate() {
            // weight by the number of keys routed to this leaf
            let count = self
                .keys
                .iter()
                .filter(|&&k| self.route(k) == leaf)
                .count();
            total += count * (2 * err + 1);
            max = max.max(2 * err + 1);
        }
        (total as f64 / self.keys.len() as f64, max)
    }

    /// Index size in bytes: two `f64` per model plus one error per leaf.
    pub fn size_bytes(&self) -> usize {
        16 + self.leaves.len() * (16 + 8)
    }

    /// Number of leaf models.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Number of indexed keys strictly below `key` (the range-scan
    /// primitive). Uses the model prediction to bound the search window,
    /// widening on the rare miss, so results are always exact.
    pub fn partition_point(&self, key: u64) -> usize {
        if self.keys.is_empty() {
            return 0;
        }
        let leaf = self.route(key);
        let pred = self.leaves[leaf].predict(key).round().max(0.0) as usize;
        let err = self.errors[leaf];
        let mut lo = pred.saturating_sub(err).min(self.keys.len());
        let mut hi = (pred + err + 1).min(self.keys.len());
        // widen until the window provably brackets the boundary
        while lo > 0 && self.keys[lo - 1] >= key {
            lo = lo.saturating_sub(err.max(1) * 2);
        }
        while hi < self.keys.len() && self.keys[hi - 1] < key {
            hi = (hi + err.max(1) * 2).min(self.keys.len());
        }
        lo + self.keys[lo..hi].partition_point(|&k| k < key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_data::KeyDistribution;
    use proptest::prelude::*;

    #[test]
    fn finds_every_key_on_uniform_data() {
        let keys = KeyDistribution::Uniform.generate(50_000, 0);
        let rmi = RecursiveModelIndex::build(keys.clone(), 256);
        for (i, &k) in keys.iter().enumerate().step_by(211) {
            let (pos, _) = rmi.lookup(k);
            assert_eq!(pos, Some(i), "key {k}");
        }
    }

    #[test]
    fn misses_absent_keys() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 10).collect();
        let rmi = RecursiveModelIndex::build(keys, 16);
        assert_eq!(rmi.lookup(5).0, None);
        assert_eq!(rmi.lookup(99_999).0, None);
    }

    #[test]
    fn perfect_on_arithmetic_keys() {
        // exactly linear CDF: windows collapse to 1
        let keys: Vec<u64> = (0..10_000).map(|i| i * 7).collect();
        let rmi = RecursiveModelIndex::build(keys.clone(), 64);
        let (mean, max) = rmi.error_profile();
        assert!(mean < 3.5, "mean window {mean}");
        assert!(max <= 5, "max window {max}");
        let (pos, window) = rmi.lookup(keys[5000]);
        assert_eq!(pos, Some(5000));
        assert!(window <= 5);
    }

    #[test]
    fn smaller_than_btree_on_smooth_data() {
        use crate::btree::BTreeIndex;
        let keys = KeyDistribution::Uniform.generate(100_000, 1);
        let rmi = RecursiveModelIndex::build(keys.clone(), 512);
        let bt = BTreeIndex::build_default(keys);
        assert!(
            rmi.size_bytes() < bt.size_bytes(),
            "rmi {} vs btree {}",
            rmi.size_bytes(),
            bt.size_bytes()
        );
    }

    #[test]
    fn clustered_keys_blow_up_windows() {
        let uniform = KeyDistribution::Uniform.generate(50_000, 2);
        let clustered = KeyDistribution::Clustered.generate(50_000, 2);
        let leaf = 128;
        let (mean_u, _) = RecursiveModelIndex::build(uniform, leaf).error_profile();
        let (mean_c, _) = RecursiveModelIndex::build(clustered, leaf).error_profile();
        assert!(
            mean_c > mean_u,
            "clustered ({mean_c}) should be harder than uniform ({mean_u})"
        );
    }

    #[test]
    fn more_leaves_shrink_windows() {
        let keys = KeyDistribution::Lognormal.generate(50_000, 3);
        let (coarse, _) = RecursiveModelIndex::build(keys.clone(), 16).error_profile();
        let (fine, _) = RecursiveModelIndex::build(keys, 1024).error_profile();
        assert!(fine < coarse, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn empty_and_single_key() {
        let rmi = RecursiveModelIndex::build(vec![], 4);
        assert_eq!(rmi.lookup(1).0, None);
        let rmi = RecursiveModelIndex::build(vec![9], 4);
        assert_eq!(rmi.lookup(9).0, Some(0));
        assert_eq!(rmi.lookup(8).0, None);
    }

    proptest! {
        /// RMI lookups agree with binary search on arbitrary key sets.
        #[test]
        fn lookup_always_correct(
            raw in proptest::collection::btree_set(0u64..1_000_000, 1..400),
            probe in 0u64..1_000_000,
            leaves in 1usize..64,
        ) {
            let keys: Vec<u64> = raw.into_iter().collect();
            let rmi = RecursiveModelIndex::build(keys.clone(), leaves);
            let (pos, _) = rmi.lookup(probe);
            match keys.binary_search(&probe) {
                Ok(i) => prop_assert_eq!(pos, Some(i)),
                Err(_) => prop_assert_eq!(pos, None),
            }
        }
    }
}
