//! # dl-learneddb
//!
//! Deep learning *in* data systems (tutorial Part 2): learned replacements
//! for classic database components, implemented next to the classic
//! baselines they are measured against.
//!
//! * [`btree`] — a bulk-loaded in-memory B-tree (the access-method
//!   baseline; counts node visits so lookup cost is measurable without a
//!   wall clock).
//! * [`rmi`] — a two-stage Recursive Model Index ("The Case for Learned
//!   Index Structures"): a root model routes each key to a leaf linear
//!   model; max-error bounds make lookups exact via bounded binary search.
//! * [`bloom`] — a classic Bloom filter and a learned Bloom filter (a tiny
//!   neural classifier plus a backup filter that restores the zero-false-
//!   negative guarantee).
//! * [`cardinality`] — multi-attribute selectivity estimation: per-column
//!   histograms under the independence assumption, uniform sampling, and a
//!   neural estimator trained on example predicates; all scored by q-error.
//! * [`tuner`] — a simulated database with performance knobs and a
//!   Q-learning tuner (the deep-RL knob-tuning line of work, at tabular
//!   scale), against random and grid search.
//! * [`store`] — a SageDB-style facade: one key store whose index and
//!   filter components swap between classic and learned implementations,
//!   with shared cost counters.

#![warn(missing_docs)]

pub mod bloom;
pub mod btree;
pub mod cardinality;
pub mod rmi;
pub mod store;
pub mod tuner;

pub use bloom::{BloomFilter, LearnedBloom};
pub use btree::BTreeIndex;
pub use cardinality::{HistogramEstimator, NeuralEstimator, SamplingEstimator};
pub use rmi::RecursiveModelIndex;
pub use store::{FilterChoice, IndexChoice, LearnedStore, StoreCounters};
pub use tuner::{DbSimulator, KnobConfig, QLearningTuner};
