//! A SageDB-style store: a read-optimized key store whose access-path
//! components are swappable between classic and learned implementations.
//!
//! The tutorial (§3) cites SageDB as "a database system designed around
//! learned components". This module is that idea at crate scale: one
//! [`LearnedStore`] facade over the key set, with the index (B-tree vs.
//! RMI) and the negative-lookup filter (none vs. Bloom vs. learned Bloom)
//! chosen per deployment, plus cost counters so configurations can be
//! compared on the same workload.

use crate::bloom::{BloomFilter, LearnedBloom};
use crate::btree::BTreeIndex;
use crate::rmi::RecursiveModelIndex;
use dl_tensor::init;

/// Index implementation choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexChoice {
    /// Classic bulk-loaded B-tree.
    BTree,
    /// Two-stage recursive model index with the given leaf count.
    Learned {
        /// Second-stage model count.
        leaves: usize,
    },
}

/// Negative-lookup filter choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterChoice {
    /// No filter: every lookup hits the index.
    None,
    /// Classic Bloom filter at the given false-positive rate.
    Bloom {
        /// Target false-positive rate.
        fpr: f64,
    },
    /// Learned Bloom filter (model + backup) at the given FPR target.
    LearnedBloom {
        /// Target false-positive rate.
        fpr: f64,
    },
}

enum IndexImpl {
    BTree(BTreeIndex),
    Rmi(RecursiveModelIndex),
}

enum FilterImpl {
    None,
    Bloom(BloomFilter),
    Learned(Box<LearnedBloom>),
}

/// Per-store operation counters (reset with [`LearnedStore::reset_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Lookups answered negatively by the filter without touching the index.
    pub filtered_out: u64,
    /// Lookups that reached the index.
    pub index_probes: u64,
    /// Total index search work (nodes visited / window slots scanned).
    pub index_work: u64,
}

/// The configurable store.
///
/// ```
/// use dl_learneddb::{FilterChoice, IndexChoice, LearnedStore};
/// let keys: Vec<u64> = (0..1000).map(|i| i * 3).collect();
/// let mut store = LearnedStore::build(
///     keys,
///     IndexChoice::Learned { leaves: 16 },
///     FilterChoice::Bloom { fpr: 0.01 },
///     0,
/// );
/// assert_eq!(store.get(30), Some(10));
/// assert_eq!(store.get(31), None);
/// assert_eq!(store.range(30, 36).len(), 3); // keys 30, 33, 36
/// ```
pub struct LearnedStore {
    index: IndexImpl,
    filter: FilterImpl,
    counters: StoreCounters,
}

impl LearnedStore {
    /// Builds a store over sorted, deduplicated keys with the chosen
    /// components. The learned filter trains against synthetic negatives
    /// drawn with `seed`.
    ///
    /// # Panics
    /// Panics when `keys` is empty or unsorted.
    pub fn build(keys: Vec<u64>, index: IndexChoice, filter: FilterChoice, seed: u64) -> Self {
        assert!(!keys.is_empty(), "store needs at least one key");
        let filter_impl = match filter {
            FilterChoice::None => FilterImpl::None,
            FilterChoice::Bloom { fpr } => {
                let mut f = BloomFilter::with_fpr(keys.len(), fpr);
                for &k in &keys {
                    f.insert(k);
                }
                FilterImpl::Bloom(f)
            }
            FilterChoice::LearnedBloom { fpr } => {
                let mut rng = init::rng(seed);
                let negatives = dl_data::keys::absent_keys(&keys, keys.len().min(20_000), &mut rng);
                FilterImpl::Learned(Box::new(LearnedBloom::build(&keys, &negatives, fpr, seed)))
            }
        };
        let index_impl = match index {
            IndexChoice::BTree => IndexImpl::BTree(BTreeIndex::build_default(keys)),
            IndexChoice::Learned { leaves } => {
                IndexImpl::Rmi(RecursiveModelIndex::build(keys, leaves))
            }
        };
        LearnedStore {
            index: index_impl,
            filter: filter_impl,
            counters: StoreCounters::default(),
        }
    }

    /// Point lookup: position of `key` among the sorted keys, if present.
    /// The zero-false-negative property of both filters guarantees no
    /// present key is ever filtered out.
    pub fn get(&mut self, key: u64) -> Option<usize> {
        let maybe_present = match &mut self.filter {
            FilterImpl::None => true,
            FilterImpl::Bloom(f) => f.contains(key),
            FilterImpl::Learned(f) => f.contains(key),
        };
        if !maybe_present {
            self.counters.filtered_out += 1;
            return None;
        }
        self.counters.index_probes += 1;
        match &self.index {
            IndexImpl::BTree(t) => {
                let (pos, visited) = t.lookup(key);
                self.counters.index_work += visited as u64;
                pos
            }
            IndexImpl::Rmi(r) => {
                let (pos, window) = r.lookup(key);
                self.counters.index_work += window as u64;
                pos
            }
        }
    }

    /// Range scan: positions of keys in `[lo, hi]` (always served by the
    /// sorted key array; filters don't apply).
    pub fn range(&self, lo: u64, hi: u64) -> std::ops::Range<usize> {
        match &self.index {
            IndexImpl::BTree(t) => t.range(lo, hi),
            IndexImpl::Rmi(r) => {
                let start = r.partition_point(lo);
                let end = r.partition_point(hi.saturating_add(1));
                start..end
            }
        }
    }

    /// Memory footprint of the access-path components (index + filter),
    /// excluding the data itself.
    pub fn access_path_bytes(&self) -> usize {
        let idx = match &self.index {
            IndexImpl::BTree(t) => t.size_bytes(),
            IndexImpl::Rmi(r) => r.size_bytes(),
        };
        let flt = match &self.filter {
            FilterImpl::None => 0,
            FilterImpl::Bloom(f) => f.size_bytes(),
            FilterImpl::Learned(f) => f.size_bytes(),
        };
        idx + flt
    }

    /// Operation counters so far.
    pub fn counters(&self) -> StoreCounters {
        self.counters
    }

    /// Clears the operation counters.
    pub fn reset_stats(&mut self) {
        self.counters = StoreCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_data::KeyDistribution;

    fn keys() -> Vec<u64> {
        KeyDistribution::Uniform.generate(20_000, 0)
    }

    fn configs() -> Vec<(IndexChoice, FilterChoice)> {
        vec![
            (IndexChoice::BTree, FilterChoice::None),
            (IndexChoice::BTree, FilterChoice::Bloom { fpr: 0.01 }),
            (IndexChoice::Learned { leaves: 128 }, FilterChoice::None),
            (
                IndexChoice::Learned { leaves: 128 },
                FilterChoice::Bloom { fpr: 0.01 },
            ),
        ]
    }

    #[test]
    fn every_config_answers_identically() {
        let ks = keys();
        let probes: Vec<u64> = ks.iter().step_by(97).copied().collect();
        let mut rng = dl_tensor::init::rng(1);
        let absent = dl_data::keys::absent_keys(&ks, 200, &mut rng);
        let mut stores: Vec<LearnedStore> = configs()
            .into_iter()
            .map(|(i, f)| LearnedStore::build(ks.clone(), i, f, 2))
            .collect();
        for &k in &probes {
            let expected = ks.binary_search(&k).ok();
            for s in &mut stores {
                assert_eq!(s.get(k), expected, "present key {k}");
            }
        }
        for &k in &absent {
            for s in &mut stores {
                assert_eq!(s.get(k), None, "absent key {k}");
            }
        }
    }

    #[test]
    fn filters_save_index_probes_on_negatives() {
        let ks = keys();
        let mut rng = dl_tensor::init::rng(3);
        let absent = dl_data::keys::absent_keys(&ks, 2000, &mut rng);
        let mut unfiltered = LearnedStore::build(ks.clone(), IndexChoice::BTree, FilterChoice::None, 4);
        let mut filtered = LearnedStore::build(
            ks.clone(),
            IndexChoice::BTree,
            FilterChoice::Bloom { fpr: 0.01 },
            4,
        );
        for &k in &absent {
            unfiltered.get(k);
            filtered.get(k);
        }
        assert_eq!(unfiltered.counters().index_probes, 2000);
        assert!(
            filtered.counters().filtered_out > 1900,
            "filter should absorb nearly all negatives: {:?}",
            filtered.counters()
        );
    }

    #[test]
    fn learned_index_uses_less_memory_than_btree_here() {
        let ks = keys();
        let bt = LearnedStore::build(ks.clone(), IndexChoice::BTree, FilterChoice::None, 5);
        let rmi = LearnedStore::build(
            ks,
            IndexChoice::Learned { leaves: 64 },
            FilterChoice::None,
            5,
        );
        assert!(rmi.access_path_bytes() < bt.access_path_bytes());
    }

    #[test]
    fn range_scans_agree_across_indexes() {
        let ks = keys();
        let bt = LearnedStore::build(ks.clone(), IndexChoice::BTree, FilterChoice::None, 6);
        let rmi = LearnedStore::build(
            ks.clone(),
            IndexChoice::Learned { leaves: 64 },
            FilterChoice::None,
            6,
        );
        for (lo, hi) in [(ks[10], ks[500]), (0, ks[0]), (ks[100], ks[100])] {
            assert_eq!(bt.range(lo, hi), rmi.range(lo, hi), "range {lo}..{hi}");
        }
    }

    #[test]
    fn counters_reset() {
        let ks = keys();
        let mut s = LearnedStore::build(ks.clone(), IndexChoice::BTree, FilterChoice::None, 7);
        s.get(ks[0]);
        assert!(s.counters().index_probes > 0);
        s.reset_stats();
        assert_eq!(s.counters(), StoreCounters::default());
    }
}
