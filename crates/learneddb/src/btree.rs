//! A bulk-loaded, read-optimized in-memory B-tree over sorted `u64` keys.
//!
//! This is the classic baseline the learned index is compared against. The
//! tree is built once from sorted keys (the same setting the RMI assumes)
//! and serves point lookups and range scans. Every lookup reports the
//! number of nodes visited, the hardware-independent cost metric used by
//! experiment E11.

/// Default number of keys per node (fanout), sized so a node of `u64`s is
/// about one 512-byte cache-line group.
pub const DEFAULT_FANOUT: usize = 64;

/// An immutable B-tree index mapping each key to its position in the
/// original sorted array.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    /// Internal levels, root last. Each level stores the first key of each
    /// child node at the level below.
    levels: Vec<Vec<u64>>,
    /// The sorted leaf keys.
    keys: Vec<u64>,
    fanout: usize,
}

impl BTreeIndex {
    /// Bulk-loads from sorted, deduplicated keys.
    ///
    /// # Panics
    /// Panics when `keys` is unsorted/duplicated or `fanout < 2`.
    pub fn build(keys: Vec<u64>, fanout: usize) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2");
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "keys must be sorted and unique"
        );
        let mut levels = Vec::new();
        let mut current: Vec<u64> = keys.chunks(fanout).map(|c| c[0]).collect();
        while current.len() > 1 {
            levels.push(current.clone());
            current = current.chunks(fanout).map(|c| c[0]).collect();
        }
        BTreeIndex {
            levels,
            keys,
            fanout,
        }
    }

    /// Bulk-load with [`DEFAULT_FANOUT`].
    pub fn build_default(keys: Vec<u64>) -> Self {
        Self::build(keys, DEFAULT_FANOUT)
    }

    /// Number of indexed keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Point lookup: returns `(position, nodes_visited)`; position is
    /// `None` when the key is absent.
    pub fn lookup(&self, key: u64) -> (Option<usize>, usize) {
        if self.keys.is_empty() {
            return (None, 0);
        }
        let mut visited = 0usize;
        // walk levels from the root down, narrowing the child range
        let mut node = 0usize; // node index at the current level
        for level in self.levels.iter().rev() {
            visited += 1;
            let start = node * self.fanout;
            let end = (start + self.fanout).min(level.len());
            let slice = &level[start..end];
            let child = match slice.binary_search(&key) {
                Ok(i) => i,
                Err(0) => 0,
                Err(i) => i - 1,
            };
            node = start + child;
        }
        // leaf node
        visited += 1;
        let start = node * self.fanout;
        let end = (start + self.fanout).min(self.keys.len());
        match self.keys[start..end].binary_search(&key) {
            Ok(i) => (Some(start + i), visited),
            Err(_) => (None, visited),
        }
    }

    /// Range scan: positions of all keys in `[lo, hi]`.
    pub fn range(&self, lo: u64, hi: u64) -> std::ops::Range<usize> {
        let start = self.keys.partition_point(|&k| k < lo);
        let end = self.keys.partition_point(|&k| k <= hi);
        start..end
    }

    /// Depth of the tree in levels (including the leaf level).
    pub fn depth(&self) -> usize {
        self.levels.len() + 1
    }

    /// Index size in bytes (internal levels only — the leaf keys are the
    /// data itself, charged to neither index).
    pub fn size_bytes(&self) -> usize {
        self.levels.iter().map(|l| l.len() * 8).sum()
    }

    /// The underlying sorted keys.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_keys(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i * 3 + 7).collect()
    }

    #[test]
    fn lookup_finds_every_key() {
        let keys = sample_keys(10_000);
        let t = BTreeIndex::build_default(keys.clone());
        for (i, &k) in keys.iter().enumerate().step_by(97) {
            let (pos, visited) = t.lookup(k);
            assert_eq!(pos, Some(i));
            assert_eq!(visited, t.depth());
        }
    }

    #[test]
    fn lookup_misses_absent_keys() {
        let t = BTreeIndex::build_default(sample_keys(1000));
        let (pos, _) = t.lookup(8); // between 7 and 10
        assert_eq!(pos, None);
        let (pos, _) = t.lookup(0);
        assert_eq!(pos, None);
        let (pos, _) = t.lookup(u64::MAX);
        assert_eq!(pos, None);
    }

    #[test]
    fn depth_grows_logarithmically() {
        let small = BTreeIndex::build(sample_keys(100), 10);
        let large = BTreeIndex::build(sample_keys(10_000), 10);
        assert_eq!(small.depth(), 2);
        assert_eq!(large.depth(), 4);
    }

    #[test]
    fn range_scan_bounds_inclusive() {
        let t = BTreeIndex::build_default(vec![10, 20, 30, 40, 50]);
        assert_eq!(t.range(20, 40), 1..4);
        assert_eq!(t.range(15, 45), 1..4);
        assert_eq!(t.range(0, 5), 0..0);
        assert_eq!(t.range(50, 100), 4..5);
    }

    #[test]
    fn size_counts_internal_levels_only() {
        let t = BTreeIndex::build(sample_keys(1000), 10);
        // 100 level-1 entries + 10 level-2 entries + 1... root collapses
        assert!(t.size_bytes() >= 110 * 8);
        assert!(t.size_bytes() < 1000 * 8);
    }

    #[test]
    fn single_key_tree() {
        let t = BTreeIndex::build_default(vec![42]);
        assert_eq!(t.lookup(42).0, Some(0));
        assert_eq!(t.lookup(41).0, None);
        assert_eq!(t.depth(), 1);
    }

    #[test]
    #[should_panic(expected = "sorted and unique")]
    fn rejects_unsorted_keys() {
        BTreeIndex::build_default(vec![3, 1, 2]);
    }

    proptest! {
        /// Every present key is found at its exact position; every absent
        /// key misses.
        #[test]
        fn lookup_correctness(
            raw in proptest::collection::btree_set(0u64..100_000, 1..500),
            probe in 0u64..100_000,
        ) {
            let keys: Vec<u64> = raw.into_iter().collect();
            let t = BTreeIndex::build(keys.clone(), 8);
            let (pos, _) = t.lookup(probe);
            match keys.binary_search(&probe) {
                Ok(i) => prop_assert_eq!(pos, Some(i)),
                Err(_) => prop_assert_eq!(pos, None),
            }
        }

        /// Range scans agree with a naive filter.
        #[test]
        fn range_correctness(
            raw in proptest::collection::btree_set(0u64..10_000, 1..300),
            lo in 0u64..10_000,
            span in 0u64..2_000,
        ) {
            let keys: Vec<u64> = raw.into_iter().collect();
            let t = BTreeIndex::build(keys.clone(), 8);
            let hi = lo.saturating_add(span);
            let r = t.range(lo, hi);
            let expected = keys.iter().filter(|&&k| k >= lo && k <= hi).count();
            prop_assert_eq!(r.len(), expected);
        }
    }
}
