//! Reinforcement-learning knob tuning over a simulated database (E14).
//!
//! The tutorial's Part 2 covers deep-RL systems (QTune, CDBTune) that tune
//! knobs like memory allocation and data layout toward higher throughput.
//! This module reproduces the loop at laptop scale: a deterministic
//! database cost model with three interacting knobs, an agent that can
//! only *observe throughput* (no access to the model's internals), and a
//! tabular Q-learning tuner compared against random and grid search under
//! the same evaluation budget.

use dl_tensor::init;
use rand::rngs::StdRng;
use rand::Rng;

/// A knob configuration: discrete levels for three knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KnobConfig {
    /// Buffer-pool size level (0..levels).
    pub buffer_pool: usize,
    /// Page size level.
    pub page_size: usize,
    /// Compaction aggressiveness level.
    pub compaction: usize,
}

/// A deterministic simulated database whose throughput responds to knobs
/// with interactions (the page-size sweet spot depends on the workload's
/// scan fraction; compaction helps writes but steals buffer hits).
#[derive(Debug, Clone)]
pub struct DbSimulator {
    /// Number of discrete levels per knob.
    pub levels: usize,
    /// Fraction of the workload that is range scans, in `[0,1]`.
    pub scan_fraction: f64,
    /// Fraction of the workload that is writes, in `[0,1]`.
    pub write_fraction: f64,
}

impl DbSimulator {
    /// A simulator with `levels` settings per knob and workload mix.
    ///
    /// # Panics
    /// Panics when `levels < 2` or fractions leave `[0,1]`.
    pub fn new(levels: usize, scan_fraction: f64, write_fraction: f64) -> Self {
        assert!(levels >= 2, "need at least two levels per knob");
        assert!((0.0..=1.0).contains(&scan_fraction) && (0.0..=1.0).contains(&write_fraction));
        DbSimulator {
            levels,
            scan_fraction,
            write_fraction,
        }
    }

    /// Simulated throughput (ops/s) at a configuration. Deterministic.
    ///
    /// # Panics
    /// Panics when a knob exceeds `levels`.
    pub fn throughput(&self, config: &KnobConfig) -> f64 {
        assert!(
            config.buffer_pool < self.levels
                && config.page_size < self.levels
                && config.compaction < self.levels,
            "knob level out of range"
        );
        let norm = |v: usize| v as f64 / (self.levels - 1) as f64;
        let bp = norm(config.buffer_pool);
        let ps = norm(config.page_size);
        let comp = norm(config.compaction);
        // buffer pool: diminishing returns, slightly eroded by compaction
        let hit_rate = 1.0 - (-3.0 * bp).exp();
        let cache_term = 0.4 + 0.6 * hit_rate * (1.0 - 0.2 * comp);
        // page size: scans want big pages, point reads want small ones
        let scan_match = 1.0 - (ps - self.scan_fraction).powi(2);
        // compaction: writes benefit, reads pay a background cost
        let write_term =
            1.0 + self.write_fraction * (0.8 * comp) - (1.0 - self.write_fraction) * 0.3 * comp;
        10_000.0 * cache_term * scan_match * write_term
    }

    /// The best configuration by exhaustive search (ground truth for
    /// evaluating tuners; a real system could never afford this).
    pub fn optimum(&self) -> (KnobConfig, f64) {
        let mut best = (
            KnobConfig {
                buffer_pool: 0,
                page_size: 0,
                compaction: 0,
            },
            f64::NEG_INFINITY,
        );
        for b in 0..self.levels {
            for p in 0..self.levels {
                for c in 0..self.levels {
                    let k = KnobConfig {
                        buffer_pool: b,
                        page_size: p,
                        compaction: c,
                    };
                    let t = self.throughput(&k);
                    if t > best.1 {
                        best = (k, t);
                    }
                }
            }
        }
        best
    }
}

/// Tabular Q-learning over the knob lattice. State = current config,
/// actions = move one knob one level up or down (6 actions).
#[derive(Debug)]
pub struct QLearningTuner {
    q: std::collections::HashMap<(KnobConfig, usize), f64>,
    levels: usize,
    /// Learning rate.
    pub alpha: f64,
    /// Discount factor.
    pub gamma: f64,
    /// Exploration rate.
    pub epsilon: f64,
}

const ACTIONS: usize = 6;

impl QLearningTuner {
    /// A fresh tuner for a `levels`-per-knob lattice.
    pub fn new(levels: usize) -> Self {
        QLearningTuner {
            q: std::collections::HashMap::new(),
            levels,
            alpha: 0.3,
            gamma: 0.9,
            epsilon: 0.2,
        }
    }

    fn apply(&self, config: &KnobConfig, action: usize) -> KnobConfig {
        let mut c = *config;
        let (knob, dir) = (action / 2, action % 2);
        let field = match knob {
            0 => &mut c.buffer_pool,
            1 => &mut c.page_size,
            _ => &mut c.compaction,
        };
        if dir == 0 {
            *field = (*field + 1).min(self.levels - 1);
        } else {
            *field = field.saturating_sub(1);
        }
        c
    }

    /// Runs `episodes` tuning episodes of `steps` each; every simulator
    /// evaluation counts against the budget. Returns the best
    /// configuration found and the number of evaluations used.
    pub fn tune(
        &mut self,
        db: &DbSimulator,
        episodes: usize,
        steps: usize,
        rng: &mut StdRng,
    ) -> (KnobConfig, f64, usize) {
        let mut best = (
            KnobConfig {
                buffer_pool: 0,
                page_size: 0,
                compaction: 0,
            },
            f64::NEG_INFINITY,
        );
        let mut evals = 0usize;
        for _ in 0..episodes {
            let mut state = KnobConfig {
                buffer_pool: rng.gen_range(0..self.levels),
                page_size: rng.gen_range(0..self.levels),
                compaction: rng.gen_range(0..self.levels),
            };
            let mut current = db.throughput(&state);
            evals += 1;
            if current > best.1 {
                best = (state, current);
            }
            for _ in 0..steps {
                let action = if rng.gen::<f64>() < self.epsilon {
                    rng.gen_range(0..ACTIONS)
                } else {
                    (0..ACTIONS)
                        .max_by(|&a, &b| {
                            let qa = self.q.get(&(state, a)).copied().unwrap_or(0.0);
                            let qb = self.q.get(&(state, b)).copied().unwrap_or(0.0);
                            qa.total_cmp(&qb)
                        })
                        .expect("six actions")
                };
                let next = self.apply(&state, action);
                let throughput = db.throughput(&next);
                evals += 1;
                // reward: relative improvement (QTune-style delta reward)
                let reward = (throughput - current) / 10_000.0;
                let max_next = (0..ACTIONS)
                    .map(|a| self.q.get(&(next, a)).copied().unwrap_or(0.0))
                    .fold(f64::NEG_INFINITY, f64::max);
                let entry = self.q.entry((state, action)).or_insert(0.0);
                *entry += self.alpha * (reward + self.gamma * max_next - *entry);
                state = next;
                current = throughput;
                if throughput > best.1 {
                    best = (state, throughput);
                }
            }
        }
        (best.0, best.1, evals)
    }
}

/// Random-search baseline under the same evaluation budget.
pub fn random_search(db: &DbSimulator, budget: usize, rng: &mut StdRng) -> (KnobConfig, f64) {
    let mut best = (
        KnobConfig {
            buffer_pool: 0,
            page_size: 0,
            compaction: 0,
        },
        f64::NEG_INFINITY,
    );
    for _ in 0..budget {
        let k = KnobConfig {
            buffer_pool: rng.gen_range(0..db.levels),
            page_size: rng.gen_range(0..db.levels),
            compaction: rng.gen_range(0..db.levels),
        };
        let t = db.throughput(&k);
        if t > best.1 {
            best = (k, t);
        }
    }
    best
}

/// Coarse grid-search baseline: evaluates an evenly-spaced sub-lattice
/// that fits the budget.
pub fn grid_search(db: &DbSimulator, budget: usize) -> (KnobConfig, f64, usize) {
    let per_axis = ((budget as f64).cbrt().floor() as usize).clamp(1, db.levels);
    let pick = |i: usize| i * (db.levels - 1) / per_axis.max(1).saturating_sub(1).max(1);
    let mut best = (
        KnobConfig {
            buffer_pool: 0,
            page_size: 0,
            compaction: 0,
        },
        f64::NEG_INFINITY,
    );
    let mut evals = 0;
    for b in 0..per_axis {
        for p in 0..per_axis {
            for c in 0..per_axis {
                let k = KnobConfig {
                    buffer_pool: pick(b).min(db.levels - 1),
                    page_size: pick(p).min(db.levels - 1),
                    compaction: pick(c).min(db.levels - 1),
                };
                let t = db.throughput(&k);
                evals += 1;
                if t > best.1 {
                    best = (k, t);
                }
            }
        }
    }
    (best.0, best.1, evals)
}

/// Seeded RNG re-export for tuner experiments.
pub fn tuner_rng(seed: u64) -> StdRng {
    init::rng(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> DbSimulator {
        DbSimulator::new(8, 0.7, 0.2)
    }

    #[test]
    fn throughput_deterministic_and_positive() {
        let d = db();
        let k = KnobConfig {
            buffer_pool: 3,
            page_size: 5,
            compaction: 1,
        };
        assert_eq!(d.throughput(&k), d.throughput(&k));
        assert!(d.throughput(&k) > 0.0);
    }

    #[test]
    fn buffer_pool_has_diminishing_returns() {
        let d = db();
        let t = |b| {
            d.throughput(&KnobConfig {
                buffer_pool: b,
                page_size: 5,
                compaction: 0,
            })
        };
        let g1 = t(2) - t(0);
        let g2 = t(7) - t(5);
        assert!(g1 > g2, "early gains {g1} should exceed late gains {g2}");
    }

    #[test]
    fn page_size_sweet_spot_follows_workload()
    {
        let scan_heavy = DbSimulator::new(8, 0.9, 0.1);
        let point_heavy = DbSimulator::new(8, 0.1, 0.1);
        let best_ps = |d: &DbSimulator| d.optimum().0.page_size;
        assert!(best_ps(&scan_heavy) > best_ps(&point_heavy));
    }

    #[test]
    fn qlearning_finds_near_optimal_config() {
        let d = db();
        let (_, opt) = d.optimum();
        let mut tuner = QLearningTuner::new(8);
        let mut rng = tuner_rng(0);
        let (_, found, evals) = tuner.tune(&d, 30, 25, &mut rng);
        assert!(
            found > opt * 0.95,
            "q-learning found {found} vs optimum {opt}"
        );
        assert!(evals <= 30 * 26);
    }

    #[test]
    fn qlearning_beats_random_at_same_budget() {
        // average over seeds to keep the comparison fair
        let d = db();
        let mut q_total = 0.0;
        let mut r_total = 0.0;
        for seed in 0..5 {
            let mut tuner = QLearningTuner::new(8);
            let mut rng = tuner_rng(seed);
            let (_, q_best, evals) = tuner.tune(&d, 20, 20, &mut rng);
            let mut rng = tuner_rng(seed + 100);
            let (_, r_best) = random_search(&d, evals, &mut rng);
            q_total += q_best;
            r_total += r_best;
        }
        // random over a smooth 8^3 lattice is strong; RL should at least
        // match it while *also* learning a transferable policy
        assert!(
            q_total >= r_total * 0.98,
            "q-learning {q_total} should be competitive with random {r_total}"
        );
    }

    #[test]
    fn grid_search_respects_budget() {
        let d = db();
        let (_, best, evals) = grid_search(&d, 27);
        assert!(evals <= 27);
        assert!(best > 0.0);
    }

    #[test]
    #[should_panic(expected = "knob level out of range")]
    fn rejects_out_of_range_knob() {
        db().throughput(&KnobConfig {
            buffer_pool: 99,
            page_size: 0,
            compaction: 0,
        });
    }
}
