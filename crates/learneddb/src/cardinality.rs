//! Multi-attribute selectivity estimation (E13).
//!
//! Three estimators for conjunctive range predicates over a numeric table:
//!
//! * [`HistogramEstimator`] — per-column equi-width histograms combined
//!   under the attribute-value-independence assumption: the classic
//!   optimizer approach, and the one correlated data breaks.
//! * [`SamplingEstimator`] — evaluate the predicate on a uniform sample.
//! * [`NeuralEstimator`] — a small MLP trained on (predicate → observed
//!   selectivity) examples, the tutorial's learned-component approach.
//!
//! All three are scored with **q-error**, the standard metric:
//! `max(est, truth) / min(est, truth)` with both floored at one row.

use dl_data::{CorrelatedTable, RangePredicate};
use dl_nn::{Loss, Network, Optimizer};
use dl_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::Rng;

/// q-error of an estimate against the truth, with both sides floored to
/// one row out of `rows` so zero-cardinality predicates stay finite.
pub fn q_error(estimate: f64, truth: f64, rows: usize) -> f64 {
    let floor = 1.0 / rows.max(1) as f64;
    let e = estimate.max(floor);
    let t = truth.max(floor);
    (e / t).max(t / e)
}

/// Per-column equi-width histograms + independence assumption.
#[derive(Debug, Clone)]
pub struct HistogramEstimator {
    /// `hist[col][bucket]` = fraction of rows in that bucket.
    hists: Vec<Vec<f64>>,
    mins: Vec<f32>,
    maxs: Vec<f32>,
    buckets: usize,
}

impl HistogramEstimator {
    /// Builds `buckets`-bucket histograms for every column.
    ///
    /// # Panics
    /// Panics when `buckets == 0`.
    pub fn build(table: &CorrelatedTable, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        let cols = table.cols();
        let rows = table.rows();
        let mut mins = vec![f32::INFINITY; cols];
        let mut maxs = vec![f32::NEG_INFINITY; cols];
        for r in 0..rows {
            for (c, &v) in table.row(r).iter().enumerate() {
                mins[c] = mins[c].min(v);
                maxs[c] = maxs[c].max(v);
            }
        }
        let mut hists = vec![vec![0.0f64; buckets]; cols];
        for r in 0..rows {
            for (c, &v) in table.row(r).iter().enumerate() {
                let span = (maxs[c] - mins[c]).max(1e-12);
                let b = (((v - mins[c]) / span) * buckets as f32) as usize;
                hists[c][b.min(buckets - 1)] += 1.0;
            }
        }
        for h in &mut hists {
            for b in h.iter_mut() {
                *b /= rows as f64;
            }
        }
        HistogramEstimator {
            hists,
            mins,
            maxs,
            buckets,
        }
    }

    /// Selectivity of one column's clause `lo <= v < hi` from its
    /// histogram with linear interpolation inside partial buckets.
    fn column_selectivity(&self, col: usize, lo: f32, hi: f32) -> f64 {
        let min = self.mins[col];
        let max = self.maxs[col];
        let span = (max - min).max(1e-12);
        let to_pos = |v: f32| (((v - min) / span) * self.buckets as f32).clamp(0.0, self.buckets as f32);
        let (plo, phi) = (to_pos(lo), to_pos(hi));
        let mut total = 0.0;
        for b in 0..self.buckets {
            let b0 = b as f32;
            let b1 = b0 + 1.0;
            let overlap = (phi.min(b1) - plo.max(b0)).max(0.0);
            total += self.hists[col][b] * f64::from(overlap);
        }
        total
    }

    /// Estimated selectivity of a conjunctive predicate under
    /// independence: the product of per-column selectivities.
    pub fn estimate(&self, predicate: &RangePredicate) -> f64 {
        predicate
            .clauses
            .iter()
            .map(|&(c, lo, hi)| self.column_selectivity(c, lo, hi))
            .product()
    }

    /// Memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.hists.iter().map(|h| h.len() * 8).sum::<usize>() + self.mins.len() * 8
    }
}

/// Uniform-sample estimator: keep `sample_size` random rows, answer by
/// scanning them.
#[derive(Debug, Clone)]
pub struct SamplingEstimator {
    sample: Vec<Vec<f32>>,
}

impl SamplingEstimator {
    /// Draws the sample.
    ///
    /// # Panics
    /// Panics when `sample_size == 0`.
    pub fn build(table: &CorrelatedTable, sample_size: usize, rng: &mut StdRng) -> Self {
        assert!(sample_size > 0, "sample must be non-empty");
        let n = sample_size.min(table.rows());
        let idx = init::sample_indices(table.rows(), n, rng);
        SamplingEstimator {
            sample: idx.into_iter().map(|r| table.row(r).to_vec()).collect(),
        }
    }

    /// Estimated selectivity: matching fraction of the sample.
    pub fn estimate(&self, predicate: &RangePredicate) -> f64 {
        let matching = self
            .sample
            .iter()
            .filter(|row| predicate.matches(row))
            .count();
        matching as f64 / self.sample.len() as f64
    }

    /// Memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.sample.len() * self.sample.first().map_or(0, Vec::len) * 4
    }
}

/// A neural selectivity estimator: featurize the predicate as
/// `(lo, hi)` per column (full range when unconstrained) and regress
/// `log(selectivity)` with an MLP.
#[derive(Debug, Clone)]
pub struct NeuralEstimator {
    model: Network,
    cols: usize,
}

impl NeuralEstimator {
    /// Trains on `train_queries` random predicates (with true
    /// selectivities measured on the table — the query-driven setting).
    pub fn train(
        table: &CorrelatedTable,
        train_queries: usize,
        max_dims: usize,
        seed: u64,
    ) -> Self {
        let cols = table.cols();
        let mut rng = init::rng(seed);
        let mut xs = Vec::with_capacity(train_queries * cols * 2);
        let mut ys = Vec::with_capacity(train_queries);
        for _ in 0..train_queries {
            let dims = rng.gen_range(1..=max_dims.min(cols));
            let p = RangePredicate::sample(cols, dims, &mut rng);
            xs.extend(Self::featurize(&p, cols));
            let sel = table.true_selectivity(&p);
            ys.push((sel.max(1.0 / table.rows() as f64)).ln() as f32);
        }
        let x = Tensor::from_vec(xs, [train_queries, cols * 2]).expect("feature width");
        let y = Tensor::from_vec(ys, [train_queries, 1]).expect("target width");
        let mut model = Network::mlp(&[cols * 2, 64, 32, 1], &mut rng);
        let mut opt = Optimizer::adam(0.005);
        for _ in 0..400 {
            model.zero_grads();
            let pred = model.forward(&x, true);
            let (_, grad) = Loss::MeanSquaredError.evaluate(&pred, &y);
            model.backward(&grad);
            let mut pg = model.params_and_grads();
            opt.step(&mut pg, 1.0);
        }
        model.clear_caches();
        NeuralEstimator { model, cols }
    }

    /// Predicate features: `(lo/100, hi/100)` per column, `(0, 1)` for
    /// unconstrained columns.
    fn featurize(p: &RangePredicate, cols: usize) -> Vec<f32> {
        let mut f = Vec::with_capacity(cols * 2);
        for c in 0..cols {
            match p.clauses.iter().find(|&&(cc, _, _)| cc == c) {
                Some(&(_, lo, hi)) => {
                    f.push(lo / 100.0);
                    f.push(hi / 100.0);
                }
                None => {
                    f.push(0.0);
                    f.push(1.0);
                }
            }
        }
        f
    }

    /// Estimated selectivity.
    pub fn estimate(&mut self, predicate: &RangePredicate) -> f64 {
        let x = Tensor::from_vec(Self::featurize(predicate, self.cols), [1, self.cols * 2])
            .expect("feature width");
        let log_sel = f64::from(self.model.forward(&x, false).item());
        log_sel.exp().clamp(0.0, 1.0)
    }

    /// Memory footprint in bytes (model parameters).
    pub fn size_bytes(&self) -> usize {
        self.model.param_count() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(corr: f32, seed: u64) -> CorrelatedTable {
        CorrelatedTable::generate(4000, 4, corr, seed)
    }

    #[test]
    fn q_error_basics() {
        assert_eq!(q_error(0.5, 0.5, 100), 1.0);
        assert_eq!(q_error(0.5, 0.25, 100), 2.0);
        assert_eq!(q_error(0.25, 0.5, 100), 2.0);
        // floored: zero truth doesn't explode
        assert!(q_error(0.5, 0.0, 100).is_finite());
    }

    #[test]
    fn histogram_single_column_accurate() {
        let t = table(0.0, 0);
        let h = HistogramEstimator::build(&t, 32);
        let p = RangePredicate::new(vec![(0, 20.0, 60.0)]);
        let est = h.estimate(&p);
        let truth = t.true_selectivity(&p);
        assert!(q_error(est, truth, t.rows()) < 1.3, "est {est} truth {truth}");
    }

    #[test]
    fn histogram_breaks_on_correlation() {
        let independent = table(0.0, 1);
        let correlated = table(0.95, 1);
        let p = RangePredicate::new(vec![(0, 0.0, 30.0), (1, 0.0, 30.0)]);
        let qi = q_error(
            HistogramEstimator::build(&independent, 32).estimate(&p),
            independent.true_selectivity(&p),
            independent.rows(),
        );
        let qc = q_error(
            HistogramEstimator::build(&correlated, 32).estimate(&p),
            correlated.true_selectivity(&p),
            correlated.rows(),
        );
        assert!(qc > qi * 1.5, "independence should break: {qi} vs {qc}");
    }

    #[test]
    fn sampling_tracks_truth_within_noise() {
        let t = table(0.8, 2);
        let mut rng = init::rng(3);
        let s = SamplingEstimator::build(&t, 500, &mut rng);
        let p = RangePredicate::new(vec![(0, 10.0, 70.0), (2, 20.0, 80.0)]);
        let q = q_error(s.estimate(&p), t.true_selectivity(&p), t.rows());
        assert!(q < 1.5, "sampling q-error {q}");
    }

    #[test]
    fn neural_beats_histogram_on_correlated_multidim() {
        let t = table(0.9, 4);
        let h = HistogramEstimator::build(&t, 32);
        let mut n = NeuralEstimator::train(&t, 600, 3, 5);
        let mut rng = init::rng(6);
        let mut hq = Vec::new();
        let mut nq = Vec::new();
        for _ in 0..60 {
            let p = RangePredicate::sample(4, 3, &mut rng);
            let truth = t.true_selectivity(&p);
            hq.push(q_error(h.estimate(&p), truth, t.rows()));
            nq.push(q_error(n.estimate(&p), truth, t.rows()));
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let hm = med(&mut hq);
        let nm = med(&mut nq);
        assert!(
            nm < hm,
            "neural median q-error {nm} should beat histogram {hm} on correlated data"
        );
    }

    #[test]
    fn estimators_report_sizes() {
        let t = table(0.5, 7);
        let h = HistogramEstimator::build(&t, 16);
        assert_eq!(h.size_bytes(), 4 * 16 * 8 + 4 * 8);
        let mut rng = init::rng(8);
        let s = SamplingEstimator::build(&t, 100, &mut rng);
        assert_eq!(s.size_bytes(), 100 * 4 * 4);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_zero_buckets() {
        HistogramEstimator::build(&table(0.0, 9), 0);
    }
}
