//! Classic and learned Bloom filters.
//!
//! The learned Bloom filter (Kraska et al.) replaces most of the bit array
//! with a model: a tiny neural classifier predicts membership from key
//! features; keys the model rejects are double-checked against a small
//! **backup** Bloom filter built over the model's false negatives, which
//! restores the classic structure's zero-false-negative guarantee. When
//! the key set is learnable, the model + backup together need less memory
//! than a classic filter at the same false-positive rate (E12).

use dl_nn::{loss::one_hot, Dataset, Loss, Network, Optimizer};
use dl_tensor::{init, Tensor};

/// A classic Bloom filter over `u64` keys with double hashing.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    nbits: usize,
    k: u32,
}

impl BloomFilter {
    /// A filter with `nbits` bits and `k` hash functions.
    ///
    /// # Panics
    /// Panics when `nbits == 0` or `k == 0`.
    pub fn new(nbits: usize, k: u32) -> Self {
        assert!(nbits > 0 && k > 0, "nbits and k must be positive");
        BloomFilter {
            bits: vec![0; nbits.div_ceil(64)],
            nbits,
            k,
        }
    }

    /// Sizes a filter for `n` keys at target false-positive rate `fpr`
    /// using the standard formulas.
    pub fn with_fpr(n: usize, fpr: f64) -> Self {
        assert!(fpr > 0.0 && fpr < 1.0, "fpr must lie in (0,1)");
        let nbits = (-(n.max(1) as f64) * fpr.ln() / (2f64.ln().powi(2))).ceil() as usize;
        let k = ((nbits as f64 / n.max(1) as f64) * 2f64.ln()).round().max(1.0) as u32;
        BloomFilter::new(nbits.max(8), k)
    }

    fn hashes(&self, key: u64) -> (u64, u64) {
        // two independent 64-bit mixes (splitmix64 variants)
        let mut h1 = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h1 = (h1 ^ (h1 >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h1 = (h1 ^ (h1 >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h1 ^= h1 >> 31;
        let mut h2 = key.wrapping_add(0xD1B5_4A32_D192_ED03);
        h2 = (h2 ^ (h2 >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h2 = (h2 ^ (h2 >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        h2 ^= h2 >> 33;
        (h1, h2 | 1)
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: u64) {
        let (h1, h2) = self.hashes(key);
        for i in 0..self.k {
            let bit = (h1.wrapping_add(h2.wrapping_mul(u64::from(i))) % self.nbits as u64) as usize;
            self.bits[bit / 64] |= 1 << (bit % 64);
        }
    }

    /// Membership query (false positives possible, false negatives not).
    pub fn contains(&self, key: u64) -> bool {
        let (h1, h2) = self.hashes(key);
        (0..self.k).all(|i| {
            let bit = (h1.wrapping_add(h2.wrapping_mul(u64::from(i))) % self.nbits as u64) as usize;
            self.bits[bit / 64] & (1 << (bit % 64)) != 0
        })
    }

    /// Filter size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Empirical false-positive rate over a set of known-absent keys.
    pub fn empirical_fpr(&self, absent: &[u64]) -> f64 {
        if absent.is_empty() {
            return 0.0;
        }
        absent.iter().filter(|&&k| self.contains(k)).count() as f64 / absent.len() as f64
    }
}

/// Feature map for keys: normalized value, byte patterns and bit parities
/// give the classifier something learnable for structured key sets.
fn key_features(key: u64, max_key: u64) -> Vec<f32> {
    let norm = key as f64 / max_key.max(1) as f64;
    vec![
        norm as f32,
        (norm * 256.0).fract() as f32,
        (norm * 65536.0).fract() as f32,
        (key % 2) as f32,
        (key % 10) as f32 / 10.0,
        (key % 1000) as f32 / 1000.0,
    ]
}

/// A learned Bloom filter: classifier + threshold + backup filter.
#[derive(Debug, Clone)]
pub struct LearnedBloom {
    model: Network,
    threshold: f32,
    backup: BloomFilter,
    max_key: u64,
}

impl LearnedBloom {
    /// Trains a learned filter over `keys`, using `negatives` as the
    /// non-member training sample, targeting roughly `target_fpr` from the
    /// model side. The backup filter is sized for the model's false
    /// negatives at the chosen threshold.
    ///
    /// # Panics
    /// Panics when `keys` or `negatives` is empty.
    pub fn build(keys: &[u64], negatives: &[u64], target_fpr: f64, seed: u64) -> Self {
        assert!(!keys.is_empty() && !negatives.is_empty(), "need keys and negatives");
        let max_key = keys
            .iter()
            .chain(negatives.iter())
            .copied()
            .max()
            .expect("non-empty");
        // training set: members (1) + negatives (0)
        let mut xs: Vec<f32> = Vec::with_capacity((keys.len() + negatives.len()) * 6);
        let mut ys = Vec::with_capacity(keys.len() + negatives.len());
        for &k in keys {
            xs.extend(key_features(k, max_key));
            ys.push(1usize);
        }
        for &k in negatives {
            xs.extend(key_features(k, max_key));
            ys.push(0usize);
        }
        let x = Tensor::from_vec(xs, [ys.len(), 6]).expect("feature length");
        let data = Dataset::new(x.clone(), ys, 2);
        let mut rng = init::rng(seed);
        let mut model = Network::mlp(&[6, 12, 2], &mut rng);
        let mut opt = Optimizer::adam(0.02);
        // brief full-batch training
        let targets = one_hot(&data.y, 2);
        for _ in 0..150 {
            model.zero_grads();
            let logits = model.forward(&data.x, true);
            let (_, grad) = Loss::SoftmaxCrossEntropy.evaluate(&logits, &targets);
            model.backward(&grad);
            let mut pg = model.params_and_grads();
            opt.step(&mut pg, 1.0);
        }
        model.clear_caches();
        // choose the threshold whose FPR on the negative sample ~ target
        let neg_scores = Self::scores(&mut model, negatives, max_key);
        let mut sorted = neg_scores.clone();
        sorted.sort_by(f32::total_cmp);
        let idx = ((sorted.len() as f64) * (1.0 - target_fpr)).floor() as usize;
        let threshold = sorted[idx.min(sorted.len() - 1)].max(0.5);
        // backup filter over false negatives
        let key_scores = Self::scores(&mut model, keys, max_key);
        let false_negatives: Vec<u64> = keys
            .iter()
            .zip(&key_scores)
            .filter(|(_, &s)| s < threshold)
            .map(|(&k, _)| k)
            .collect();
        let mut backup = BloomFilter::with_fpr(false_negatives.len().max(1), target_fpr);
        for &k in &false_negatives {
            backup.insert(k);
        }
        LearnedBloom {
            model,
            threshold,
            backup,
            max_key,
        }
    }

    fn scores(model: &mut Network, keys: &[u64], max_key: u64) -> Vec<f32> {
        let xs: Vec<f32> = keys.iter().flat_map(|&k| key_features(k, max_key)).collect();
        let x = Tensor::from_vec(xs, [keys.len(), 6]).expect("feature length");
        let p = model.predict_proba(&x);
        (0..keys.len()).map(|i| p.get(&[i, 1])).collect()
    }

    /// Membership query: model says yes, or backup says yes.
    /// Guaranteed no false negatives for the build keys.
    pub fn contains(&mut self, key: u64) -> bool {
        let score = Self::scores(&mut self.model, &[key], self.max_key)[0];
        if score >= self.threshold {
            true
        } else {
            self.backup.contains(key)
        }
    }

    /// Total size: model parameters + backup filter.
    pub fn size_bytes(&self) -> usize {
        self.model.param_count() * 4 + self.backup.size_bytes()
    }

    /// Empirical FPR over known-absent keys.
    pub fn empirical_fpr(&mut self, absent: &[u64]) -> f64 {
        if absent.is_empty() {
            return 0.0;
        }
        let hits = absent.iter().filter(|&&k| self.contains(k)).count();
        hits as f64 / absent.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_data::keys::absent_keys;
    use proptest::prelude::*;

    #[test]
    fn bloom_never_false_negative() {
        let mut f = BloomFilter::with_fpr(1000, 0.01);
        let keys: Vec<u64> = (0..1000).map(|i| i * 17 + 3).collect();
        for &k in &keys {
            f.insert(k);
        }
        assert!(keys.iter().all(|&k| f.contains(k)));
    }

    #[test]
    fn bloom_fpr_near_target() {
        let n = 5000;
        let mut f = BloomFilter::with_fpr(n, 0.02);
        let keys: Vec<u64> = (0..n as u64).map(|i| i * 31 + 1).collect();
        for &k in &keys {
            f.insert(k);
        }
        let mut rng = init::rng(0);
        let absent = absent_keys(&keys, 20_000, &mut rng);
        let fpr = f.empirical_fpr(&absent);
        assert!(fpr < 0.05, "fpr {fpr} far above the 2% target");
    }

    #[test]
    fn bloom_size_grows_with_lower_fpr() {
        assert!(
            BloomFilter::with_fpr(1000, 0.001).size_bytes()
                > BloomFilter::with_fpr(1000, 0.1).size_bytes()
        );
    }

    #[test]
    #[should_panic(expected = "fpr must lie")]
    fn bloom_rejects_bad_fpr() {
        BloomFilter::with_fpr(100, 0.0);
    }

    #[test]
    fn learned_bloom_no_false_negatives() {
        // learnable key set: all even-ish keys in a range
        let keys: Vec<u64> = (0..2000u64).map(|i| i * 2).collect();
        let mut rng = init::rng(1);
        let negatives = absent_keys(&keys, 2000, &mut rng);
        let mut lb = LearnedBloom::build(&keys, &negatives, 0.05, 0);
        for &k in keys.iter().step_by(37) {
            assert!(lb.contains(k), "false negative on {k}");
        }
    }

    #[test]
    fn learned_bloom_fpr_reasonable() {
        let keys: Vec<u64> = (0..2000u64).map(|i| i * 2).collect();
        let mut rng = init::rng(2);
        let train_neg = absent_keys(&keys, 2000, &mut rng);
        let test_neg = absent_keys(&keys, 4000, &mut rng);
        let mut lb = LearnedBloom::build(&keys, &train_neg, 0.05, 0);
        let fpr = lb.empirical_fpr(&test_neg);
        assert!(fpr < 0.3, "learned filter fpr {fpr} out of control");
    }

    proptest! {
        /// The zero-false-negative guarantee holds for arbitrary key sets
        /// (the model may be useless; the backup must still catch misses).
        #[test]
        fn learned_bloom_guarantee(
            raw in proptest::collection::btree_set(0u64..100_000, 10..60),
            seed in 0u64..10,
        ) {
            let keys: Vec<u64> = raw.into_iter().collect();
            let mut rng = init::rng(seed);
            let negatives = absent_keys(&keys, 50, &mut rng);
            let mut lb = LearnedBloom::build(&keys, &negatives, 0.1, seed);
            for &k in &keys {
                prop_assert!(lb.contains(k), "false negative on {}", k);
            }
        }
    }
}
