//! Request identity, span context, and the trace event schema the
//! serving stack emits through.
//!
//! `dl_serve` carries a [`SpanContext`] per request across dispatches and
//! calls the `emit_*` helpers at each causal edge — dispatch decisions,
//! batch membership, hedge dedup losses, terminal losses. Every helper is
//! gated on [`Recorder::enabled`], so the `NullRecorder` path does no
//! field construction and stays bit-identical. The instants land in the
//! ordinary event stream, where [`crate::TraceSet::reconstruct`] (or a
//! live [`crate::Tracer`] tap) rebuilds per-request waterfalls.

use dl_obs::{fields, Recorder};

/// Stable identity of one serving request — the request generators mint
/// dense ids, and every structured sample carries it in a `"request"`
/// field, which is what lets the analysis side stitch a request's
/// lifecycle back together across replicas, retries, and hedges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// Why a router dispatch happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DispatchKind {
    /// First routing of a fresh arrival.
    Primary,
    /// Re-route after crash loss (bounded by the retry policy).
    Retry,
    /// Hedged duplicate racing a straggling first copy.
    Hedge,
}

impl DispatchKind {
    /// Stable lowercase label carried in the `"kind"` field.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DispatchKind::Primary => "primary",
            DispatchKind::Retry => "retry",
            DispatchKind::Hedge => "hedge",
        }
    }

    /// Inverse of [`DispatchKind::label`].
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "primary" => Some(DispatchKind::Primary),
            "retry" => Some(DispatchKind::Retry),
            "hedge" => Some(DispatchKind::Hedge),
            _ => None,
        }
    }
}

/// The causal context one request carries through the serving stack: its
/// identity plus how many times it has been re-dispatched. The cluster
/// driver keeps one per in-flight request and stamps both onto every
/// dispatch edge it emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// The request this context belongs to.
    pub request: RequestId,
    /// Re-dispatch count (0 on the primary attempt).
    pub attempt: u32,
}

impl SpanContext {
    /// Context for a fresh arrival (attempt 0).
    #[must_use]
    pub fn new(request: u64) -> Self {
        SpanContext {
            request: RequestId(request),
            attempt: 0,
        }
    }

    /// The context after one more re-dispatch.
    #[must_use]
    pub fn retry(self) -> Self {
        SpanContext {
            request: self.request,
            attempt: self.attempt + 1,
        }
    }
}

/// What made a batch flush when it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushTrigger {
    /// The queue reached `max_batch`.
    Full,
    /// The head request aged past `max_delay_s`.
    Aged,
    /// End-of-run drain (no future arrivals can top the batch up).
    Drain,
}

impl FlushTrigger {
    /// Stable lowercase label carried in the `"trigger"` field.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FlushTrigger::Full => "full",
            FlushTrigger::Aged => "aged",
            FlushTrigger::Drain => "drain",
        }
    }
}

/// Event names of the per-request trace schema. The serving engine emits
/// some of these directly (`serve.admit`, `serve.complete`, …); the
/// `emit_*` helpers below cover the causal edges added by the tracing
/// layer. Reconstruction taps exactly this set.
pub mod names {
    /// Router dispatch decision (`request`, `replica`, `attempt`, `kind`).
    pub const DISPATCH: &str = "serve.dispatch";
    /// Batch membership at flush (`request`, `replica`, `seq`, `pos`,
    /// `size`, `trigger`).
    pub const BATCH_JOIN: &str = "serve.batch_join";
    /// A completed copy discarded by hedge dedup (`request`, `replica`,
    /// `elapsed_s`).
    pub const HEDGE_LOSER: &str = "hedge.loser";
    /// Terminal crash loss after retries ran out (`request`, `attempt`).
    pub const LOST: &str = "serve.lost";
    /// Arrival that found no routable replica (`request`).
    pub const UNAVAILABLE: &str = "serve.unavailable";
    /// Admission accept (emitted by the engine).
    pub const ADMIT: &str = "serve.admit";
    /// Admission downgrade (emitted by the engine).
    pub const DOWNGRADE: &str = "serve.downgrade";
    /// Admission shed (emitted by the engine).
    pub const SHED: &str = "serve.shed";
    /// First-completion delivery (emitted by the engine).
    pub const COMPLETE: &str = "serve.complete";
    /// The per-batch device span (emitted by the engine; its end edges
    /// mark when a replica's device went idle).
    pub const BATCH_SPAN: &str = "serve.batch";
    /// The latency histogram whose buckets carry request-id exemplars.
    pub const LATENCY_HISTOGRAM: &str = "serve.latency_s";
}

/// Emits a router dispatch edge for `ctx` toward `replica`.
pub fn emit_dispatch(
    rec: &dyn Recorder,
    track: u32,
    ctx: SpanContext,
    replica: usize,
    kind: DispatchKind,
) {
    if !rec.enabled() {
        return;
    }
    rec.instant(
        track,
        names::DISPATCH,
        fields! {
            "request" => ctx.request.0,
            "replica" => replica,
            "attempt" => ctx.attempt,
            "kind" => kind.label(),
        },
    );
}

/// Emits one request's batch membership at flush time: which batch
/// (`replica` + per-replica `seq`), where in it (`pos` of `size`), and
/// why it flushed now (`trigger`).
#[allow(clippy::too_many_arguments)]
pub fn emit_batch_join(
    rec: &dyn Recorder,
    track: u32,
    request: u64,
    replica: u32,
    seq: u64,
    pos: usize,
    size: usize,
    trigger: FlushTrigger,
) {
    if !rec.enabled() {
        return;
    }
    rec.instant(
        track,
        names::BATCH_JOIN,
        fields! {
            "request" => request,
            "replica" => replica,
            "seq" => seq,
            "pos" => pos,
            "size" => size,
            "trigger" => trigger.label(),
        },
    );
}

/// Emits the losing copy of a hedge race: it finished service but another
/// replica had already answered, so `elapsed_s` of work was wasted.
pub fn emit_hedge_loser(rec: &dyn Recorder, track: u32, request: u64, replica: u32, elapsed_s: f64) {
    if !rec.enabled() {
        return;
    }
    rec.instant(
        track,
        names::HEDGE_LOSER,
        fields! {
            "request" => request,
            "replica" => replica,
            "elapsed_s" => elapsed_s,
        },
    );
}

/// Emits a terminal crash loss for `ctx` (retries exhausted or nowhere to
/// re-route).
pub fn emit_lost(rec: &dyn Recorder, track: u32, ctx: SpanContext) {
    if !rec.enabled() {
        return;
    }
    rec.instant(
        track,
        names::LOST,
        fields! {
            "request" => ctx.request.0,
            "attempt" => ctx.attempt,
        },
    );
}

/// Emits an arrival that found no routable replica.
pub fn emit_unavailable(rec: &dyn Recorder, track: u32, request: u64) {
    if !rec.enabled() {
        return;
    }
    rec.instant(track, names::UNAVAILABLE, fields! { "request" => request });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_obs::{NullRecorder, TimelineRecorder};

    #[test]
    fn labels_round_trip() {
        for kind in [DispatchKind::Primary, DispatchKind::Retry, DispatchKind::Hedge] {
            assert_eq!(DispatchKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(DispatchKind::parse("bogus"), None);
        assert_eq!(FlushTrigger::Full.label(), "full");
        assert_eq!(format!("{}", RequestId(7)), "req-7");
    }

    #[test]
    fn span_context_counts_attempts() {
        let ctx = SpanContext::new(42);
        assert_eq!(ctx.attempt, 0);
        assert_eq!(ctx.retry().retry().attempt, 2);
        assert_eq!(ctx.retry().request, RequestId(42));
    }

    #[test]
    fn emits_are_gated_on_enabled() {
        let null = NullRecorder::new();
        emit_dispatch(&null, 0, SpanContext::new(1), 2, DispatchKind::Hedge);
        emit_hedge_loser(&null, 0, 1, 2, 0.5);
        let rec = TimelineRecorder::new();
        emit_dispatch(&rec, 3, SpanContext::new(1).retry(), 2, DispatchKind::Retry);
        emit_batch_join(&rec, 3, 1, 1, 9, 2, 8, FlushTrigger::Aged);
        emit_lost(&rec, 3, SpanContext::new(1).retry());
        emit_unavailable(&rec, 0, 5);
        let events = rec.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].name, names::DISPATCH);
        assert_eq!(events[1].name, names::BATCH_JOIN);
        assert_eq!(events[2].name, names::LOST);
        assert_eq!(events[3].name, names::UNAVAILABLE);
        assert!(events[0]
            .fields
            .iter()
            .any(|(k, v)| k == "kind" && v.as_str() == Some("retry")));
    }
}
