//! The [`Tracer`] recorder tap: forwards every call to an inner recorder
//! unchanged while retaining a copy of the per-request trace events.
//!
//! Like `dl_monitor::Monitor`, the tap reports `enabled() == true` even
//! over a `NullRecorder`, so the serving stack emits its structured
//! samples; the tracer keeps the request-lifecycle subset and the inner
//! recorder sees the exact stream it would have seen untapped. Wrapping a
//! `TimelineRecorder` therefore leaves its timeline byte-identical, and
//! wrapping a `NullRecorder` adds tracing to an otherwise silent run.

use std::sync::Mutex;

use dl_obs::{Event, EventKind, Recorder, VirtualClock};

use crate::context::names;
use crate::waterfall::TraceSet;

/// Returns true for events the tracer retains: the per-request instants
/// of the trace schema plus `serve.batch` span edges (whose end edges
/// mark device-idle boundaries for queue/batch-wait attribution).
fn is_trace_event(event: &Event) -> bool {
    match event.kind {
        EventKind::Instant => matches!(
            event.name.as_str(),
            names::DISPATCH
                | names::BATCH_JOIN
                | names::HEDGE_LOSER
                | names::LOST
                | names::UNAVAILABLE
                | names::ADMIT
                | names::DOWNGRADE
                | names::SHED
                | names::COMPLETE
        ),
        EventKind::SpanStart | EventKind::SpanEnd => event.name == names::BATCH_SPAN,
        EventKind::Counter => false,
    }
}

/// A pure forwarding tap over any [`Recorder`] that retains the
/// request-lifecycle events needed to reconstruct waterfalls.
pub struct Tracer<'a> {
    inner: &'a dyn Recorder,
    events: Mutex<Vec<Event>>,
}

impl<'a> Tracer<'a> {
    /// Wraps `inner`; pass the tracer wherever a `&dyn Recorder` goes.
    #[must_use]
    pub fn new(inner: &'a dyn Recorder) -> Self {
        Tracer {
            inner,
            events: Mutex::new(Vec::new()),
        }
    }

    /// The retained trace events, in emission (record) order.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("tracer events lock").clone()
    }

    /// Reconstructs per-request waterfalls from the retained events.
    #[must_use]
    pub fn traces(&self) -> TraceSet {
        TraceSet::reconstruct(&self.events.lock().expect("tracer events lock"))
    }
}

impl Recorder for Tracer<'_> {
    fn clock(&self) -> &VirtualClock {
        self.inner.clock()
    }

    // Always on: the engines must emit their structured samples even when
    // the inner recorder is a NullRecorder, or there is nothing to trace.
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        if is_trace_event(&event) {
            self.events
                .lock()
                .expect("tracer events lock")
                .push(event.clone());
        }
        self.inner.record(event);
    }

    fn add_counter(&self, name: &str, delta: u64) -> u64 {
        self.inner.add_counter(name, delta)
    }

    fn observe(&self, name: &str, value: f64) {
        self.inner.observe(name, value);
    }

    // Forwarded verbatim so exemplar slots match an untraced run
    // bit-for-bit.
    fn observe_exemplar(&self, name: &str, value: f64, exemplar: u64) {
        self.inner.observe_exemplar(name, value, exemplar);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_obs::{fields, NullRecorder, TimelineRecorder};

    #[test]
    fn tracer_forwards_the_full_stream_unchanged() {
        let plain = TimelineRecorder::new();
        let tapped = TimelineRecorder::new();
        let drive = |rec: &dyn Recorder| {
            let span = rec.span_start(3, "serve.batch", fields! { "variant" => "full" });
            rec.clock().advance(0.5);
            rec.instant(3, "serve.admit", fields! { "request" => 1u64, "replica" => 0usize });
            rec.counter(0, "cluster.lost", 1);
            rec.observe("serve.latency_s", 0.25);
            rec.span_end(span, fields! { "batch" => 4usize });
            rec.instant(0, "unrelated", fields! {});
        };
        drive(&plain);
        let tracer = Tracer::new(&tapped);
        drive(&tracer);
        assert_eq!(plain.events(), tapped.events());
        // The tap retained only the trace schema subset.
        let kept = tracer.events();
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].name, "serve.batch");
        assert_eq!(kept[1].name, "serve.admit");
        assert_eq!(kept[2].name, "serve.batch");
        // Clocks advance in lockstep because there is only one clock.
        assert_eq!(plain.clock().now(), tapped.clock().now());
    }

    #[test]
    fn tracer_over_null_recorder_still_collects() {
        let null = NullRecorder::new();
        assert!(!null.enabled());
        let tracer = Tracer::new(&null);
        assert!(tracer.enabled());
        tracer.instant(0, "serve.complete", fields! { "request" => 9u64 });
        tracer.instant(0, "not.traced", fields! {});
        assert_eq!(tracer.events().len(), 1);
        assert_eq!(tracer.events()[0].name, "serve.complete");
    }
}
