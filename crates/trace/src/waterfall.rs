//! Waterfall reconstruction: rebuilds each request's lifecycle from the
//! recorded event stream into typed, conservation-checked phases.
//!
//! All arithmetic is on the integer microsecond timestamps the virtual
//! clock stamps onto events. Phases are consecutive intervals between a
//! request's own events, so their telescoping sum equals the end-to-end
//! latency *exactly* — not within epsilon — which
//! [`TraceSet::verify_conservation`] asserts for every request, and
//! [`TraceSet::matches_report`] cross-checks against the engine's own
//! served/shed/lost/unavailable accounting.

use std::collections::BTreeMap;

use dl_obs::{Event, EventKind};

use crate::context::{names, DispatchKind};

/// Number of phase slots in a [`RequestTrace`].
pub const PHASE_COUNT: usize = 7;

/// One segment of a request's lifecycle, in chronological order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Time before the winning *retry* dispatch fired (crash detection +
    /// re-route). Zero when the primary attempt won.
    RetryWait,
    /// Time before the winning *hedge* dispatch fired (the hedge timer).
    /// Zero when the primary attempt won.
    HedgeWait,
    /// Router-to-replica delivery of the winning dispatch (zero when
    /// dispatch is instantaneous, e.g. single-node).
    Admit,
    /// Admission to the moment the serving device last went idle — pure
    /// head-of-line queueing behind earlier batches.
    Queue,
    /// Device idle but the batcher holding for more arrivals (the
    /// batching delay knob).
    BatchWait,
    /// Inside the forward batch until first completion.
    Service,
    /// Completion to delivery (zero in-process; kept as an explicit slot
    /// so the schema names every edge).
    Deliver,
}

impl Phase {
    /// All phases in chronological order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::RetryWait,
        Phase::HedgeWait,
        Phase::Admit,
        Phase::Queue,
        Phase::BatchWait,
        Phase::Service,
        Phase::Deliver,
    ];

    /// Stable snake_case label (JSON keys, table headers).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::RetryWait => "retry_wait",
            Phase::HedgeWait => "hedge_wait",
            Phase::Admit => "admit",
            Phase::Queue => "queue",
            Phase::BatchWait => "batch_wait",
            Phase::Service => "service",
            Phase::Deliver => "deliver",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::RetryWait => 0,
            Phase::HedgeWait => 1,
            Phase::Admit => 2,
            Phase::Queue => 3,
            Phase::BatchWait => 4,
            Phase::Service => 5,
            Phase::Deliver => 6,
        }
    }
}

/// How a request's lifecycle ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Answered; `replica` served the winning copy, `via` is the kind of
    /// the dispatch that won.
    Served {
        /// Replica that produced the delivered answer.
        replica: u32,
        /// Dispatch kind of the winning attempt.
        via: DispatchKind,
    },
    /// Rejected by admission control.
    Shed,
    /// Crashed away after retries ran out.
    Lost,
    /// No routable replica at arrival.
    Unavailable,
}

impl Outcome {
    /// Stable lowercase label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Served { .. } => "served",
            Outcome::Shed => "shed",
            Outcome::Lost => "lost",
            Outcome::Unavailable => "unavailable",
        }
    }
}

/// Which batch a served request rode in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRef {
    /// Replica that formed the batch.
    pub replica: u32,
    /// Per-replica batch sequence number.
    pub seq: u64,
    /// Position inside the batch (0-based).
    pub pos: u32,
    /// Batch size.
    pub size: u32,
    /// Why the batch flushed (`full` / `aged` / `drain`).
    pub trigger: String,
}

/// One request's reconstructed lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// Request id.
    pub id: u64,
    /// Terminal outcome.
    pub outcome: Outcome,
    /// Timestamp of the request's first recorded event (µs).
    pub start_us: u64,
    /// Timestamp of its terminal event (µs).
    pub end_us: u64,
    /// Phase durations (µs), indexed in [`Phase::ALL`] order. Their sum
    /// is exactly `end_us - start_us`.
    pub phases: [u64; PHASE_COUNT],
    /// Explicit dispatch edges observed (0 when the zero-delay primary
    /// path emitted none).
    pub dispatches: u32,
    /// Whether a hedge duplicate was launched for this request.
    pub hedged: bool,
    /// Batch membership of the winning copy, when it reached a batch.
    pub batch: Option<BatchRef>,
    /// Wasted duplicate work (µs) from hedge copies that lost the race.
    pub wasted_us: u64,
    /// The engine's own `latency_s` field from `serve.complete` (0.0 for
    /// non-served requests). Sanity reference only — the exact number is
    /// `e2e_us`.
    pub reported_latency_s: f64,
}

impl RequestTrace {
    /// End-to-end wall time in microseconds (exact).
    #[must_use]
    pub fn e2e_us(&self) -> u64 {
        self.end_us - self.start_us
    }

    /// Duration of one phase in microseconds.
    #[must_use]
    pub fn phase_us(&self, phase: Phase) -> u64 {
        self.phases[phase.index()]
    }
}

/// Event-level outcome tallies, mirroring the engine report's accounting
/// (a hedged request can legitimately contribute to two tallies, exactly
/// as it does in the report).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeCounts {
    /// Delivered first completions.
    pub served: usize,
    /// Admission-control rejections (event count).
    pub shed: usize,
    /// Terminal crash losses (event count).
    pub lost: usize,
    /// Arrivals with no routable replica (event count).
    pub unavailable: usize,
}

impl OutcomeCounts {
    /// Sum of all tallies.
    #[must_use]
    pub fn total(&self) -> usize {
        self.served + self.shed + self.lost + self.unavailable
    }
}

/// Per-request accumulator while scanning the stream.
#[derive(Default)]
struct Pending {
    first_ts: Option<u64>,
    last_ts: u64,
    /// (ts, replica, kind) per explicit dispatch edge, in record order.
    dispatches: Vec<(u64, u32, DispatchKind)>,
    /// (ts, replica) per admit/downgrade, in record order.
    admits: Vec<(u64, u32)>,
    /// (ts, replica, device_free_ts, batch) per batch join.
    joins: Vec<(u64, u32, u64, BatchRef)>,
    complete: Option<(u64, u32, f64)>,
    shed: Vec<u64>,
    lost: Vec<u64>,
    unavailable: Vec<u64>,
    hedged: bool,
    wasted_us: u64,
}

fn field_u64(event: &Event, key: &str) -> Option<u64> {
    event
        .fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_u64())
}

fn field_f64(event: &Event, key: &str) -> Option<f64> {
    event
        .fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_f64())
}

fn field_str<'e>(event: &'e Event, key: &str) -> Option<&'e str> {
    event
        .fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_str())
}

/// All requests reconstructed from one event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSet {
    /// Per-request traces, sorted by request id.
    pub requests: Vec<RequestTrace>,
    /// Event-level outcome tallies.
    pub counts: OutcomeCounts,
}

impl TraceSet {
    /// Rebuilds every request's lifecycle from `events`.
    ///
    /// Events must be in record order (as `TimelineRecorder::events` and
    /// [`crate::Tracer::events`] return them); record order doubles as
    /// the chronological tie-breaker for equal timestamps, so the stream
    /// is never re-sorted here.
    #[must_use]
    pub fn reconstruct(events: &[Event]) -> TraceSet {
        let mut pending: BTreeMap<u64, Pending> = BTreeMap::new();
        // Latest `serve.batch` end edge per replica, maintained in record
        // order: when a request joins a batch, this is the moment its
        // replica's device last went idle — the queue/batch-wait split.
        let mut device_free: BTreeMap<u32, u64> = BTreeMap::new();
        for event in events {
            match event.kind {
                EventKind::SpanEnd if event.name == names::BATCH_SPAN => {
                    if let Some(replica) = field_u64(event, "replica") {
                        device_free.insert(replica as u32, event.ts_micros);
                    }
                }
                EventKind::Instant => {
                    let name = event.name.as_str();
                    if !matches!(
                        name,
                        names::DISPATCH
                            | names::ADMIT
                            | names::DOWNGRADE
                            | names::BATCH_JOIN
                            | names::COMPLETE
                            | names::SHED
                            | names::LOST
                            | names::UNAVAILABLE
                            | names::HEDGE_LOSER
                    ) {
                        continue;
                    }
                    let Some(id) = field_u64(event, "request") else {
                        continue;
                    };
                    let ts = event.ts_micros;
                    let replica = field_u64(event, "replica").unwrap_or(0) as u32;
                    let free = device_free.get(&replica).copied().unwrap_or(0);
                    let entry = pending.entry(id).or_default();
                    entry.first_ts.get_or_insert(ts);
                    entry.last_ts = entry.last_ts.max(ts);
                    match name {
                        names::DISPATCH => {
                            let kind = field_str(event, "kind")
                                .and_then(DispatchKind::parse)
                                .unwrap_or(DispatchKind::Primary);
                            entry.hedged |= kind == DispatchKind::Hedge;
                            entry.dispatches.push((ts, replica, kind));
                        }
                        names::ADMIT | names::DOWNGRADE => entry.admits.push((ts, replica)),
                        names::BATCH_JOIN => {
                            let batch = BatchRef {
                                replica,
                                seq: field_u64(event, "seq").unwrap_or(0),
                                pos: field_u64(event, "pos").unwrap_or(0) as u32,
                                size: field_u64(event, "size").unwrap_or(0) as u32,
                                trigger: field_str(event, "trigger").unwrap_or("?").to_string(),
                            };
                            entry.joins.push((ts, replica, free, batch));
                        }
                        names::COMPLETE => {
                            let latency = field_f64(event, "latency_s").unwrap_or(0.0);
                            // `fresh` dedup upstream guarantees at most
                            // one, but keep the first defensively.
                            entry.complete.get_or_insert((ts, replica, latency));
                        }
                        names::SHED => entry.shed.push(ts),
                        names::LOST => entry.lost.push(ts),
                        names::UNAVAILABLE => entry.unavailable.push(ts),
                        names::HEDGE_LOSER => {
                            let elapsed = field_f64(event, "elapsed_s").unwrap_or(0.0);
                            entry.wasted_us += (elapsed.max(0.0) * 1e6).round() as u64;
                        }
                        _ => unreachable!("filtered above"),
                    }
                }
                _ => {}
            }
        }

        let mut counts = OutcomeCounts::default();
        let mut requests = Vec::with_capacity(pending.len());
        for (id, p) in pending {
            counts.served += usize::from(p.complete.is_some());
            counts.shed += p.shed.len();
            counts.lost += p.lost.len();
            counts.unavailable += p.unavailable.len();
            requests.push(finalize(id, p));
        }
        TraceSet { requests, counts }
    }

    /// Served requests only.
    pub fn served(&self) -> impl Iterator<Item = &RequestTrace> {
        self.requests
            .iter()
            .filter(|t| matches!(t.outcome, Outcome::Served { .. }))
    }

    /// Asserts the exact-conservation invariant: for every request the
    /// phase durations sum to precisely its end-to-end time.
    ///
    /// # Errors
    ///
    /// Describes the first request whose phases do not telescope.
    pub fn verify_conservation(&self) -> Result<(), String> {
        for t in &self.requests {
            let sum: u64 = t.phases.iter().sum();
            if sum != t.e2e_us() {
                return Err(format!(
                    "request {}: phases sum to {}µs but end-to-end is {}µs",
                    t.id,
                    sum,
                    t.e2e_us()
                ));
            }
        }
        Ok(())
    }

    /// Cross-checks reconstructed outcome tallies against the engine
    /// report's own accounting.
    ///
    /// # Errors
    ///
    /// Names the first category whose tally disagrees with the report.
    pub fn matches_report(
        &self,
        served: usize,
        shed: usize,
        lost: usize,
        unavailable: usize,
    ) -> Result<(), String> {
        let c = &self.counts;
        for (label, got, want) in [
            ("served", c.served, served),
            ("shed", c.shed, shed),
            ("lost", c.lost, lost),
            ("unavailable", c.unavailable, unavailable),
        ] {
            if got != want {
                return Err(format!(
                    "{label}: reconstructed {got} but the report says {want}"
                ));
            }
        }
        Ok(())
    }
}

/// Collapses one request's accumulated events into its trace. Cut points
/// are clamped into monotone order before differencing, so the phase sum
/// telescopes to `end - start` exactly no matter what the stream held.
fn finalize(id: u64, p: Pending) -> RequestTrace {
    let start = p.first_ts.unwrap_or(0);
    let dispatches = p.dispatches.len() as u32;
    let mut phases = [0u64; PHASE_COUNT];

    if let Some((done, winner, latency)) = p.complete {
        // Winning attempt: the last dispatch toward the serving replica
        // at or before completion. No explicit dispatch edge means the
        // instantaneous primary path.
        let (wd_raw, via) = p
            .dispatches
            .iter()
            .rev()
            .find(|(ts, r, _)| *r == winner && *ts <= done)
            .map(|(ts, _, k)| (*ts, *k))
            .unwrap_or((start, DispatchKind::Primary));
        let wd = wd_raw.clamp(start, done);
        let wa = p
            .admits
            .iter()
            .rev()
            .find(|(ts, r)| *r == winner && *ts <= done)
            .map(|(ts, _)| *ts)
            .unwrap_or(wd)
            .clamp(wd, done);
        let (wj_raw, free_raw, batch) = p
            .joins
            .iter()
            .rev()
            .find(|(ts, r, _, _)| *r == winner && *ts <= done)
            .map(|(ts, _, free, b)| (*ts, *free, Some(b.clone())))
            .unwrap_or((wa, wa, None));
        let wj = wj_raw.clamp(wa, done);
        let free = free_raw.clamp(wa, wj);
        match via {
            DispatchKind::Primary => {} // wd == start on the primary path
            DispatchKind::Retry => phases[Phase::RetryWait.index()] = wd - start,
            DispatchKind::Hedge => phases[Phase::HedgeWait.index()] = wd - start,
        }
        // A primary dispatch edge with routing delay still owns wd-start;
        // fold it into Admit so nothing is dropped.
        phases[Phase::Admit.index()] = (wa - wd) + if via == DispatchKind::Primary { wd - start } else { 0 };
        phases[Phase::Queue.index()] = free - wa;
        phases[Phase::BatchWait.index()] = wj - free;
        phases[Phase::Service.index()] = done - wj;
        return RequestTrace {
            id,
            outcome: Outcome::Served {
                replica: winner,
                via,
            },
            start_us: start,
            end_us: done,
            phases,
            dispatches,
            hedged: p.hedged,
            batch,
            wasted_us: p.wasted_us,
            reported_latency_s: latency,
        };
    }

    // Non-served terminals: attribute the whole interval to the edge that
    // ended it so the conservation sum still telescopes.
    let (outcome, end, slot) = if let Some(&ts) = p.lost.last() {
        (Outcome::Lost, ts, Phase::RetryWait)
    } else if let Some(&ts) = p.shed.last() {
        (Outcome::Shed, ts, Phase::Admit)
    } else if let Some(&ts) = p.unavailable.last() {
        (Outcome::Unavailable, ts, Phase::Admit)
    } else {
        // Defensive: a request with events but no terminal (should not
        // happen after drain) renders as lost at its last event.
        (Outcome::Lost, p.last_ts.max(start), Phase::RetryWait)
    };
    let end = end.max(start);
    phases[slot.index()] = end - start;
    RequestTrace {
        id,
        outcome,
        start_us: start,
        end_us: end,
        phases,
        dispatches,
        hedged: p.hedged,
        batch: None,
        wasted_us: p.wasted_us,
        reported_latency_s: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{self, FlushTrigger, SpanContext};
    use dl_obs::{fields, Recorder, TimelineRecorder};

    /// Hand-built stream: request 0 sails through (admit → join → done),
    /// request 1 is hedged after queueing and the hedge copy wins,
    /// request 2 is shed on arrival.
    fn synthetic_stream() -> Vec<Event> {
        let rec = TimelineRecorder::new();
        let r = |n: u64| n; // request ids
        // t=0: both requests admitted on replica 0.
        rec.instant(0, names::ADMIT, fields! { "request" => r(0), "replica" => 0usize });
        rec.instant(0, names::ADMIT, fields! { "request" => r(1), "replica" => 0usize });
        // t=10µs: replica 0 flushes a batch holding only request 0.
        rec.clock().advance(10e-6);
        let span = rec.span_start(0, names::BATCH_SPAN, fields! { "replica" => 0usize });
        context::emit_batch_join(&rec, 0, 0, 0, 0, 0, 1, FlushTrigger::Aged);
        // t=40µs: batch done; request 0 completes.
        rec.clock().advance(30e-6);
        rec.span_end(span, fields! { "replica" => 0usize });
        rec.instant(
            0,
            names::COMPLETE,
            fields! { "request" => r(0), "replica" => 0usize, "latency_s" => 40e-6 },
        );
        // t=50µs: request 1 hedged to replica 1 (attempt 1).
        rec.clock().advance(10e-6);
        context::emit_dispatch(&rec, 4, SpanContext::new(1).retry(), 1, DispatchKind::Hedge);
        rec.instant(4, names::ADMIT, fields! { "request" => r(1), "replica" => 1usize });
        // t=60µs: replica 1 batches it immediately.
        rec.clock().advance(10e-6);
        let span = rec.span_start(4, names::BATCH_SPAN, fields! { "replica" => 1usize });
        context::emit_batch_join(&rec, 4, 1, 1, 0, 0, 1, FlushTrigger::Full);
        // t=90µs: hedge copy wins.
        rec.clock().advance(30e-6);
        rec.span_end(span, fields! { "replica" => 1usize });
        rec.instant(
            4,
            names::COMPLETE,
            fields! { "request" => r(1), "replica" => 1usize, "latency_s" => 90e-6 },
        );
        // t=100µs: the straggling original finally finishes and loses.
        rec.clock().advance(10e-6);
        context::emit_hedge_loser(&rec, 0, 1, 0, 100e-6);
        // Request 2 arrives late and is shed instantly.
        rec.instant(0, names::SHED, fields! { "request" => r(2), "replica" => 0usize });
        rec.events()
    }

    #[test]
    fn reconstruction_recovers_phases_and_outcomes() {
        let set = TraceSet::reconstruct(&synthetic_stream());
        assert_eq!(set.requests.len(), 3);
        assert_eq!(
            set.counts,
            OutcomeCounts {
                served: 2,
                shed: 1,
                lost: 0,
                unavailable: 0
            }
        );
        set.verify_conservation().unwrap();
        set.matches_report(2, 1, 0, 0).unwrap();

        let t0 = &set.requests[0];
        assert_eq!(
            t0.outcome,
            Outcome::Served {
                replica: 0,
                via: DispatchKind::Primary
            }
        );
        assert_eq!(t0.e2e_us(), 40);
        // No prior batch on replica 0 → the wait before the flush is all
        // batch-wait (device was free the whole time).
        assert_eq!(t0.phase_us(Phase::Queue), 0);
        assert_eq!(t0.phase_us(Phase::BatchWait), 10);
        assert_eq!(t0.phase_us(Phase::Service), 30);
        assert_eq!(t0.batch.as_ref().unwrap().trigger, "aged");

        let t1 = &set.requests[1];
        assert_eq!(
            t1.outcome,
            Outcome::Served {
                replica: 1,
                via: DispatchKind::Hedge
            }
        );
        assert!(t1.hedged);
        assert_eq!(t1.e2e_us(), 90);
        assert_eq!(t1.phase_us(Phase::HedgeWait), 50);
        assert_eq!(t1.phase_us(Phase::BatchWait), 10);
        assert_eq!(t1.phase_us(Phase::Service), 30);
        assert_eq!(t1.wasted_us, 100);

        let t2 = &set.requests[2];
        assert_eq!(t2.outcome, Outcome::Shed);
        assert_eq!(t2.e2e_us(), 0);
    }

    #[test]
    fn queue_time_comes_from_the_previous_batch_end() {
        let rec = TimelineRecorder::new();
        // Request 0 occupies the device; request 1 arrives mid-batch and
        // must first queue behind it, then waits out the batch delay.
        rec.instant(0, names::ADMIT, fields! { "request" => 0u64, "replica" => 0usize });
        let span = rec.span_start(0, names::BATCH_SPAN, fields! { "replica" => 0usize });
        context::emit_batch_join(&rec, 0, 0, 0, 0, 0, 1, FlushTrigger::Full);
        rec.clock().advance(20e-6);
        rec.instant(0, names::ADMIT, fields! { "request" => 1u64, "replica" => 0usize });
        rec.clock().advance(30e-6); // device busy until t=50µs
        rec.span_end(span, fields! { "replica" => 0usize });
        rec.instant(
            0,
            names::COMPLETE,
            fields! { "request" => 0u64, "replica" => 0usize, "latency_s" => 50e-6 },
        );
        rec.clock().advance(15e-6); // batcher holds 15µs more
        let span = rec.span_start(0, names::BATCH_SPAN, fields! { "replica" => 0usize });
        context::emit_batch_join(&rec, 0, 1, 0, 1, 0, 1, FlushTrigger::Aged);
        rec.clock().advance(25e-6);
        rec.span_end(span, fields! { "replica" => 0usize });
        rec.instant(
            0,
            names::COMPLETE,
            fields! { "request" => 1u64, "replica" => 0usize, "latency_s" => 70e-6 },
        );

        let set = TraceSet::reconstruct(&rec.events());
        set.verify_conservation().unwrap();
        let t1 = &set.requests[1];
        assert_eq!(t1.e2e_us(), 70);
        assert_eq!(t1.phase_us(Phase::Queue), 30); // behind batch 0
        assert_eq!(t1.phase_us(Phase::BatchWait), 15); // batcher delay
        assert_eq!(t1.phase_us(Phase::Service), 25);
    }

    #[test]
    fn lost_requests_conserve_too() {
        let rec = TimelineRecorder::new();
        context::emit_dispatch(&rec, 0, SpanContext::new(3), 0, DispatchKind::Primary);
        rec.instant(0, names::ADMIT, fields! { "request" => 3u64, "replica" => 0usize });
        rec.clock().advance(42e-6);
        context::emit_lost(&rec, 0, SpanContext::new(3).retry());
        let set = TraceSet::reconstruct(&rec.events());
        assert_eq!(set.counts.lost, 1);
        set.verify_conservation().unwrap();
        let t = &set.requests[0];
        assert_eq!(t.outcome, Outcome::Lost);
        assert_eq!(t.e2e_us(), 42);
        assert_eq!(t.phase_us(Phase::RetryWait), 42);
    }
}
