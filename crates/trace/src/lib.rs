//! dl-trace: per-request causal tracing and tail-latency attribution
//! over the `dl-obs` event stream.
//!
//! The serving stack already narrates itself through [`dl_obs::Recorder`]
//! — admissions, batches, completions, crashes. This crate closes the
//! loop from that narration back to *individual requests*:
//!
//! 1. **Schema + propagation** ([`context`]): a stable [`RequestId`] and
//!    [`SpanContext`] that `dl_serve` carries across dispatches, plus
//!    `rec.enabled()`-gated emit helpers for the causal edges the engine
//!    did not previously name — dispatch decisions (primary / retry /
//!    hedge), batch membership, hedge dedup losses, terminal losses.
//! 2. **Collection** ([`tracer`]): [`Tracer`], a pure forwarding tap in
//!    the style of `dl_monitor::Monitor` — the inner recorder sees the
//!    exact untapped stream (byte-identical timelines), while the tap
//!    retains the per-request subset.
//! 3. **Reconstruction** ([`waterfall`]): [`TraceSet::reconstruct`]
//!    rebuilds each request's lifecycle into typed phases whose integer
//!    microsecond durations telescope *exactly* to the end-to-end
//!    latency, cross-checked against the engine report's own
//!    served/shed/lost/unavailable accounting.
//! 4. **Attribution** ([`attribution`]): p50/p99 decomposition by phase
//!    and by replica, top-k slowest waterfalls, a byte-stable JSON
//!    export, and Chrome flow arrows for router→replica handoffs and
//!    hedge races.
//!
//! Everything runs on the deterministic virtual clock; a traced run is
//! bit-identical to an untraced one because tracing only ever *observes*
//! the recorder stream, never the simulation state.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod attribution;
pub mod context;
pub mod tracer;
pub mod waterfall;

pub use attribution::{
    by_replica, flows, phase_breakdown, render_requests, render_waterfall, requests_json, slowest,
    tail_mean_phase_us, PhaseBreakdown, ReplicaBreakdown,
};
pub use context::{
    emit_batch_join, emit_dispatch, emit_hedge_loser, emit_lost, emit_unavailable, DispatchKind,
    FlushTrigger, RequestId, SpanContext,
};
pub use tracer::Tracer;
pub use waterfall::{
    BatchRef, Outcome, OutcomeCounts, Phase, RequestTrace, TraceSet, PHASE_COUNT,
};
