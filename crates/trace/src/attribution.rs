//! Tail-latency attribution over a reconstructed [`TraceSet`]: phase and
//! replica percentile tables, top-k slowest waterfalls, a byte-stable
//! JSON export, and Chrome flow arrows for cross-track handoffs.

use dl_obs::export::{fields_to_json, Flow, FlowPhase};
use dl_obs::{fields, Event, EventKind, Fields};

use crate::context::{names, DispatchKind};
use crate::waterfall::{Outcome, Phase, RequestTrace, TraceSet, PHASE_COUNT};

/// Nearest-rank quantile over an ascending-sorted slice (0 when empty).
fn quantile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
    sorted[idx]
}

/// p50/p99 decomposition of served latency by phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseBreakdown {
    /// Served requests the quantiles are over.
    pub count: usize,
    /// Per-phase p50 (µs), indexed in [`Phase::ALL`] order.
    pub p50_us: [u64; PHASE_COUNT],
    /// Per-phase p99 (µs), indexed in [`Phase::ALL`] order.
    pub p99_us: [u64; PHASE_COUNT],
    /// End-to-end p50 (µs).
    pub e2e_p50_us: u64,
    /// End-to-end p99 (µs).
    pub e2e_p99_us: u64,
}

/// Computes the per-phase and end-to-end latency quantiles over served
/// requests.
#[must_use]
pub fn phase_breakdown(set: &TraceSet) -> PhaseBreakdown {
    let served: Vec<&RequestTrace> = set.served().collect();
    let mut e2e: Vec<u64> = served.iter().map(|t| t.e2e_us()).collect();
    e2e.sort_unstable();
    let mut p50 = [0u64; PHASE_COUNT];
    let mut p99 = [0u64; PHASE_COUNT];
    for (i, phase) in Phase::ALL.iter().enumerate() {
        let mut xs: Vec<u64> = served.iter().map(|t| t.phase_us(*phase)).collect();
        xs.sort_unstable();
        p50[i] = quantile_us(&xs, 0.50);
        p99[i] = quantile_us(&xs, 0.99);
    }
    PhaseBreakdown {
        count: served.len(),
        p50_us: p50,
        p99_us: p99,
        e2e_p50_us: quantile_us(&e2e, 0.50),
        e2e_p99_us: quantile_us(&e2e, 0.99),
    }
}

/// Per-replica slice of the served latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaBreakdown {
    /// Replica index.
    pub replica: u32,
    /// Requests this replica served (won).
    pub served: usize,
    /// End-to-end p50 of requests it served (µs).
    pub e2e_p50_us: u64,
    /// End-to-end p99 of requests it served (µs).
    pub e2e_p99_us: u64,
    /// Queue-phase p99 of requests it served (µs).
    pub queue_p99_us: u64,
    /// Service-phase p99 of requests it served (µs).
    pub service_p99_us: u64,
}

/// Groups served requests by winning replica and summarizes each slice,
/// sorted by replica index.
#[must_use]
pub fn by_replica(set: &TraceSet) -> Vec<ReplicaBreakdown> {
    let mut groups: std::collections::BTreeMap<u32, Vec<&RequestTrace>> = Default::default();
    for t in set.served() {
        if let Outcome::Served { replica, .. } = t.outcome {
            groups.entry(replica).or_default().push(t);
        }
    }
    groups
        .into_iter()
        .map(|(replica, ts)| {
            let mut e2e: Vec<u64> = ts.iter().map(|t| t.e2e_us()).collect();
            let mut queue: Vec<u64> = ts.iter().map(|t| t.phase_us(Phase::Queue)).collect();
            let mut service: Vec<u64> = ts.iter().map(|t| t.phase_us(Phase::Service)).collect();
            e2e.sort_unstable();
            queue.sort_unstable();
            service.sort_unstable();
            ReplicaBreakdown {
                replica,
                served: ts.len(),
                e2e_p50_us: quantile_us(&e2e, 0.50),
                e2e_p99_us: quantile_us(&e2e, 0.99),
                queue_p99_us: quantile_us(&queue, 0.99),
                service_p99_us: quantile_us(&service, 0.99),
            }
        })
        .collect()
}

/// The `k` slowest requests by end-to-end time (all outcomes), slowest
/// first; ties break toward the lower request id, so the order is
/// deterministic.
#[must_use]
pub fn slowest(set: &TraceSet, k: usize) -> Vec<&RequestTrace> {
    let mut all: Vec<&RequestTrace> = set.requests.iter().collect();
    all.sort_by(|a, b| b.e2e_us().cmp(&a.e2e_us()).then(a.id.cmp(&b.id)));
    all.truncate(k);
    all
}

/// Mean phase composition (µs) over the slowest `frac` of served
/// requests (at least one), plus how many requests that tail holds.
/// This is the number that answers "where does the p99 live": compare
/// the tail's queue vs service mass across routing policies.
#[must_use]
pub fn tail_mean_phase_us(set: &TraceSet, frac: f64) -> ([f64; PHASE_COUNT], usize) {
    let mut served: Vec<&RequestTrace> = set.served().collect();
    served.sort_by(|a, b| b.e2e_us().cmp(&a.e2e_us()).then(a.id.cmp(&b.id)));
    if served.is_empty() {
        return ([0.0; PHASE_COUNT], 0);
    }
    let n = ((frac * served.len() as f64).ceil() as usize).clamp(1, served.len());
    let mut mean = [0.0f64; PHASE_COUNT];
    for t in &served[..n] {
        for (i, m) in mean.iter_mut().enumerate() {
            *m += t.phases[i] as f64;
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    (mean, n)
}

fn fmt_us(us: u64) -> String {
    format!("{:.1}", us as f64)
}

/// Renders one request's ASCII waterfall (indent two spaces per line).
/// Zero-duration phases are elided from the bar rows.
#[must_use]
pub fn render_waterfall(t: &RequestTrace, rank: usize) -> String {
    const WIDTH: u64 = 40;
    let mut out = String::new();
    let head = match t.outcome {
        Outcome::Served { replica, via } => format!("served@r{replica} via {}", via.label()),
        _ => t.outcome.label().to_string(),
    };
    let batch = t
        .batch
        .as_ref()
        .map(|b| {
            format!(
                "  batch r{}#{} [{}/{}] {}",
                b.replica,
                b.seq,
                b.pos + 1,
                b.size,
                b.trigger
            )
        })
        .unwrap_or_default();
    let wasted = if t.wasted_us > 0 {
        format!("  wasted {}µs", fmt_us(t.wasted_us))
    } else {
        String::new()
    };
    out.push_str(&format!(
        "  #{rank} req {}  {}µs  {head}{batch}{wasted}\n",
        t.id,
        fmt_us(t.e2e_us())
    ));
    let e2e = t.e2e_us();
    if e2e == 0 {
        out.push_str("     (instantaneous)\n");
        return out;
    }
    let mut offset = 0u64;
    for phase in Phase::ALL {
        let dur = t.phase_us(phase);
        if dur == 0 {
            continue;
        }
        let start = (offset * WIDTH / e2e).min(WIDTH - 1);
        let end = (((offset + dur) * WIDTH).div_ceil(e2e)).clamp(start + 1, WIDTH);
        let mut bar = String::with_capacity(WIDTH as usize);
        for col in 0..WIDTH {
            bar.push(if col >= start && col < end { '#' } else { '.' });
        }
        out.push_str(&format!(
            "     {:<10} |{bar}| {:>9}µs\n",
            phase.label(),
            fmt_us(dur)
        ));
        offset += dur;
    }
    out
}

/// Renders the full per-request report: outcome tallies, the phase
/// decomposition table, per-replica slices, and the `k` slowest
/// waterfalls. Byte-stable for a fixed trace.
#[must_use]
pub fn render_requests(set: &TraceSet, k: usize) -> String {
    let mut out = String::new();
    let c = &set.counts;
    let hedged = set.requests.iter().filter(|t| t.hedged).count();
    let wasted_us: u64 = set.requests.iter().map(|t| t.wasted_us).sum();
    out.push_str(&format!(
        "requests: {} traced -> {} served, {} shed, {} lost, {} unavailable; {} hedged, {}µs wasted duplicates\n",
        set.requests.len(),
        c.served,
        c.shed,
        c.lost,
        c.unavailable,
        hedged,
        fmt_us(wasted_us)
    ));

    let pb = phase_breakdown(set);
    out.push_str(&format!(
        "\nphase decomposition over {} served requests (µs)\n",
        pb.count
    ));
    out.push_str(&format!("  {:<10} {:>10} {:>10}\n", "phase", "p50", "p99"));
    for (i, phase) in Phase::ALL.iter().enumerate() {
        out.push_str(&format!(
            "  {:<10} {:>10} {:>10}\n",
            phase.label(),
            fmt_us(pb.p50_us[i]),
            fmt_us(pb.p99_us[i])
        ));
    }
    out.push_str(&format!(
        "  {:<10} {:>10} {:>10}\n",
        "e2e",
        fmt_us(pb.e2e_p50_us),
        fmt_us(pb.e2e_p99_us)
    ));

    let replicas = by_replica(set);
    if !replicas.is_empty() {
        out.push_str("\nper-replica (µs)\n");
        out.push_str(&format!(
            "  {:<8} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
            "replica", "served", "e2e p50", "e2e p99", "queue p99", "svc p99"
        ));
        for r in &replicas {
            out.push_str(&format!(
                "  r{:<7} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
                r.replica,
                r.served,
                fmt_us(r.e2e_p50_us),
                fmt_us(r.e2e_p99_us),
                fmt_us(r.queue_p99_us),
                fmt_us(r.service_p99_us)
            ));
        }
    }

    let top = slowest(set, k);
    if !top.is_empty() {
        out.push_str(&format!("\ntop {} slowest requests\n", top.len()));
        for (i, t) in top.iter().enumerate() {
            out.push_str(&render_waterfall(t, i + 1));
        }
    }
    out
}

fn phases_fields(p50: &[u64; PHASE_COUNT]) -> Fields {
    let mut fields = Fields::new();
    for (i, phase) in Phase::ALL.iter().enumerate() {
        fields.push((phase.label().to_string(), p50[i].into()));
    }
    fields
}

/// Serializes the attribution report as one byte-stable JSON object
/// (sorted keys throughout): outcome tallies, per-phase p50/p99, the
/// per-replica table, and the `k` slowest requests with full phase
/// vectors.
#[must_use]
pub fn requests_json(set: &TraceSet, k: usize) -> String {
    let c = &set.counts;
    let pb = phase_breakdown(set);
    let mut out = String::new();
    out.push_str("{\"by_replica\":[");
    for (i, r) in by_replica(set).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&fields_to_json(&fields! {
            "replica" => r.replica,
            "served" => r.served,
            "e2e_p50_us" => r.e2e_p50_us,
            "e2e_p99_us" => r.e2e_p99_us,
            "queue_p99_us" => r.queue_p99_us,
            "service_p99_us" => r.service_p99_us,
        }));
    }
    out.push_str("],\"counts\":");
    out.push_str(&fields_to_json(&fields! {
        "served" => c.served,
        "shed" => c.shed,
        "lost" => c.lost,
        "unavailable" => c.unavailable,
    }));
    out.push_str(",\"e2e_p50_us\":");
    out.push_str(&pb.e2e_p50_us.to_string());
    out.push_str(",\"e2e_p99_us\":");
    out.push_str(&pb.e2e_p99_us.to_string());
    out.push_str(",\"phases_p50_us\":");
    out.push_str(&fields_to_json(&phases_fields(&pb.p50_us)));
    out.push_str(",\"phases_p99_us\":");
    out.push_str(&fields_to_json(&phases_fields(&pb.p99_us)));
    out.push_str(",\"top\":[");
    for (i, t) in slowest(set, k).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Keys split around "phases_us" so the assembled record stays in
        // sorted key order like every other object in this export.
        let mut pre = fields! {
            "e2e_us" => t.e2e_us(),
            "hedged" => t.hedged,
            "id" => t.id,
            "outcome" => t.outcome.label(),
        };
        if let Some(b) = &t.batch {
            pre.push((
                "batch".to_string(),
                format!("r{}#{}[{}/{}]{}", b.replica, b.seq, b.pos + 1, b.size, b.trigger).into(),
            ));
        }
        let mut post = fields! {
            "start_us" => t.start_us,
            "wasted_us" => t.wasted_us,
        };
        if let Outcome::Served { replica, via } = t.outcome {
            post.push(("replica".to_string(), replica.into()));
            post.push(("via".to_string(), via.label().into()));
        }
        let pre_json = fields_to_json(&pre);
        let post_json = fields_to_json(&post);
        out.push_str(&pre_json[..pre_json.len() - 1]);
        out.push_str(",\"phases_us\":");
        out.push_str(&fields_to_json(&phases_fields(&t.phases)));
        out.push(',');
        out.push_str(&post_json[1..]);
    }
    out.push_str("]}");
    out
}

/// Derives Chrome flow arrows from a trace stream: one `serve.route`
/// arrow per explicit dispatch edge to the admit it caused (router →
/// replica), and one `serve.hedge` arrow from the request's previous
/// lifecycle event to each hedge dispatch (origin branch → duplicate),
/// which is the cross-track link that makes hedge races legible in
/// Perfetto.
#[must_use]
pub fn flows(events: &[Event]) -> Vec<Flow> {
    struct Mark {
        idx: usize,
        ts: u64,
        track: u32,
        replica: u32,
    }
    let mut admits: std::collections::BTreeMap<u64, Vec<Mark>> = Default::default();
    let mut dispatches: std::collections::BTreeMap<u64, Vec<(Mark, DispatchKind)>> =
        Default::default();
    for (idx, event) in events.iter().enumerate() {
        if event.kind != EventKind::Instant {
            continue;
        }
        let relevant = matches!(event.name.as_str(), names::DISPATCH | names::ADMIT | names::DOWNGRADE);
        if !relevant {
            continue;
        }
        let (Some(id), Some(replica)) = (
            event.fields.iter().find(|(k, _)| k == "request").and_then(|(_, v)| v.as_u64()),
            event.fields.iter().find(|(k, _)| k == "replica").and_then(|(_, v)| v.as_u64()),
        ) else {
            continue;
        };
        let mark = Mark {
            idx,
            ts: event.ts_micros,
            track: event.track,
            replica: replica as u32,
        };
        if event.name == names::DISPATCH {
            let kind = event
                .fields
                .iter()
                .find(|(k, _)| k == "kind")
                .and_then(|(_, v)| v.as_str())
                .and_then(DispatchKind::parse)
                .unwrap_or(DispatchKind::Primary);
            dispatches.entry(id).or_default().push((mark, kind));
        } else {
            admits.entry(id).or_default().push(mark);
        }
    }

    let mut out = Vec::new();
    let mut arrow = 0u64;
    let push_pair = |out: &mut Vec<Flow>, arrow: &mut u64, name: &str, a: (u64, u32), b: (u64, u32)| {
        *arrow += 1;
        out.push(Flow {
            id: *arrow,
            name: name.to_string(),
            ts_micros: a.0,
            track: a.1,
            phase: FlowPhase::Start,
        });
        out.push(Flow {
            id: *arrow,
            name: name.to_string(),
            ts_micros: b.0,
            track: b.1,
            phase: FlowPhase::Finish,
        });
    };
    for (id, ds) in &dispatches {
        let req_admits = admits.get(id);
        for (d, kind) in ds {
            // Route arrow: dispatch → the first admit it caused (same
            // replica, later in record order).
            if let Some(a) = req_admits.and_then(|v| {
                v.iter().find(|a| a.replica == d.replica && a.idx > d.idx)
            }) {
                push_pair(&mut out, &mut arrow, "serve.route", (d.ts, d.track), (a.ts, a.track));
            }
            // Hedge arrow: the origin branch's latest prior admit → the
            // duplicate's dispatch.
            if *kind == DispatchKind::Hedge {
                if let Some(origin) = req_admits.and_then(|v| {
                    v.iter().rev().find(|a| a.idx < d.idx)
                }) {
                    push_pair(
                        &mut out,
                        &mut arrow,
                        "serve.hedge",
                        (origin.ts, origin.track),
                        (d.ts, d.track),
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{self, FlushTrigger, SpanContext};
    use dl_obs::{Recorder, TimelineRecorder};

    fn sample_set() -> TraceSet {
        let rec = TimelineRecorder::new();
        for id in 0u64..4 {
            rec.instant(0, names::ADMIT, fields! { "request" => id, "replica" => 0usize });
        }
        rec.clock().advance(10e-6);
        let span = rec.span_start(0, names::BATCH_SPAN, fields! { "replica" => 0usize });
        for id in 0u64..4 {
            context::emit_batch_join(&rec, 0, id, 0, 0, id as usize, 4, FlushTrigger::Full);
        }
        rec.clock().advance(30e-6);
        rec.span_end(span, fields! { "replica" => 0usize });
        for id in 0u64..4 {
            rec.instant(
                0,
                names::COMPLETE,
                fields! { "request" => id, "replica" => 0usize, "latency_s" => 40e-6 },
            );
        }
        TraceSet::reconstruct(&rec.events())
    }

    #[test]
    fn breakdown_and_render_are_stable() {
        let set = sample_set();
        let pb = phase_breakdown(&set);
        assert_eq!(pb.count, 4);
        assert_eq!(pb.e2e_p50_us, 40);
        assert_eq!(pb.e2e_p99_us, 40);
        assert_eq!(pb.p99_us[Phase::Service as usize], 30);
        let reps = by_replica(&set);
        assert_eq!(reps.len(), 1);
        assert_eq!(reps[0].served, 4);
        let rendered = render_requests(&set, 2);
        assert_eq!(rendered, render_requests(&set, 2), "render must be stable");
        assert!(rendered.contains("4 served"));
        assert!(rendered.contains("service"));
        assert!(rendered.contains("#1 req 0"));
        let json = requests_json(&set, 2);
        assert_eq!(json, requests_json(&set, 2), "json must be byte-stable");
        assert!(json.starts_with("{\"by_replica\":["));
        assert!(json.contains("\"counts\":{\"lost\":0,\"served\":4,\"shed\":0,\"unavailable\":0}"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn tail_mean_focuses_on_the_slowest() {
        let set = sample_set();
        let (mean, n) = tail_mean_phase_us(&set, 0.25);
        assert_eq!(n, 1);
        let total: f64 = mean.iter().sum();
        assert!((total - 40.0).abs() < 1e-9);
    }

    #[test]
    fn flows_pair_dispatch_with_admit_and_hedge_with_origin() {
        let rec = TimelineRecorder::new();
        rec.instant(0, names::ADMIT, fields! { "request" => 7u64, "replica" => 0usize });
        rec.clock().advance(5e-6);
        context::emit_dispatch(&rec, 4, SpanContext::new(7).retry(), 1, DispatchKind::Hedge);
        rec.instant(4, names::ADMIT, fields! { "request" => 7u64, "replica" => 1usize });
        let arrows = flows(&rec.events());
        // One route arrow (hedge dispatch → its admit) and one hedge
        // arrow (origin admit → hedge dispatch): 2 arrows, 4 edges.
        assert_eq!(arrows.len(), 4);
        assert_eq!(arrows[0].name, "serve.route");
        assert_eq!(arrows[2].name, "serve.hedge");
        assert_eq!(arrows[2].track, 0);
        assert_eq!(arrows[3].track, 4);
        // Ids pair start/finish edges.
        assert_eq!(arrows[0].id, arrows[1].id);
        assert_eq!(arrows[2].id, arrows[3].id);
        assert_ne!(arrows[0].id, arrows[2].id);
    }
}
