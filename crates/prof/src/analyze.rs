//! Trace analysis: time breakdowns, the distributed critical path, and
//! per-worker lost-time attribution from a recorded event stream.
//!
//! The input is the event vector of a `dl_obs::TimelineRecorder` after an
//! instrumented run (`local_sgd_traced`, `resilient_local_sgd_traced`, a
//! traced training loop). Because drivers advance the shared
//! [`VirtualClock`](dl_obs::VirtualClock) exactly when they account
//! simulated seconds, the gaps *between* events carry as much information
//! as the spans: a gap ending at a `sync_round` start is worker compute, a
//! gap ending at a `crash` instant is failure detection, a gap ending at a
//! `rollback` is checkpoint restore.
//!
//! [`analyze`] walks one run's events in order and classifies every
//! interval into compute / sync / checkpoint / recovery / replay, then
//! attributes recovery and replay time to the worker whose crash caused
//! it — the "worker 3 contributed 41% of the lost time across its 4
//! crashes" view of E22.

use dl_obs::recorder::{Event, EventKind};
use dl_obs::{fields, FieldValue, Fields, ToFields};
use std::collections::BTreeMap;

/// Aggregate of all spans sharing one name.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "span statistics are pure data; dropping them discards the analysis"]
pub struct SpanStat {
    /// Span name (`sync_round`, `checkpoint_write`, ...).
    pub name: String,
    /// Number of completed spans.
    pub count: usize,
    /// Total simulated seconds inside these spans.
    pub seconds: f64,
}

/// Lost time attributed to one worker's failures.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "worker attribution is pure data; dropping it discards the analysis"]
pub struct WorkerLostTime {
    /// Worker index.
    pub worker: u64,
    /// Crashes this worker suffered.
    pub crashes: usize,
    /// Rejoins this worker performed.
    pub rejoins: usize,
    /// Seconds of detection, restore, and regroup caused by this worker.
    pub recovery_seconds: f64,
    /// Seconds of re-executed training caused by this worker's rollbacks.
    pub replay_seconds: f64,
    /// This worker's share of all lost time in the run (`0..=1`).
    pub share: f64,
}

impl WorkerLostTime {
    /// Total seconds this worker's failures cost the run.
    pub fn lost_seconds(&self) -> f64 {
        self.recovery_seconds + self.replay_seconds
    }
}

impl ToFields for WorkerLostTime {
    fn to_fields(&self) -> Fields {
        fields! {
            "worker" => self.worker,
            "crashes" => self.crashes,
            "rejoins" => self.rejoins,
            "recovery_seconds" => self.recovery_seconds,
            "replay_seconds" => self.replay_seconds,
            "lost_seconds" => self.lost_seconds(),
            "share" => self.share,
        }
    }
}

/// Full decomposition of one run's wall time.
#[derive(Debug, Clone, Default)]
#[must_use = "a trace profile is pure data; dropping it discards the analysis"]
pub struct TraceProfile {
    /// Wall-clock (simulated) duration of the analyzed window.
    pub total_seconds: f64,
    /// Seconds workers spent computing gradients (gaps leading into sync
    /// rounds and run tails).
    pub compute_seconds: f64,
    /// Seconds inside `sync_round` spans making *new* progress (includes
    /// allreduce retries, which happen inside the round).
    pub sync_seconds: f64,
    /// Seconds inside `checkpoint_write` spans.
    pub checkpoint_seconds: f64,
    /// Seconds of failure handling: detection + regroup before a `crash`
    /// instant, restore before a `rollback`, regroup/restore before a
    /// `rejoin`.
    pub recovery_seconds: f64,
    /// Seconds re-executing steps a rollback discarded (sync rounds whose
    /// `step` was already seen, plus the compute leading into them).
    pub replay_seconds: f64,
    /// `allreduce_retry` instants observed.
    pub retry_count: usize,
    /// `crash` instants observed.
    pub crash_count: usize,
    /// `rollback` instants observed.
    pub rollback_count: usize,
    /// Per-span-name aggregates (sorted by name).
    pub spans: Vec<SpanStat>,
    /// Per-worker lost-time attribution, sorted by lost time descending.
    pub workers: Vec<WorkerLostTime>,
    /// Events in the analyzed window.
    pub events: usize,
}

impl TraceProfile {
    /// The coordinator's serialized overhead path: everything that is
    /// *not* parallel worker compute — synchronization, checkpointing,
    /// failure recovery, and replayed work. In a sync-dominated regime
    /// this path explains nearly all of the wall time.
    pub fn critical_path_seconds(&self) -> f64 {
        self.sync_seconds + self.checkpoint_seconds + self.recovery_seconds + self.replay_seconds
    }

    /// Fraction of wall time the critical path explains (`0..=1`).
    pub fn explained_fraction(&self) -> f64 {
        if self.total_seconds > 0.0 {
            self.critical_path_seconds() / self.total_seconds
        } else {
            0.0
        }
    }

    /// Seconds the run lost to failures (recovery + replay).
    pub fn lost_seconds(&self) -> f64 {
        self.recovery_seconds + self.replay_seconds
    }

    /// Wall time neither classified into a phase nor covered by a span —
    /// should be ~0; a large value means the trace schema drifted.
    pub fn unattributed_seconds(&self) -> f64 {
        (self.total_seconds
            - self.compute_seconds
            - self.sync_seconds
            - self.checkpoint_seconds
            - self.recovery_seconds
            - self.replay_seconds)
            .max(0.0)
    }
}

impl ToFields for TraceProfile {
    fn to_fields(&self) -> Fields {
        fields! {
            "total_seconds" => self.total_seconds,
            "compute_seconds" => self.compute_seconds,
            "sync_seconds" => self.sync_seconds,
            "checkpoint_seconds" => self.checkpoint_seconds,
            "recovery_seconds" => self.recovery_seconds,
            "replay_seconds" => self.replay_seconds,
            "critical_path_seconds" => self.critical_path_seconds(),
            "explained_fraction" => self.explained_fraction(),
            "lost_seconds" => self.lost_seconds(),
            "unattributed_seconds" => self.unattributed_seconds(),
            "crashes" => self.crash_count,
            "rollbacks" => self.rollback_count,
            "retries" => self.retry_count,
            "events" => self.events,
        }
    }
}

/// Extracts each top-level run window named `run_name` from a timeline
/// that may hold several runs back to back (a sweep traces every
/// configuration onto one recorder). Each returned slice spans from the
/// run's `SpanStart` through its matching `SpanEnd`, inclusive.
pub fn runs<'a>(events: &'a [Event], run_name: &str) -> Vec<&'a [Event]> {
    let mut out = Vec::new();
    let mut open: Option<usize> = None;
    let mut depth = 0usize;
    for (i, e) in events.iter().enumerate() {
        if e.name != run_name {
            continue;
        }
        match e.kind {
            EventKind::SpanStart => {
                if depth == 0 {
                    open = Some(i);
                }
                depth += 1;
            }
            EventKind::SpanEnd => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(start) = open.take() {
                        out.push(&events[start..=i]);
                    }
                }
            }
            _ => {}
        }
    }
    out
}

fn field_u64(fields: &Fields, key: &str) -> Option<u64> {
    fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
        FieldValue::U64(n) => Some(*n),
        FieldValue::I64(n) => u64::try_from(*n).ok(),
        _ => None,
    })
}

#[derive(Default)]
struct Attribution {
    crashes: usize,
    rejoins: usize,
    recovery: f64,
    replay: f64,
}

/// Analyzes one run's event window into a [`TraceProfile`].
///
/// Works on any trace that follows the workspace schema (`sync_round` /
/// `checkpoint_write` spans, `crash` / `rollback` / `rejoin` /
/// `allreduce_retry` instants); unknown spans still show up in
/// [`TraceProfile::spans`], and a trace with none of the known names
/// degenerates gracefully to "everything is compute".
pub fn analyze(events: &[Event]) -> TraceProfile {
    let mut profile = TraceProfile {
        events: events.len(),
        ..TraceProfile::default()
    };
    let (Some(first), Some(last)) = (events.first(), events.last()) else {
        return profile;
    };
    profile.total_seconds = micros_delta(first.ts_micros, last.ts_micros);

    let mut span_stats: BTreeMap<String, SpanStat> = BTreeMap::new();
    let mut attribution: BTreeMap<u64, Attribution> = BTreeMap::new();
    // Open-span bookkeeping: (name, track, start_ts, step field).
    let mut open_spans: Vec<(String, u32, u64, Option<u64>)> = Vec::new();
    let mut last_ts = first.ts_micros;
    // Step high-water mark: a sync round at or below it is re-execution.
    let mut max_step: Option<u64> = None;
    let mut replaying = false;
    let mut last_crash_worker: Option<u64> = None;

    // True when the gap before the current event belongs to an open leaf
    // span (sync_round retries, checkpoint writes) and is therefore
    // already covered by that span's duration.
    let in_leaf = |open: &[(String, u32, u64, Option<u64>)]| {
        open.iter()
            .any(|(n, ..)| n == "sync_round" || n == "checkpoint_write")
    };

    for event in events {
        let gap = micros_delta(last_ts, event.ts_micros);
        match event.kind {
            EventKind::SpanStart => {
                if !in_leaf(&open_spans) {
                    match event.name.as_str() {
                        "sync_round" => {
                            let step = field_u64(&event.fields, "step");
                            let is_replay = replaying
                                && matches!((step, max_step), (Some(s), Some(m)) if s <= m);
                            if is_replay {
                                profile.replay_seconds += gap;
                                credit_replay(&mut attribution, last_crash_worker, gap);
                            } else {
                                profile.compute_seconds += gap;
                            }
                        }
                        _ => profile.compute_seconds += gap,
                    }
                }
                let step = field_u64(&event.fields, "step");
                open_spans.push((event.name.clone(), event.track, event.ts_micros, step));
            }
            EventKind::SpanEnd => {
                let opened = open_spans
                    .iter()
                    .rposition(|(n, t, ..)| *n == event.name && *t == event.track);
                let Some(idx) = opened else {
                    last_ts = event.ts_micros;
                    continue;
                };
                let (name, _, start_ts, step) = open_spans.remove(idx);
                let duration = micros_delta(start_ts, event.ts_micros);
                let stat = span_stats.entry(name.clone()).or_insert_with(|| SpanStat {
                    name: name.clone(),
                    count: 0,
                    seconds: 0.0,
                });
                stat.count += 1;
                stat.seconds += duration;
                match name.as_str() {
                    "sync_round" => {
                        let is_replay =
                            replaying && matches!((step, max_step), (Some(s), Some(m)) if s <= m);
                        if is_replay {
                            profile.replay_seconds += duration;
                            credit_replay(&mut attribution, last_crash_worker, duration);
                        } else {
                            profile.sync_seconds += duration;
                            if let Some(s) = step {
                                if max_step.is_some_and(|m| s > m) || max_step.is_none() {
                                    max_step = Some(s);
                                }
                                replaying = false;
                            }
                        }
                    }
                    "checkpoint_write" => profile.checkpoint_seconds += duration,
                    _ => {
                        // A closing run/experiment span: the tail since the
                        // last event (final averaging, evaluation) is
                        // compute-side work, not overhead.
                        if !in_leaf(&open_spans) {
                            profile.compute_seconds += gap;
                        }
                    }
                }
            }
            EventKind::Instant => {
                let covered = in_leaf(&open_spans);
                match event.name.as_str() {
                    "crash" => {
                        profile.crash_count += 1;
                        let worker = field_u64(&event.fields, "worker").unwrap_or(0);
                        last_crash_worker = Some(worker);
                        let a = attribution.entry(worker).or_default();
                        a.crashes += 1;
                        if !covered {
                            profile.recovery_seconds += gap;
                            a.recovery += gap;
                        }
                    }
                    "rollback" => {
                        profile.rollback_count += 1;
                        replaying = true;
                        if !covered {
                            profile.recovery_seconds += gap;
                            if let Some(w) = last_crash_worker {
                                attribution.entry(w).or_default().recovery += gap;
                            }
                        }
                    }
                    "rejoin" => {
                        let worker = field_u64(&event.fields, "worker").unwrap_or(0);
                        let a = attribution.entry(worker).or_default();
                        a.rejoins += 1;
                        if !covered {
                            profile.recovery_seconds += gap;
                            a.recovery += gap;
                        }
                    }
                    "allreduce_retry" => profile.retry_count += 1,
                    _ => {
                        if !covered {
                            profile.compute_seconds += gap;
                        }
                    }
                }
            }
            EventKind::Counter => {} // sampled inside spans; no interval of its own
        }
        last_ts = event.ts_micros;
    }

    profile.spans = span_stats.into_values().collect();
    let total_lost: f64 = attribution.values().map(|a| a.recovery + a.replay).sum();
    profile.workers = attribution
        .into_iter()
        .map(|(worker, a)| WorkerLostTime {
            worker,
            crashes: a.crashes,
            rejoins: a.rejoins,
            recovery_seconds: a.recovery,
            replay_seconds: a.replay,
            share: if total_lost > 0.0 {
                (a.recovery + a.replay) / total_lost
            } else {
                0.0
            },
        })
        .collect();
    profile
        .workers
        .sort_by(|a, b| b.lost_seconds().total_cmp(&a.lost_seconds()));
    profile
}

fn credit_replay(attribution: &mut BTreeMap<u64, Attribution>, worker: Option<u64>, seconds: f64) {
    if let Some(w) = worker {
        attribution.entry(w).or_default().replay += seconds;
    }
}

fn micros_delta(from: u64, to: u64) -> f64 {
    to.saturating_sub(from) as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_obs::{Recorder, TimelineRecorder};

    /// Builds a miniature trace with the workspace schema: two clean sync
    /// rounds, a crash/rollback on worker 1, one replayed round, a
    /// checkpoint, and a rejoin.
    fn fault_trace() -> Vec<Event> {
        let rec = TimelineRecorder::new();
        let run = rec.span_start(0, "resilient_local_sgd", fields! { "workers" => 2usize });
        // round 0 (step 0): 1s compute, 2s sync
        rec.clock().advance(1.0);
        let s = rec.span_start(0, "sync_round", fields! { "round" => 0usize, "step" => 0usize });
        rec.clock().advance(2.0);
        rec.span_end(s, fields! {});
        // checkpoint: 0.5s
        let c = rec.span_start(0, "checkpoint_write", fields! { "step" => 1usize });
        rec.clock().advance(0.5);
        rec.span_end(c, fields! {});
        // round 1 (step 1): 1s compute, 2s sync
        rec.clock().advance(1.0);
        let s = rec.span_start(0, "sync_round", fields! { "round" => 1usize, "step" => 1usize });
        rec.clock().advance(2.0);
        rec.span_end(s, fields! {});
        // crash on worker 1: 3s detection, then 1s restore to rollback
        rec.clock().advance(3.0);
        rec.instant(2, "crash", fields! { "worker" => 1usize, "step" => 2usize });
        rec.clock().advance(1.0);
        rec.instant(
            0,
            "rollback",
            fields! { "from_step" => 2usize, "to_step" => 1usize, "lost_samples" => 16usize },
        );
        // replayed round (step 1 again): 1s compute, 2s sync
        rec.clock().advance(1.0);
        let s = rec.span_start(0, "sync_round", fields! { "round" => 2usize, "step" => 1usize });
        rec.clock().advance(2.0);
        rec.span_end(s, fields! {});
        // new progress (step 2): 1s compute, 2s sync
        rec.clock().advance(1.0);
        let s = rec.span_start(0, "sync_round", fields! { "round" => 3usize, "step" => 2usize });
        rec.clock().advance(2.0);
        rec.span_end(s, fields! {});
        // rejoin of worker 1 after 0.5s regroup, then run tail
        rec.clock().advance(0.5);
        rec.instant(2, "rejoin", fields! { "worker" => 1usize, "step" => 3usize, "source" => "checkpoint" });
        rec.clock().advance(0.25);
        rec.span_end(run, fields! {});
        rec.events()
    }

    #[test]
    fn decomposition_covers_the_whole_run() {
        let p = analyze(&fault_trace());
        assert!((p.total_seconds - 17.25).abs() < 1e-9);
        assert!((p.sync_seconds - 6.0).abs() < 1e-9, "3 live rounds x 2s");
        assert!((p.checkpoint_seconds - 0.5).abs() < 1e-9);
        assert!((p.recovery_seconds - 4.5).abs() < 1e-9, "3s detect + 1s restore + 0.5s rejoin");
        assert!((p.replay_seconds - 3.0).abs() < 1e-9, "replayed round + its compute");
        assert!((p.compute_seconds - 3.25).abs() < 1e-9, "3 fresh rounds + tail");
        assert!(p.unattributed_seconds() < 1e-9);
        assert_eq!(p.crash_count, 1);
        assert_eq!(p.rollback_count, 1);
    }

    #[test]
    fn lost_time_attributes_to_the_crashing_worker() {
        let p = analyze(&fault_trace());
        assert_eq!(p.workers.len(), 1);
        let w = &p.workers[0];
        assert_eq!(w.worker, 1);
        assert_eq!(w.crashes, 1);
        assert_eq!(w.rejoins, 1);
        assert!((w.lost_seconds() - 7.5).abs() < 1e-9);
        assert!((w.share - 1.0).abs() < 1e-12, "only crasher owns all lost time");
    }

    #[test]
    fn critical_path_excludes_parallel_compute() {
        let p = analyze(&fault_trace());
        let expected = p.sync_seconds + p.checkpoint_seconds + p.recovery_seconds + p.replay_seconds;
        assert!((p.critical_path_seconds() - expected).abs() < 1e-12);
        assert!(p.explained_fraction() > 0.0 && p.explained_fraction() < 1.0);
    }

    #[test]
    fn span_stats_aggregate_by_name() {
        let p = analyze(&fault_trace());
        let sync = p.spans.iter().find(|s| s.name == "sync_round").unwrap();
        assert_eq!(sync.count, 4);
        assert!((sync.seconds - 8.0).abs() < 1e-9);
        let ckpt = p.spans.iter().find(|s| s.name == "checkpoint_write").unwrap();
        assert_eq!(ckpt.count, 1);
    }

    #[test]
    fn runs_splits_back_to_back_windows() {
        let rec = TimelineRecorder::new();
        for i in 0..3 {
            let r = rec.span_start(0, "local_sgd", fields! { "run" => i as u64 });
            rec.clock().advance(1.0);
            rec.span_end(r, fields! {});
        }
        let events = rec.events();
        let windows = runs(&events, "local_sgd");
        assert_eq!(windows.len(), 3);
        assert!(windows.iter().all(|w| w.len() == 2));
        assert!(runs(&events, "missing").is_empty());
    }

    #[test]
    fn empty_trace_degenerates_to_zeros() {
        let p = analyze(&[]);
        assert_eq!(p.total_seconds, 0.0);
        assert_eq!(p.explained_fraction(), 0.0);
        assert!(p.workers.is_empty());
    }
}
