//! Measured per-layer cost profiles: what the tensor kernels actually did.
//!
//! [`NetworkProfile::profile`] drives one forward and one backward pass
//! through a network, opening a `dl_tensor::acct` scope around each layer,
//! and records the measured [`OpCost`] next to the static prediction from
//! `dl-nn::cost`. For dense layers on zero-free activations the forward
//! FLOPs agree *exactly* (both count `2·b·in·out` matmul work plus `b·out`
//! bias adds); ReLU-style activations and the sparse-matmul zero skip make
//! the measured numbers diverge from the model in documented, meaningful
//! ways — that divergence is the point of measuring.

use dl_nn::cost::{CostProfile, LayerCost};
use dl_nn::Network;
use dl_obs::{fields, Fields, Recorder, ToFields};
use dl_tensor::acct::{self, OpCost};
use dl_tensor::Tensor;

/// Measured cost of one layer: forward and backward kernel work, plus the
/// static model's prediction for the same layer and batch.
#[derive(Debug, Clone)]
#[must_use = "a layer profile is pure data; dropping it discards the measurement"]
pub struct LayerProfile {
    /// Position in the network (0-based).
    pub index: usize,
    /// Layer name (`dense`, `relu`, ...).
    pub name: String,
    /// Measured forward-pass cost.
    pub forward: OpCost,
    /// Measured backward-pass cost.
    pub backward: OpCost,
    /// The static model's prediction for this layer.
    pub modeled: LayerCost,
    /// Elements in this layer's output activation.
    pub output_elems: u64,
}

impl ToFields for LayerProfile {
    fn to_fields(&self) -> Fields {
        fields! {
            "layer" => self.index,
            "name" => self.name.as_str(),
            "fwd_flops" => self.forward.flops,
            "fwd_bytes" => self.forward.bytes_moved(),
            "bwd_flops" => self.backward.flops,
            "bwd_bytes" => self.backward.bytes_moved(),
            "modeled_fwd_flops" => self.modeled.forward_flops,
            "modeled_bwd_flops" => self.modeled.backward_flops,
            "output_elems" => self.output_elems,
        }
    }
}

/// Measured cost profile of a whole network at one batch size.
#[derive(Debug, Clone)]
#[must_use = "a network profile is pure data; dropping it discards the measurement"]
pub struct NetworkProfile {
    /// Batch size the profile was taken at.
    pub batch: usize,
    /// Per-layer measurements, in network order.
    pub layers: Vec<LayerProfile>,
    /// Total measured forward cost.
    pub forward: OpCost,
    /// Total measured backward cost.
    pub backward: OpCost,
    /// Parameter memory in bytes.
    pub param_bytes: u64,
    /// Input batch memory in bytes.
    pub input_bytes: u64,
    /// Peak live memory under store-all training: parameters + input +
    /// every layer's output held for backward. This is the figure the
    /// `dl-memsched` schedulers attack.
    pub peak_live_bytes: u64,
    /// The static model's aggregate prediction.
    pub modeled: CostProfile,
}

impl NetworkProfile {
    /// Profiles `net` on input `x` (shape `[batch, features]`): one
    /// forward pass and one backward pass from a unit output gradient,
    /// each layer inside its own accounting scope.
    ///
    /// The network is genuinely trained-on (caches fill, dropout steps),
    /// so profile a clone when the original must stay untouched.
    ///
    /// # Panics
    /// Panics when `x` is not rank 2.
    pub fn profile(net: &mut Network, x: &Tensor) -> Self {
        assert_eq!(x.rank(), 2, "profile input must be [batch, features]");
        let batch = x.dims()[0];
        let param_bytes = (net.param_count() * 4) as u64;
        let input_bytes = (x.len() * 4) as u64;

        let mut layers = Vec::new();
        let mut activation = x.clone();
        let mut input_dim = x.dims()[1];
        for (index, layer) in net.layers_mut().iter_mut().enumerate() {
            let (modeled, out_dim) = layer.cost(batch, input_dim);
            let (out, forward) = acct::measure(|| layer.forward(&activation, true));
            layers.push(LayerProfile {
                index,
                name: layer.name().to_string(),
                forward,
                backward: OpCost::default(),
                modeled,
                output_elems: out.len() as u64,
            });
            activation = out;
            input_dim = out_dim;
        }

        let mut grad = activation.map(|_| 1.0);
        // The map above charged a scope-less kernel; re-zero nothing —
        // accounting was off, so it cost nothing. Backward walk mirrors
        // the forward indices in reverse.
        for (index, layer) in net.layers_mut().iter_mut().enumerate().rev() {
            let (g, backward) = acct::measure(|| layer.backward(&grad));
            layers[index].backward = backward;
            grad = g;
        }

        let forward = layers
            .iter()
            .fold(OpCost::default(), |acc, l| acc.merge(l.forward));
        let backward = layers
            .iter()
            .fold(OpCost::default(), |acc, l| acc.merge(l.backward));
        let activation_bytes: u64 = layers.iter().map(|l| l.output_elems * 4).sum();
        let modeled = net.cost_profile(batch);
        NetworkProfile {
            batch,
            layers,
            forward,
            backward,
            param_bytes,
            input_bytes,
            peak_live_bytes: param_bytes + input_bytes + activation_bytes,
            modeled,
        }
    }

    /// Measured-over-modeled forward FLOP ratio (1.0 = exact agreement).
    pub fn forward_parity(&self) -> f64 {
        ratio(self.forward.flops, self.modeled.forward_flops)
    }

    /// Measured-over-modeled backward FLOP ratio. The static model uses
    /// the classic "backward = 2x forward" approximation, so a healthy
    /// measurement lands near, not at, 1.0.
    pub fn backward_parity(&self) -> f64 {
        ratio(self.backward.flops, self.modeled.backward_flops)
    }

    /// Total measured cost of one training step (forward + backward).
    pub fn train_step(&self) -> OpCost {
        self.forward.merge(self.backward)
    }

    /// The measured profile as per-layer [`LayerCost`]s, directly usable
    /// by the `dl-memsched` schedulers in place of the static model:
    /// FLOPs are measured, parameter and activation counts come from the
    /// layer geometry.
    pub fn measured_layer_costs(&self) -> Vec<LayerCost> {
        self.layers
            .iter()
            .map(|l| LayerCost {
                forward_flops: l.forward.flops,
                backward_flops: l.backward.flops,
                params: l.modeled.params,
                activation_elems: l.output_elems,
            })
            .collect()
    }

    /// Publishes the profile onto a recorder: aggregate counters under
    /// `prof.*` and one `layer_profile` instant per layer on track 0.
    pub fn emit(&self, rec: &dyn Recorder) {
        rec.counter(0, "prof.forward_flops", self.forward.flops);
        rec.counter(0, "prof.backward_flops", self.backward.flops);
        rec.counter(0, "prof.bytes_read", self.train_step().bytes_read);
        rec.counter(0, "prof.bytes_written", self.train_step().bytes_written);
        rec.counter(0, "prof.peak_live_bytes", self.peak_live_bytes);
        for layer in &self.layers {
            rec.instant(0, "layer_profile", layer.to_fields());
        }
    }
}

impl ToFields for NetworkProfile {
    fn to_fields(&self) -> Fields {
        fields! {
            "batch" => self.batch,
            "layers" => self.layers.len(),
            "fwd_flops" => self.forward.flops,
            "bwd_flops" => self.backward.flops,
            "bytes_read" => self.train_step().bytes_read,
            "bytes_written" => self.train_step().bytes_written,
            "param_bytes" => self.param_bytes,
            "peak_live_bytes" => self.peak_live_bytes,
            "modeled_fwd_flops" => self.modeled.forward_flops,
            "modeled_bwd_flops" => self.modeled.backward_flops,
            "fwd_parity" => self.forward_parity(),
            "bwd_parity" => self.backward_parity(),
        }
    }
}

fn ratio(measured: u64, modeled: u64) -> f64 {
    if modeled == 0 {
        if measured == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        measured as f64 / modeled as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_nn::layers::{Dense, Sigmoid};
    use dl_nn::Layer;
    use dl_tensor::init;

    fn sigmoid_mlp(dims: &[usize]) -> Network {
        // Sigmoid activations keep every activation strictly positive, so
        // the sparse-matmul zero skip never fires and dense forward FLOPs
        // match the static model exactly.
        let mut rng = init::rng(7);
        let mut net = Network::new(dims[0]);
        for w in dims.windows(2) {
            net = net
                .push(Layer::Dense(Dense::new(w[0], w[1], &mut rng)))
                .push(Layer::Sigmoid(Sigmoid::new()));
        }
        net
    }

    fn positive_input(batch: usize, features: usize) -> Tensor {
        Tensor::from_vec(
            (0..batch * features)
                .map(|i| 0.1 + (i % 13) as f32 * 0.07)
                .collect(),
            [batch, features],
        )
        .expect("valid input")
    }

    #[test]
    fn dense_forward_flops_match_static_model_exactly() {
        let mut net = sigmoid_mlp(&[6, 10, 4]);
        let x = positive_input(8, 6);
        let prof = NetworkProfile::profile(&mut net, &x);
        for layer in &prof.layers {
            if layer.name == "dense" {
                assert_eq!(
                    layer.forward.flops, layer.modeled.forward_flops,
                    "dense layer {} measured != modeled",
                    layer.index
                );
            }
        }
        assert_eq!(prof.layers.len(), 4);
        assert!(prof.forward.flops > 0);
    }

    #[test]
    fn backward_lands_in_the_2x_approximation_band() {
        let mut net = sigmoid_mlp(&[6, 10, 4]);
        let x = positive_input(8, 6);
        let prof = NetworkProfile::profile(&mut net, &x);
        let parity = prof.backward_parity();
        assert!(
            parity > 0.5 && parity < 1.5,
            "backward parity {parity} far from the 2x-forward approximation"
        );
    }

    #[test]
    fn peak_live_bytes_counts_params_input_and_activations() {
        let mut net = sigmoid_mlp(&[6, 10, 4]);
        let x = positive_input(8, 6);
        let prof = NetworkProfile::profile(&mut net, &x);
        // params: 6*10+10 + 10*4+4 = 114 -> 456 bytes; input 8*6*4 = 192;
        // activations: dense(8*10) + sigmoid(8*10) + dense(8*4) + sigmoid(8*4) = 224 elems
        assert_eq!(prof.param_bytes, 456);
        assert_eq!(prof.input_bytes, 192);
        assert_eq!(prof.peak_live_bytes, 456 + 192 + 224 * 4);
    }

    #[test]
    fn profiling_does_not_change_the_parameters() {
        let mut net = sigmoid_mlp(&[6, 10, 4]);
        let before = net.flat_params();
        let x = positive_input(8, 6);
        let _ = NetworkProfile::profile(&mut net, &x);
        assert_eq!(net.flat_params(), before);
    }

    #[test]
    fn measured_layer_costs_feed_memsched() {
        let mut net = sigmoid_mlp(&[6, 10, 4]);
        let x = positive_input(8, 6);
        let prof = NetworkProfile::profile(&mut net, &x);
        let costs = prof.measured_layer_costs();
        assert_eq!(costs.len(), 4);
        assert_eq!(
            costs.iter().map(|c| c.forward_flops).sum::<u64>(),
            prof.forward.flops
        );
        assert_eq!(costs[0].params, 6 * 10 + 10);
    }

    #[test]
    fn emit_publishes_counters_and_per_layer_instants() {
        let rec = dl_obs::TimelineRecorder::new();
        let mut net = sigmoid_mlp(&[6, 10, 4]);
        let x = positive_input(8, 6);
        let prof = NetworkProfile::profile(&mut net, &x);
        prof.emit(&rec);
        assert_eq!(rec.counters()["prof.forward_flops"], prof.forward.flops);
        let instants = rec
            .events()
            .iter()
            .filter(|e| e.name == "layer_profile")
            .count();
        assert_eq!(instants, 4);
    }
}
