//! Perf-regression baselines: snapshot an experiment's numeric results to
//! a `BENCH_<ID>.json` file and diff later runs against it under tolerance
//! bands.
//!
//! The store is deliberately independent of any serde machinery: files are
//! written with the same byte-stable encoding as the `dl-obs` exporters
//! (sorted keys, shortest round-trip floats) and read back with a small
//! recursive-descent parser, so a seeded run writes the identical file
//! every time and CI diffs are real drift, never formatting noise.

use dl_obs::{FieldValue, Fields};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// A snapshot of one experiment's numeric record set.
///
/// Metrics are flattened from the experiment's records as `r<i>.<key>`
/// (record index, then field name), keeping only values with a numeric
/// reading: integers and floats directly, booleans as 0/1. Strings and
/// non-finite floats are dropped — they cannot be band-compared.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "a baseline is pure data; save or diff it"]
pub struct Baseline {
    /// Experiment id (`e5`).
    pub id: String,
    /// Experiment title at snapshot time.
    pub title: String,
    /// Verdict line at snapshot time.
    pub verdict: String,
    /// Flattened numeric metrics, sorted by key.
    pub metrics: BTreeMap<String, f64>,
}

/// Tolerance bands for [`Baseline::diff`]: a metric drifts when
/// `|current - baseline| > abs + rel * |baseline|`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative band (fraction of the baseline magnitude).
    pub rel: f64,
    /// Absolute band, the floor for near-zero baselines.
    pub abs: f64,
}

impl Default for Tolerance {
    /// 2% relative with a tiny absolute floor — tight enough to catch a
    /// real perf change, loose enough to ignore float formatting jitter.
    fn default() -> Self {
        Tolerance { rel: 0.02, abs: 1e-9 }
    }
}

impl Tolerance {
    /// Whether `current` is outside the band around `baseline`.
    #[must_use]
    pub fn exceeded(&self, baseline: f64, current: f64) -> bool {
        (current - baseline).abs() > self.abs + self.rel * baseline.abs()
    }
}

/// One metric that moved outside its tolerance band, or appeared/vanished.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "a drift is a detected regression; report it"]
pub struct Drift {
    /// Flattened metric key (`r0.accuracy`).
    pub key: String,
    /// Baseline value (`None` when the metric is new).
    pub baseline: Option<f64>,
    /// Current value (`None` when the metric vanished).
    pub current: Option<f64>,
}

impl Drift {
    /// Relative change against the baseline, when both sides exist.
    #[must_use]
    pub fn relative(&self) -> Option<f64> {
        match (self.baseline, self.current) {
            (Some(b), Some(c)) if b != 0.0 => Some((c - b) / b.abs()),
            _ => None,
        }
    }

    /// Human-oriented one-line description.
    #[must_use]
    pub fn describe(&self) -> String {
        match (self.baseline, self.current) {
            (Some(b), Some(c)) => {
                let pct = self
                    .relative()
                    .map(|r| format!(" ({:+.2}%)", r * 100.0))
                    .unwrap_or_default();
                format!("{}: {b} -> {c}{pct}", self.key)
            }
            (None, Some(c)) => format!("{}: new metric (= {c})", self.key),
            (Some(b), None) => format!("{}: vanished (was {b})", self.key),
            (None, None) => format!("{}: empty drift", self.key),
        }
    }
}

impl Baseline {
    /// Builds a baseline from an experiment's records, flattening each
    /// record `i`'s field `k` to metric `r<i>.<k>`.
    pub fn from_records(id: &str, title: &str, verdict: &str, records: &[Fields]) -> Self {
        let mut metrics = BTreeMap::new();
        for (i, record) in records.iter().enumerate() {
            for (key, value) in record {
                let numeric = match value {
                    FieldValue::Bool(b) => Some(f64::from(u8::from(*b))),
                    FieldValue::Str(_) => None,
                    other => other.as_f64(),
                };
                if let Some(v) = numeric.filter(|v| v.is_finite()) {
                    metrics.insert(format!("r{i}.{key}"), v);
                }
            }
        }
        Baseline {
            id: id.to_string(),
            title: title.to_string(),
            verdict: verdict.to_string(),
            metrics,
        }
    }

    /// The canonical file name for an experiment id: `e5` ->
    /// `BENCH_E05.json`, `a1` -> `BENCH_A01.json`.
    #[must_use]
    pub fn file_name(id: &str) -> String {
        let (letters, digits): (String, String) =
            id.chars().partition(|c| !c.is_ascii_digit());
        let number: u64 = digits.parse().unwrap_or(0);
        format!("BENCH_{}{number:02}.json", letters.to_ascii_uppercase())
    }

    /// The baseline path for `id` inside `dir`.
    #[must_use]
    pub fn path_for(dir: &Path, id: &str) -> PathBuf {
        dir.join(Self::file_name(id))
    }

    /// Byte-stable JSON encoding: fixed key order, sorted metrics,
    /// shortest round-trip float formatting.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"id\": {},", json_string(&self.id));
        out.push_str("  \"metrics\": {");
        for (i, (key, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", json_string(key), json_number(*value));
        }
        if !self.metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        let _ = writeln!(out, "  \"title\": {},", json_string(&self.title));
        let _ = writeln!(out, "  \"verdict\": {}", json_string(&self.verdict));
        out.push_str("}\n");
        out
    }

    /// Parses a baseline from its JSON encoding (accepts any standard JSON
    /// with the expected shape, not just [`Baseline::to_json`] output).
    ///
    /// # Errors
    /// Returns a description of the first syntax or shape problem.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = json::parse(text)?;
        let obj = value.as_object().ok_or("baseline root must be an object")?;
        let str_field = |key: &str| -> Result<String, String> {
            obj.iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let mut metrics = BTreeMap::new();
        let metric_obj = obj
            .iter()
            .find(|(k, _)| k == "metrics")
            .and_then(|(_, v)| v.as_object())
            .ok_or("missing object field \"metrics\"")?;
        for (key, value) in metric_obj {
            let number = value
                .as_f64()
                .ok_or_else(|| format!("metric {key:?} is not a number"))?;
            metrics.insert(key.clone(), number);
        }
        Ok(Baseline {
            id: str_field("id")?,
            title: str_field("title")?,
            verdict: str_field("verdict")?,
            metrics,
        })
    }

    /// Writes the baseline to its canonical file inside `dir`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = Self::path_for(dir, &self.id);
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Loads the baseline for `id` from `dir`.
    ///
    /// # Errors
    /// Fails when the file is missing or malformed.
    pub fn load(dir: &Path, id: &str) -> io::Result<Self> {
        let path = Self::path_for(dir, id);
        let text = std::fs::read_to_string(&path)?;
        Self::from_json(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", path.display())))
    }

    /// Diffs `current` against this baseline: every metric outside
    /// `tolerance`, plus metrics that appeared or vanished. Empty result
    /// means no regression.
    pub fn diff(&self, current: &Baseline, tolerance: Tolerance) -> Vec<Drift> {
        let mut drifts = Vec::new();
        for (key, &base) in &self.metrics {
            match current.metrics.get(key) {
                Some(&cur) if !tolerance.exceeded(base, cur) => {}
                Some(&cur) => drifts.push(Drift {
                    key: key.clone(),
                    baseline: Some(base),
                    current: Some(cur),
                }),
                None => drifts.push(Drift {
                    key: key.clone(),
                    baseline: Some(base),
                    current: None,
                }),
            }
        }
        for (key, &cur) in &current.metrics {
            if !self.metrics.contains_key(key) {
                drifts.push(Drift {
                    key: key.clone(),
                    baseline: None,
                    current: Some(cur),
                });
            }
        }
        drifts
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string() // non-finite values are filtered before save; belt and braces
    }
}

/// Minimal recursive-descent JSON reader — objects, strings, numbers,
/// bools, null, arrays — enough to load baseline files without serde.
mod json {
    /// Parsed JSON value (arrays are read but unused by baselines).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number.
        Number(f64),
        /// A string.
        Str(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, preserving insertion order.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The value as an object's entry list, when it is one.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(entries) => Some(entries),
                _ => None,
            }
        }

        /// The value as a string slice, when it is one.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as a float (numbers only; bools/strings do not coerce).
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }
    }

    /// Parses `text` as a single JSON value.
    ///
    /// # Errors
    /// Returns a message naming the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&byte) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_literal(
        bytes: &[u8],
        pos: &mut usize,
        literal: &str,
        value: Value,
    ) -> Result<Value, String> {
        if bytes[*pos..].starts_with(literal.as_bytes()) {
            *pos += literal.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", *pos))
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut entries = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            entries.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {}", *pos));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        let text = std::str::from_utf8(&bytes[start..*pos])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_obs::fields;

    fn sample() -> Baseline {
        Baseline::from_records(
            "e5",
            "Local SGD sync/comm tradeoff",
            "PASS: comm drops superlinearly",
            &[
                fields! { "sync_period" => 1usize, "accuracy" => 0.8751, "bytes" => 128000usize, "note" => "dense" },
                fields! { "sync_period" => 8usize, "accuracy" => 0.8642, "bytes" => 16000usize, "converged" => true },
            ],
        )
    }

    #[test]
    fn flattening_keeps_numerics_and_drops_strings() {
        let b = sample();
        assert_eq!(b.metrics["r0.accuracy"], 0.8751);
        assert_eq!(b.metrics["r1.bytes"], 16000.0);
        assert_eq!(b.metrics["r1.converged"], 1.0);
        assert!(!b.metrics.contains_key("r0.note"));
        assert_eq!(b.metrics.len(), 7);
    }

    #[test]
    fn file_names_are_zero_padded_and_uppercase() {
        assert_eq!(Baseline::file_name("e5"), "BENCH_E05.json");
        assert_eq!(Baseline::file_name("e22"), "BENCH_E22.json");
        assert_eq!(Baseline::file_name("a1"), "BENCH_A01.json");
    }

    #[test]
    fn json_round_trip_is_lossless_and_byte_stable() {
        let b = sample();
        let text = b.to_json();
        let back = Baseline::from_json(&text).expect("parses");
        assert_eq!(back, b);
        assert_eq!(back.to_json(), text, "encode(decode(x)) == x byte for byte");
    }

    #[test]
    fn save_load_round_trip_through_a_directory() {
        let dir = std::env::temp_dir().join("dl_prof_baseline_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let b = sample();
        let path = b.save(&dir).expect("save");
        assert!(path.ends_with("BENCH_E05.json"));
        let back = Baseline::load(&dir, "e5").expect("load");
        assert_eq!(back, b);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn identical_runs_produce_no_drift() {
        let b = sample();
        assert!(b.diff(&sample(), Tolerance::default()).is_empty());
    }

    #[test]
    fn perturbation_outside_the_band_is_detected() {
        let b = sample();
        let mut cur = sample();
        cur.metrics.insert("r0.accuracy".to_string(), 0.8751 * 1.05);
        let drifts = b.diff(&cur, Tolerance::default());
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].key, "r0.accuracy");
        assert!(drifts[0].describe().contains("r0.accuracy"));
        assert!(drifts[0].relative().unwrap() > 0.04);
    }

    #[test]
    fn small_drift_inside_the_band_is_tolerated() {
        let b = sample();
        let mut cur = sample();
        cur.metrics.insert("r0.accuracy".to_string(), 0.8751 * 1.01);
        assert!(b.diff(&cur, Tolerance::default()).is_empty());
    }

    #[test]
    fn appearing_and_vanishing_metrics_are_drifts() {
        let b = sample();
        let mut cur = sample();
        cur.metrics.remove("r0.bytes");
        cur.metrics.insert("r0.new_metric".to_string(), 1.0);
        let drifts = b.diff(&cur, Tolerance::default());
        assert_eq!(drifts.len(), 2);
        assert!(drifts.iter().any(|d| d.current.is_none()));
        assert!(drifts.iter().any(|d| d.baseline.is_none()));
    }

    #[test]
    fn parser_handles_escapes_nesting_and_rejects_garbage() {
        let b = Baseline::from_json(
            "{\"id\":\"e1\",\"metrics\":{\"r0.a\\n\":1e-3},\"title\":\"t \\\"q\\\"\",\"verdict\":\"ok\"}",
        )
        .expect("parses");
        assert_eq!(b.metrics["r0.a\n"], 1e-3);
        assert_eq!(b.title, "t \"q\"");
        assert!(Baseline::from_json("{\"id\":}").is_err());
        assert!(Baseline::from_json("[]").is_err());
        assert!(Baseline::from_json("{\"id\":\"x\"} trailing").is_err());
    }
}
