//! # dl-prof
//!
//! The profiling and analysis layer on top of `dl-obs`: where PR 2's
//! observability stack records *events*, this crate quantifies *costs* and
//! guards them against regression. Three pillars:
//!
//! * [`cost`] — deterministic cost accounting: drive a network layer by
//!   layer under `dl-tensor`'s [`acct`](dl_tensor::acct) scopes and report
//!   the FLOPs and bytes its kernels *actually executed*, per layer and
//!   per phase, next to the static model from `dl-nn::cost`. Untraced
//!   paths never open a scope, so they stay bit-identical.
//! * [`analyze`] — trace analysis: consume a `TimelineRecorder` event
//!   stream and decompose wall time into compute / sync / checkpoint /
//!   recovery / replay, extract the critical path through distributed
//!   sync rounds, and attribute lost time to the workers whose crashes
//!   caused it.
//! * [`baseline`] — perf-regression baselines: snapshot an experiment's
//!   numeric record set to `BENCH_<ID>.json`, diff later runs against it
//!   under tolerance bands, and report drifts for CI to gate on.
//!
//! Everything here is deterministic: costs come from instruction-exact
//! kernel accounting, times from the simulated `VirtualClock`, and the
//! baseline files are byte-stable JSON — so a regression signal is a real
//! change in the code, never noise.

#![warn(missing_docs)]

pub mod analyze;
pub mod baseline;
pub mod cost;

pub use analyze::{analyze, runs, SpanStat, TraceProfile, WorkerLostTime};
pub use baseline::{Baseline, Drift, Tolerance};
pub use cost::{LayerProfile, NetworkProfile};
