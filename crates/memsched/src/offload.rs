//! vDNN-style offloading of intermediate results to host memory (§2.3).
//!
//! Instead of recomputing, activations can be written out to (slower) host
//! memory after the forward pass and read back during backward. Device
//! memory shrinks by the offloaded bytes; training time grows by whatever
//! part of the transfer cannot hide behind compute.

use dl_nn::CostProfile;

/// An offloading decision and its simulated consequences.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "a plan is pure data; dropping it discards the decision"]
pub struct OffloadPlan {
    /// Fraction of activation bytes offloaded, in `[0, 1]`.
    pub fraction: f64,
    /// Device activation memory after offloading (bytes).
    pub device_bytes: u64,
    /// Host memory consumed (bytes).
    pub host_bytes: u64,
    /// Extra seconds per training step after overlapping with compute.
    pub extra_seconds_per_step: f64,
    /// Seconds per step without offloading (compute only).
    pub base_seconds_per_step: f64,
}

impl OffloadPlan {
    /// Relative slowdown: `(base + extra) / base`.
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        (self.base_seconds_per_step + self.extra_seconds_per_step) / self.base_seconds_per_step
    }
}

/// Plans offloading `fraction` of activations for a model with `profile`,
/// on a device sustaining `flops_per_sec`, over a host link of
/// `host_bandwidth` bytes/s.
///
/// Transfers happen twice per step (write after forward, read before
/// backward) and overlap with compute: only the excess over the compute
/// time appears as slowdown.
///
/// # Panics
/// Panics unless `0 <= fraction <= 1` and rates are positive.
pub fn offload_plan(
    profile: &CostProfile,
    fraction: f64,
    flops_per_sec: f64,
    host_bandwidth: f64,
) -> OffloadPlan {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "offload fraction must lie in [0,1], got {fraction}"
    );
    assert!(
        flops_per_sec > 0.0 && host_bandwidth > 0.0,
        "rates must be positive"
    );
    let act_bytes = profile.activation_bytes();
    let offloaded = (act_bytes as f64 * fraction) as u64;
    let compute_seconds = profile.train_step_flops() as f64 / flops_per_sec;
    let transfer_seconds = 2.0 * offloaded as f64 / host_bandwidth;
    let extra = (transfer_seconds - compute_seconds).max(0.0);
    OffloadPlan {
        fraction,
        device_bytes: act_bytes - offloaded,
        host_bytes: offloaded,
        extra_seconds_per_step: extra,
        base_seconds_per_step: compute_seconds,
    }
}

/// Sweeps offload fractions and returns the smallest fraction whose device
/// memory fits `device_budget`, or `None` when even full offloading does
/// not fit (parameters and workspace are outside this model).
#[must_use]
pub fn min_fraction_for_budget(
    profile: &CostProfile,
    device_budget: u64,
    flops_per_sec: f64,
    host_bandwidth: f64,
) -> Option<OffloadPlan> {
    let act = profile.activation_bytes();
    if act <= device_budget {
        return Some(offload_plan(profile, 0.0, flops_per_sec, host_bandwidth));
    }
    let needed = act - device_budget;
    let fraction = needed as f64 / act as f64;
    if fraction > 1.0 {
        return None;
    }
    // round up slightly so integer truncation cannot violate the budget
    let fraction = (fraction + 1e-9).min(1.0);
    let plan = offload_plan(profile, fraction, flops_per_sec, host_bandwidth);
    if plan.device_bytes <= device_budget {
        Some(plan)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> CostProfile {
        CostProfile {
            forward_flops: 1_000_000_000,
            backward_flops: 2_000_000_000,
            params: 1_000_000,
            activation_elems: 25_000_000, // 100 MB
        }
    }

    #[test]
    fn zero_fraction_is_free() {
        let p = offload_plan(&profile(), 0.0, 1e12, 10e9);
        assert_eq!(p.extra_seconds_per_step, 0.0);
        assert_eq!(p.host_bytes, 0);
        assert_eq!(p.device_bytes, 100_000_000);
        assert_eq!(p.slowdown(), 1.0);
    }

    #[test]
    fn full_offload_empties_device() {
        let p = offload_plan(&profile(), 1.0, 1e12, 10e9);
        assert_eq!(p.device_bytes, 0);
        assert_eq!(p.host_bytes, 100_000_000);
    }

    #[test]
    fn transfers_hide_behind_compute_until_they_dont() {
        // compute: 3 GFLOP at 1 TFLOP/s = 3 ms
        // full offload: 200 MB over 100 GB/s = 2 ms -> fully hidden
        let fast_link = offload_plan(&profile(), 1.0, 1e12, 100e9);
        assert_eq!(fast_link.extra_seconds_per_step, 0.0);
        // over 10 GB/s: 20 ms transfer - 3 ms compute = 17 ms visible
        let slow_link = offload_plan(&profile(), 1.0, 1e12, 10e9);
        assert!((slow_link.extra_seconds_per_step - 0.017).abs() < 1e-6);
        assert!(slow_link.slowdown() > 5.0);
    }

    #[test]
    fn more_offload_more_slowdown_on_slow_links() {
        let p25 = offload_plan(&profile(), 0.25, 1e12, 5e9);
        let p75 = offload_plan(&profile(), 0.75, 1e12, 5e9);
        assert!(p75.extra_seconds_per_step > p25.extra_seconds_per_step);
        assert!(p75.device_bytes < p25.device_bytes);
    }

    #[test]
    fn min_fraction_meets_budget_exactly() {
        let p = min_fraction_for_budget(&profile(), 40_000_000, 1e12, 10e9)
            .expect("feasible");
        assert!(p.device_bytes <= 40_000_000);
        assert!(p.fraction > 0.55 && p.fraction < 0.65, "fraction {}", p.fraction);
    }

    #[test]
    fn min_fraction_zero_when_it_already_fits() {
        let p = min_fraction_for_budget(&profile(), 200_000_000, 1e12, 10e9)
            .expect("feasible");
        assert_eq!(p.fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "fraction must lie")]
    fn rejects_out_of_range_fraction() {
        let _ = offload_plan(&profile(), 1.5, 1e12, 10e9);
    }
}
