//! Residency pricing for a memory-budgeted model store.
//!
//! The weight store in `dl-serve` hosts many model families under one
//! byte budget; when a cold model must come in, something resident has to
//! go. Evicting is free — reloading is not. This module prices that
//! choice with the same bandwidth-plus-latency arithmetic the rest of
//! the crate uses (offload transfers, checkpoint storage): the cost of
//! evicting a model is the expected seconds of reload delay it pushes
//! onto future requests.
//!
//! [`eviction_score`] folds the reload price together with observed
//! access behaviour (recency and frequency): the best victim is the
//! model that is cheap to bring back and unlikely to be asked for soon.
//! Lower score = better victim.

/// What it costs to bring one artifact back from storage.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "a reload price is pure data; dropping it discards the estimate"]
pub struct ReloadCost {
    /// Artifact size in bytes.
    pub bytes: u64,
    /// Seconds to read the artifact back at the link's bandwidth,
    /// including fixed per-operation latency.
    pub seconds: f64,
}

/// Prices one reload of `bytes` over a link sustaining `read_bandwidth`
/// bytes/s with `latency` seconds of fixed per-operation overhead —
/// the same `latency + bytes / bandwidth` model `dl-distributed` charges
/// for checkpoint restores.
///
/// # Panics
/// Panics unless `read_bandwidth` is positive and `latency` is
/// non-negative.
pub fn reload_cost(bytes: u64, read_bandwidth: f64, latency: f64) -> ReloadCost {
    assert!(read_bandwidth > 0.0, "read bandwidth must be positive");
    assert!(latency >= 0.0, "latency must be non-negative");
    ReloadCost {
        bytes,
        seconds: latency + bytes as f64 / read_bandwidth,
    }
}

/// Access history of one resident model, as seen by the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidencyStats {
    /// Requests served since the model became resident.
    pub hits: u64,
    /// Logical tick (store access counter) of the most recent hit;
    /// the tick at load time when the model has not been hit yet.
    pub last_access: u64,
}

/// Scores a resident model as an eviction victim; **lower is a better
/// victim**.
///
/// The score is the reload price discounted by how stale the model is
/// and amplified by how hot it has been:
///
/// ```text
/// score = reload_seconds * (1 + hits) / (1 + age)
/// ```
///
/// where `age = now_tick - last_access` in store accesses. A model that
/// was just used (age 0) keeps its full weighted reload price; one idle
/// for many accesses sees its price melt away regardless of size. Pure
/// LRU is the special case of ignoring the price and hit count and
/// evicting the largest `age`.
///
/// # Panics
/// Panics if `now_tick` precedes `stats.last_access` (ticks never
/// rewind).
#[must_use]
pub fn eviction_score(cost: ReloadCost, stats: ResidencyStats, now_tick: u64) -> f64 {
    assert!(
        now_tick >= stats.last_access,
        "store ticks never rewind: now {now_tick} < last access {}",
        stats.last_access
    );
    let age = now_tick - stats.last_access;
    cost.seconds * (1.0 + stats.hits as f64) / (1.0 + age as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reload_matches_bandwidth_plus_latency() {
        let c = reload_cost(2_000_000_000, 2.0e9, 1.0e-4);
        assert!((c.seconds - 1.0001).abs() < 1e-12);
        assert_eq!(c.bytes, 2_000_000_000);
    }

    #[test]
    fn zero_bytes_still_pays_latency() {
        let c = reload_cost(0, 1e9, 2e-3);
        assert_eq!(c.seconds, 2e-3);
    }

    #[test]
    fn staler_models_are_better_victims() {
        let c = reload_cost(100_000_000, 1e9, 1e-4);
        let hot = ResidencyStats { hits: 5, last_access: 100 };
        let cold = ResidencyStats { hits: 5, last_access: 10 };
        assert!(eviction_score(c, cold, 100) < eviction_score(c, hot, 100));
    }

    #[test]
    fn cheaper_reloads_are_better_victims() {
        let small = reload_cost(1_000_000, 1e9, 1e-4);
        let big = reload_cost(1_000_000_000, 1e9, 1e-4);
        let s = ResidencyStats { hits: 3, last_access: 50 };
        assert!(eviction_score(small, s, 60) < eviction_score(big, s, 60));
    }

    #[test]
    fn hotter_models_are_worse_victims() {
        let c = reload_cost(50_000_000, 1e9, 1e-4);
        let rare = ResidencyStats { hits: 1, last_access: 40 };
        let hot = ResidencyStats { hits: 100, last_access: 40 };
        assert!(eviction_score(c, rare, 50) < eviction_score(c, hot, 50));
    }

    #[test]
    #[should_panic(expected = "never rewind")]
    fn rewinding_ticks_panic() {
        let c = reload_cost(1, 1e9, 0.0);
        let s = ResidencyStats { hits: 0, last_access: 10 };
        let _ = eviction_score(c, s, 5);
    }
}
