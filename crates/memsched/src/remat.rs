//! Rematerialization (gradient checkpointing) schedules.
//!
//! A feed-forward chain of `n` layers produces activations `a_1..a_n`
//! (bytes) at forward cost `f_1..f_n` (FLOPs). Backward needs each
//! activation again, in reverse order. A *schedule* picks a set of
//! **checkpoint** layers whose activations stay resident; everything else
//! is recomputed segment-by-segment during backward:
//!
//! * peak activation memory = bytes of all checkpoints + the largest
//!   segment's activations (materialized while that segment backprops),
//! * extra compute = one extra forward pass over every non-checkpoint
//!   layer (each segment is replayed exactly once).
//!
//! [`sqrt_schedule`] reproduces the classic equidistant heuristic, which
//! trains in O(sqrt(n)) memory for one extra forward pass.
//! [`optimal_schedule`] reproduces Checkmate's promise — the *best*
//! schedule for **any** memory budget — via Pareto-pruned dynamic
//! programming over (checkpoint bytes, max segment bytes, recompute).

use dl_nn::LayerCost;

/// A concrete checkpointing schedule and its costs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "a schedule is pure data; dropping it discards the plan"]
pub struct RematSchedule {
    /// Indices of layers whose activations stay resident (sorted).
    pub checkpoints: Vec<usize>,
    /// Peak activation memory in bytes.
    pub peak_bytes: u64,
    /// Extra forward FLOPs spent on recomputation per training step.
    pub recompute_flops: u64,
}

/// Activation bytes of layer `i`.
fn act_bytes(c: &LayerCost) -> u64 {
    c.activation_elems * 4
}

/// The store-everything baseline: every activation resident, no recompute.
pub fn store_all(costs: &[LayerCost]) -> RematSchedule {
    RematSchedule {
        checkpoints: (0..costs.len()).collect(),
        peak_bytes: costs.iter().map(act_bytes).sum(),
        recompute_flops: 0,
    }
}

/// Evaluates an arbitrary checkpoint set (sorted indices into `costs`).
///
/// # Panics
/// Panics when an index is out of range or unsorted/duplicated.
pub fn evaluate(costs: &[LayerCost], checkpoints: &[usize]) -> RematSchedule {
    assert!(
        checkpoints.windows(2).all(|w| w[0] < w[1]),
        "checkpoints must be sorted and unique"
    );
    assert!(
        checkpoints.iter().all(|&i| i < costs.len()),
        "checkpoint index out of range"
    );
    let ckpt_bytes: u64 = checkpoints.iter().map(|&i| act_bytes(&costs[i])).sum();
    // segments between consecutive checkpoints (and chain ends)
    let mut max_segment = 0u64;
    let mut recompute = 0u64;
    let mut is_ckpt = vec![false; costs.len()];
    for &i in checkpoints {
        is_ckpt[i] = true;
    }
    let mut seg_bytes = 0u64;
    for (i, c) in costs.iter().enumerate() {
        if is_ckpt[i] {
            max_segment = max_segment.max(seg_bytes);
            seg_bytes = 0;
        } else {
            seg_bytes += act_bytes(c);
            recompute += c.forward_flops;
        }
    }
    max_segment = max_segment.max(seg_bytes);
    RematSchedule {
        checkpoints: checkpoints.to_vec(),
        peak_bytes: ckpt_bytes + max_segment,
        recompute_flops: recompute,
    }
}

/// The classic equidistant heuristic: checkpoint every `ceil(sqrt(n))`-th
/// layer. Memory drops to O(sqrt(n)) of the baseline at the cost of (at
/// most) one extra forward pass.
pub fn sqrt_schedule(costs: &[LayerCost]) -> RematSchedule {
    let n = costs.len();
    if n == 0 {
        return RematSchedule {
            checkpoints: vec![],
            peak_bytes: 0,
            recompute_flops: 0,
        };
    }
    let stride = (n as f64).sqrt().ceil() as usize;
    let checkpoints: Vec<usize> = (0..n).step_by(stride.max(1)).collect();
    evaluate(costs, &checkpoints)
}

/// Finds the schedule minimizing recompute FLOPs subject to
/// `peak_bytes <= budget`, by dynamic programming over chain prefixes with
/// Pareto pruning (exact for the "replay each segment once" execution
/// model — the same model Checkmate's MILP optimizes in the paper's
/// single-replay setting).
///
/// Returns `None` when even the most aggressive schedule (no checkpoints)
/// exceeds the budget — the caller must distinguish that from success.
///
/// ```
/// use dl_memsched::{optimal_schedule, store_all};
/// use dl_nn::LayerCost;
/// let chain = vec![LayerCost {
///     forward_flops: 1000, backward_flops: 2000,
///     params: 0, activation_elems: 250, // 1000 bytes
/// }; 8];
/// let full = store_all(&chain).peak_bytes; // 8 KB
/// let half = optimal_schedule(&chain, full / 2).expect("feasible");
/// assert!(half.peak_bytes <= full / 2);
/// assert!(half.recompute_flops > 0); // memory bought with recompute
/// ```
#[must_use]
pub fn optimal_schedule(costs: &[LayerCost], budget: u64) -> Option<RematSchedule> {
    let n = costs.len();
    if n == 0 {
        return Some(RematSchedule {
            checkpoints: vec![],
            peak_bytes: 0,
            recompute_flops: 0,
        });
    }
    /// A partial schedule ending with a checkpoint at `last` (or none yet).
    #[derive(Clone)]
    struct State {
        ckpt_bytes: u64,
        max_seg: u64,
        recompute: u64,
        checkpoints: Vec<usize>,
    }
    // dominance: a state is dominated if another has <= on all three axes
    fn pareto_insert(states: &mut Vec<State>, s: State) {
        for t in states.iter() {
            if t.ckpt_bytes <= s.ckpt_bytes && t.max_seg <= s.max_seg && t.recompute <= s.recompute
            {
                return; // dominated
            }
        }
        states.retain(|t| {
            !(s.ckpt_bytes <= t.ckpt_bytes && s.max_seg <= t.max_seg && s.recompute <= t.recompute)
        });
        states.push(s);
    }
    // frontier[i] = Pareto states for the prefix 0..=i with layer i a
    // checkpoint; plus a virtual start "no checkpoint yet".
    let mut best: Option<State> = None;
    // seg_sum[i][j] helpers via prefix sums
    let mut pref_bytes = vec![0u64; n + 1];
    let mut pref_flops = vec![0u64; n + 1];
    for (i, c) in costs.iter().enumerate() {
        pref_bytes[i + 1] = pref_bytes[i] + act_bytes(c);
        pref_flops[i + 1] = pref_flops[i] + c.forward_flops;
    }
    let seg_bytes = |a: usize, b: usize| pref_bytes[b] - pref_bytes[a]; // layers a..b
    let seg_flops = |a: usize, b: usize| pref_flops[b] - pref_flops[a];
    let mut frontier: Vec<Vec<State>> = vec![Vec::new(); n];
    // initial states: first checkpoint at layer i (layers before it form a
    // recomputed segment), or no checkpoints at all.
    {
        let s = State {
            ckpt_bytes: 0,
            max_seg: seg_bytes(0, n),
            recompute: seg_flops(0, n),
            checkpoints: vec![],
        };
        if s.ckpt_bytes + s.max_seg <= budget {
            best = Some(s);
        }
    }
    for i in 0..n {
        let s = State {
            ckpt_bytes: act_bytes(&costs[i]),
            max_seg: seg_bytes(0, i),
            recompute: seg_flops(0, i),
            checkpoints: vec![i],
        };
        pareto_insert(&mut frontier[i], s);
    }
    for i in 0..n {
        // states ending at checkpoint i extend to a next checkpoint j or
        // finish (tail segment i+1..n)
        let states = frontier[i].clone();
        for s in states {
            // finish here
            let tail_seg = seg_bytes(i + 1, n);
            let total = State {
                ckpt_bytes: s.ckpt_bytes,
                max_seg: s.max_seg.max(tail_seg),
                recompute: s.recompute + seg_flops(i + 1, n),
                checkpoints: s.checkpoints.clone(),
            };
            if total.ckpt_bytes + total.max_seg <= budget {
                let better = match &best {
                    None => true,
                    Some(b) => total.recompute < b.recompute,
                };
                if better {
                    best = Some(total);
                }
            }
            // extend to checkpoint j
            for j in (i + 1)..n {
                let ns = State {
                    ckpt_bytes: s.ckpt_bytes + act_bytes(&costs[j]),
                    max_seg: s.max_seg.max(seg_bytes(i + 1, j)),
                    recompute: s.recompute + seg_flops(i + 1, j),
                    checkpoints: {
                        let mut c = s.checkpoints.clone();
                        c.push(j);
                        c
                    },
                };
                if ns.ckpt_bytes + ns.max_seg > budget {
                    // even if extended, ckpt_bytes only grows and max_seg
                    // never shrinks: prune
                    continue;
                }
                pareto_insert(&mut frontier[j], ns);
            }
        }
    }
    best.map(|s| RematSchedule {
        peak_bytes: s.ckpt_bytes
            + {
                // recompute true max segment including the tail
                evaluate(costs, &s.checkpoints).peak_bytes - s.ckpt_bytes
            },
        recompute_flops: s.recompute,
        checkpoints: s.checkpoints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn uniform_chain(n: usize, bytes: u64, flops: u64) -> Vec<LayerCost> {
        vec![
            LayerCost {
                forward_flops: flops,
                backward_flops: 2 * flops,
                params: 0,
                activation_elems: bytes / 4,
            };
            n
        ]
    }

    #[test]
    fn store_all_has_no_recompute() {
        let chain = uniform_chain(16, 1000, 500);
        let s = store_all(&chain);
        assert_eq!(s.recompute_flops, 0);
        assert_eq!(s.peak_bytes, 16_000);
        assert_eq!(s.checkpoints.len(), 16);
    }

    #[test]
    fn sqrt_schedule_cuts_memory_geometrically() {
        let chain = uniform_chain(64, 1000, 500);
        let base = store_all(&chain);
        let sq = sqrt_schedule(&chain);
        // sqrt(64) = 8: 8 checkpoints + 7-layer segments ~ 15 units
        assert!(sq.peak_bytes <= base.peak_bytes / 4, "peak {}", sq.peak_bytes);
        // at most one extra forward pass
        let total_fwd: u64 = chain.iter().map(|c| c.forward_flops).sum();
        assert!(sq.recompute_flops <= total_fwd);
        assert!(sq.recompute_flops > 0);
    }

    #[test]
    fn evaluate_counts_segments_correctly() {
        let chain = uniform_chain(6, 100, 10);
        // checkpoints at 0 and 3: segments {1,2} and {4,5}
        let s = evaluate(&chain, &[0, 3]);
        assert_eq!(s.peak_bytes, 200 + 200); // 2 ckpts + max 2-layer segment
        assert_eq!(s.recompute_flops, 40); // layers 1,2,4,5 replayed
    }

    #[test]
    #[should_panic(expected = "sorted and unique")]
    fn evaluate_rejects_unsorted() {
        let _ = evaluate(&uniform_chain(4, 1, 1), &[2, 1]);
    }

    #[test]
    fn optimal_matches_store_all_with_big_budget() {
        let chain = uniform_chain(12, 1000, 500);
        let opt = optimal_schedule(&chain, u64::MAX).expect("feasible");
        assert_eq!(opt.recompute_flops, 0);
        assert_eq!(opt.checkpoints.len(), 12);
    }

    #[test]
    fn optimal_is_none_below_min_feasible_memory() {
        let chain = uniform_chain(8, 1000, 500);
        // best possible: 2 checkpoints (2000 B) + max segment of 2 layers
        // (2000 B) = 4000 B; anything below is infeasible
        assert!(optimal_schedule(&chain, 3_999).is_none());
        assert!(optimal_schedule(&chain, 4_000).is_some());
    }

    #[test]
    fn optimal_beats_sqrt_at_sqrt_memory() {
        // heterogeneous chain: big activations early, cheap flops late
        let mut chain = Vec::new();
        for i in 0..16 {
            chain.push(LayerCost {
                forward_flops: [900, 100][i % 2] * 1000,
                backward_flops: 0,
                params: 0,
                activation_elems: [4000u64, 250][i % 2],
            });
        }
        let sq = sqrt_schedule(&chain);
        let opt = optimal_schedule(&chain, sq.peak_bytes).expect("feasible at sqrt memory");
        assert!(
            opt.recompute_flops <= sq.recompute_flops,
            "optimal {} worse than sqrt {}",
            opt.recompute_flops,
            sq.recompute_flops
        );
        assert!(opt.peak_bytes <= sq.peak_bytes);
    }

    #[test]
    fn optimal_budget_monotonicity() {
        let chain = uniform_chain(8, 1000, 500);
        let budgets = [8_000u64, 6_000, 5_000, 4_000];
        let mut last = 0u64;
        for &b in &budgets {
            let s = optimal_schedule(&chain, b).expect("feasible");
            assert!(s.peak_bytes <= b, "peak {} exceeds budget {b}", s.peak_bytes);
            assert!(
                s.recompute_flops >= last,
                "less memory must not reduce recompute"
            );
            last = s.recompute_flops;
        }
    }

    proptest! {
        /// The DP result never violates its budget and never recomputes
        /// more than one full forward pass (single-replay model).
        #[test]
        fn optimal_schedule_invariants(
            n in 1usize..10,
            seed in 0u64..100,
            budget_frac in 0.3f64..1.2,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let chain: Vec<LayerCost> = (0..n)
                .map(|_| LayerCost {
                    forward_flops: rng.gen_range(1..1000),
                    backward_flops: 0,
                    params: 0,
                    activation_elems: rng.gen_range(1..1000),
                })
                .collect();
            let base = store_all(&chain);
            let budget = (base.peak_bytes as f64 * budget_frac) as u64;
            if let Some(s) = optimal_schedule(&chain, budget) {
                prop_assert!(s.peak_bytes <= budget);
                let total_fwd: u64 = chain.iter().map(|c| c.forward_flops).sum();
                prop_assert!(s.recompute_flops <= total_fwd);
                // result must agree with independent evaluation
                let check = evaluate(&chain, &s.checkpoints);
                prop_assert_eq!(check.recompute_flops, s.recompute_flops);
                prop_assert_eq!(check.peak_bytes, s.peak_bytes);
            }
        }

        /// Exhaustive check on tiny chains: the DP really is optimal.
        #[test]
        fn optimal_schedule_is_optimal_vs_bruteforce(
            n in 1usize..7,
            seed in 0u64..50,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let chain: Vec<LayerCost> = (0..n)
                .map(|_| LayerCost {
                    forward_flops: rng.gen_range(1..100),
                    backward_flops: 0,
                    params: 0,
                    activation_elems: rng.gen_range(1..100),
                })
                .collect();
            let base = store_all(&chain);
            let budget = base.peak_bytes * 2 / 3;
            // brute force over all checkpoint subsets
            let mut best: Option<u64> = None;
            for mask in 0u32..(1 << n) {
                let cps: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
                let s = evaluate(&chain, &cps);
                if s.peak_bytes <= budget {
                    best = Some(best.map_or(s.recompute_flops, |b: u64| b.min(s.recompute_flops)));
                }
            }
            let dp = optimal_schedule(&chain, budget);
            match (best, dp) {
                (None, None) => {}
                (Some(b), Some(d)) => prop_assert_eq!(d.recompute_flops, b),
                (b, d) => prop_assert!(false, "feasibility mismatch: brute {:?} dp {:?}", b, d.map(|s| s.recompute_flops)),
            }
        }
    }
}
