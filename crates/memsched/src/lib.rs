//! # dl-memsched
//!
//! Training-time vs. memory-efficiency techniques (tutorial §2.3): the
//! observation that intermediate results produced during the forward pass
//! need not all be stored — they can be **recomputed** (rematerialization /
//! checkpointing) or **offloaded** to slower host memory and re-read.
//!
//! * [`remat`] — checkpointing schedules over a layer chain:
//!   store-everything baseline, the classic sqrt(n) equidistant heuristic
//!   (Chen et al. / revolve), and a Checkmate-style **optimal** schedule
//!   found by Pareto dynamic programming for any memory budget.
//! * [`offload`] — vDNN-style offloading of intermediate results over a
//!   host link, with compute/transfer overlap modeling.
//! * [`residency`] — reload pricing and eviction scoring for the
//!   serving-side weight store (which models stay in device memory).
//!
//! Inputs are the per-layer activation sizes and FLOP counts from
//! `dl-nn`'s cost model, so every schedule is priced against the same
//! numbers the rest of the workspace uses.

#![warn(missing_docs)]

pub mod offload;
pub mod remat;
pub mod residency;

pub use offload::{offload_plan, OffloadPlan};
pub use remat::{optimal_schedule, sqrt_schedule, store_all, RematSchedule};
pub use residency::{eviction_score, reload_cost, ReloadCost, ResidencyStats};
