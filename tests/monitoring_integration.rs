//! End-to-end monitoring integration: attach the `dl-monitor` tap to
//! real cluster and single-node serving runs and check the cross-crate
//! contracts E28 relies on — attaching the monitor never changes the
//! simulation (bit-identical reports, timelines, and histograms on a
//! fault-free run), the monitor aggregates per-replica series over a
//! `NullRecorder` inner (its `enabled()` override keeps the structured
//! samples flowing), and cluster fault instants land in the health
//! series. Runs identically at any `DL_THREADS` — all latencies are
//! `VirtualClock` simulated time.

use dl_distributed::{FaultEvent, FaultPlan};
use dl_monitor::{AlertKind, Monitor, MonitorConfig, SloRule};
use dl_obs::{NullRecorder, TimelineRecorder};
use dl_serve::{
    build_family, open_loop, serve, serve_cluster, AdmissionPolicy, BatchPolicy, ClusterConfig,
    DeviceModel, FamilyConfig, LoadConfig, RouterPolicy, ServeConfig,
};

fn family_and_eval() -> (dl_serve::VariantRegistry, dl_nn::Dataset) {
    let data = dl_data::blobs(160, 4, 10, 6.0, 0.6, 70);
    let eval = dl_data::blobs(80, 4, 10, 6.0, 0.6, 71);
    let family = build_family(
        &data,
        &eval,
        &FamilyConfig {
            teacher_dims: vec![10, 24, 4],
            student_hidden: vec![6],
            prune_sparsity: 0.7,
            morph_budget: 260,
            ensemble_members: 2,
            max_batch: 16,
            epochs: 10,
            seed: 77,
        },
    );
    (family, eval)
}

fn engine(device: DeviceModel) -> ServeConfig {
    ServeConfig {
        batch: BatchPolicy::dynamic(16, 5e-6),
        admission: AdmissionPolicy::AcceptAll,
        primary: "fp32-base".into(),
        device,
    }
}

#[test]
fn monitored_fault_free_cluster_run_is_bit_identical() {
    let (mut family, eval) = family_and_eval();
    let device = DeviceModel::nominal();
    let cap1 = 1.0 / device.service_time(family.variants[0].cost_at(1));
    let load = open_loop(
        &LoadConfig {
            rate_rps: 4.0 * cap1,
            requests: 600,
            seed: 8,
        },
        eval.x.dims()[0],
    );
    let cfg = ClusterConfig {
        router: RouterPolicy::LeastLoaded,
        ..ClusterConfig::new(3, engine(device))
    };

    // Four paths over the identical run: plain timeline, monitored
    // timeline, plain null, monitored null.
    let plain_tl = TimelineRecorder::new();
    let plain = serve_cluster(&mut family, &eval, &load, &cfg, &plain_tl);
    let mon_tl = TimelineRecorder::new();
    let monitor = Monitor::new(&mon_tl, MonitorConfig::default());
    let monitored = serve_cluster(&mut family, &eval, &load, &cfg, &monitor);
    let report = monitor.report();
    let plain_null = serve_cluster(&mut family, &eval, &load, &cfg, &NullRecorder::new());
    let null = NullRecorder::new();
    let null_monitor = Monitor::new(&null, MonitorConfig::default());
    let monitored_null = serve_cluster(&mut family, &eval, &load, &cfg, &null_monitor);

    assert_eq!(plain, monitored, "monitor tap changed the cluster outcome");
    assert_eq!(plain, plain_null, "recorder choice changed the outcome");
    assert_eq!(plain, monitored_null, "monitored null path diverged");
    assert_eq!(
        plain_tl.events(),
        mon_tl.events(),
        "fault-free monitored timeline must be bit-identical (no alert instants)"
    );
    assert_eq!(
        plain_tl.histogram("serve.latency_s"),
        mon_tl.histogram("serve.latency_s"),
        "latency histogram must pass through the tap unchanged"
    );
    assert!(report.alerts.is_empty(), "no rules configured, no alerts");

    // The tap saw the whole fleet: per-replica attribution sums to the
    // fleet series and matches the cluster's own accounting.
    assert_eq!(report.replicas.len(), 3);
    assert_eq!(report.fleet.completions as usize, plain.serve.served);
    let per_replica: u64 = report.replicas.iter().map(|r| r.completions).sum();
    assert_eq!(per_replica, report.fleet.completions);
    for (mon, cluster) in report.replicas.iter().zip(&plain.per_replica) {
        assert_eq!(mon.completions as usize, cluster.served - cluster.wasted);
    }
}

#[test]
fn monitor_over_null_recorder_aggregates_and_alerts_under_overload() {
    let (mut family, eval) = family_and_eval();
    let device = DeviceModel::nominal();
    let vmax = &family.variants[0];
    let cap_dyn =
        vmax.max_batch() as f64 / device.service_time(vmax.cost_at(vmax.max_batch()));
    // Steady 0.5x capacity fixes the healthy p99 the rules target.
    let calibrate = open_loop(
        &LoadConfig {
            rate_rps: 0.5 * cap_dyn,
            requests: 400,
            seed: 9,
        },
        eval.x.dims()[0],
    );
    let scfg = engine(device);
    let healthy = serve(&mut family, &eval, &calibrate, &scfg, &NullRecorder::new());
    // 2x capacity: the queue grows without bound, so the burn rule on a
    // 1.5x-healthy-p99 objective must fire.
    let overload = open_loop(
        &LoadConfig {
            rate_rps: 2.0 * cap_dyn,
            requests: 800,
            seed: 10,
        },
        eval.x.dims()[0],
    );
    let span = overload.last().expect("non-empty").arrival_s;
    let null = NullRecorder::new();
    let monitor = Monitor::new(
        &null,
        MonitorConfig {
            window_s: span / 32.0,
            latency_slo_s: 6.0 * healthy.p99_s,
            rules: vec![SloRule::BurnRate {
                name: "burn".into(),
                latency_slo_s: 1.5 * healthy.p99_s,
                budget: 0.02,
                fast_windows: 2,
                slow_windows: 8,
                threshold: 3.0,
            }],
            ..MonitorConfig::default()
        },
    );
    let report_serve = serve(&mut family, &eval, &overload, &scfg, &monitor);
    let rep = monitor.report();
    // enabled() == true over a NullRecorder inner keeps the structured
    // samples flowing even though nothing is stored downstream.
    assert_eq!(rep.fleet.completions as usize, report_serve.served);
    assert!(rep.fleet.completions > 0);
    assert!(
        rep.first_alert_s(AlertKind::BurnRate).is_some(),
        "sustained 2x overload must burn the error budget"
    );
    assert!(
        rep.fleet.p99_s >= rep.fleet.p50_s,
        "sketch quantiles are ordered"
    );
}

#[test]
fn cluster_crash_instants_reach_the_health_series() {
    let (mut family, eval) = family_and_eval();
    let device = DeviceModel::nominal();
    let cap1 = 1.0 / device.service_time(family.variants[0].cost_at(1));
    let load = open_loop(
        &LoadConfig {
            rate_rps: 4.0 * cap1,
            requests: 600,
            seed: 11,
        },
        eval.x.dims()[0],
    );
    let span = load.last().expect("non-empty").arrival_s;
    // One replica crashes a third of the way in and never rejoins.
    let cfg = ClusterConfig {
        router: RouterPolicy::LeastLoaded,
        faults: FaultPlan::new(vec![FaultEvent::WorkerCrash {
            worker: 1,
            at_step: 1,
        }]),
        seconds_per_step: span / 3.0,
        ..ClusterConfig::new(3, engine(device))
    };
    let null = NullRecorder::new();
    let monitor = Monitor::new(&null, MonitorConfig::default());
    let report = serve_cluster(&mut family, &eval, &load, &cfg, &monitor);
    let rep = monitor.report();
    assert_eq!(report.crashes, 1);
    assert_eq!(rep.fleet.crashes, 1, "crash instant must reach the monitor");
    assert_eq!(rep.replicas[1].crashes, 1, "attributed to the right replica");
    assert_eq!(
        rep.replicas[1].health, 0.0,
        "a crashed replica's health pins to zero"
    );
    assert_eq!(rep.lost as usize, report.lost, "lost counter taps through");
}
