//! End-to-end persistence integration: train → save → load → serve, with
//! every hop required to be bit-identical. This is the cross-crate
//! contract the weight store rests on: a `dl-store` artifact is not a
//! lossy export but the *same model* in a different residence, so a
//! serving run against reloaded weights must reproduce a run against the
//! originals byte-for-byte — report, latency histogram, and timeline —
//! and must do so at any kernel thread count (the parallel backend is
//! bitwise-deterministic by contract).

use dl_obs::TimelineRecorder;
use dl_serve::{
    build_family, load_family, open_loop, save_family, serve, AdmissionPolicy, BatchPolicy,
    DeviceModel, FamilyConfig, LoadConfig, ServeConfig,
};
use dl_store::{load_network, save_network};

fn family_and_eval() -> (dl_serve::VariantRegistry, dl_nn::Dataset) {
    let data = dl_data::blobs(150, 4, 10, 6.0, 0.6, 170);
    let eval = dl_data::blobs(80, 4, 10, 6.0, 0.6, 171);
    let family = build_family(
        &data,
        &eval,
        &FamilyConfig {
            teacher_dims: vec![10, 24, 4],
            student_hidden: vec![6],
            prune_sparsity: 0.7,
            morph_budget: 260,
            ensemble_members: 2,
            max_batch: 16,
            epochs: 10,
            seed: 177,
        },
    );
    (family, eval)
}

fn serve_once(
    family: &mut dl_serve::VariantRegistry,
    eval: &dl_nn::Dataset,
    threads: usize,
) -> (dl_serve::ServeReport, Vec<dl_obs::Event>, Option<dl_obs::Histogram>) {
    let device = DeviceModel::nominal();
    let load = open_loop(
        &LoadConfig {
            rate_rps: 100_000.0,
            requests: 300,
            seed: 15,
        },
        eval.x.dims()[0],
    );
    let cfg = ServeConfig {
        batch: BatchPolicy::dynamic(16, 6e-6),
        admission: AdmissionPolicy::SloAware {
            p99_slo_s: 4e-5,
            headroom: 0.7,
            min_accuracy: 0.0,
        },
        primary: "fp32-base".into(),
        device,
    };
    let rec = TimelineRecorder::new();
    let report =
        dl_tensor::par::with_threads(threads, || serve(family, eval, &load, &cfg, &rec));
    let hist = rec.histogram("serve.latency_s");
    (report, rec.events(), hist)
}

#[test]
fn trained_network_round_trips_bitwise_through_the_artifact() {
    let data = dl_data::blobs(150, 4, 10, 6.0, 0.6, 180);
    let mut rng = dl_tensor::init::rng(181);
    let mut net = dl_nn::Network::mlp(&[10, 16, 4], &mut rng);
    let mut trainer = dl_nn::Trainer::new(
        dl_nn::TrainConfig {
            epochs: 8,
            batch_size: 16,
            seed: 182,
            ..dl_nn::TrainConfig::default()
        },
        dl_nn::Optimizer::adam(0.01),
    );
    trainer.fit(&mut net, &data);

    let bytes = save_network(&net);
    let back = load_network(&bytes).expect("fresh artifact loads");
    let a = net.flat_params();
    let b = back.flat_params();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_bits(), y.to_bits(), "trained weights must survive bitwise");
    }
    // Re-encoding the reload reproduces the artifact byte-for-byte.
    assert_eq!(bytes, save_network(&back), "artifact bytes must be stable");
}

#[test]
fn saved_family_serves_bit_identically_at_one_and_four_threads() {
    let (family, eval) = family_and_eval();
    let artifact = save_family(&family);
    for threads in [1usize, 4] {
        let mut original = family.clone();
        let mut reloaded = load_family(&artifact).expect("family artifact loads");
        let (r1, ev1, h1) = serve_once(&mut original, &eval, threads);
        let (r2, ev2, h2) = serve_once(&mut reloaded, &eval, threads);
        assert_eq!(r1, r2, "reloaded family changed the report at {threads} threads");
        assert_eq!(h1, h2, "reloaded family changed the histogram at {threads} threads");
        assert_eq!(ev1, ev2, "reloaded family changed the timeline at {threads} threads");
        assert!(r1.served > 0, "the run actually served traffic");
    }
    // The thread count itself must also be invisible across the reload.
    let mut reloaded = load_family(&artifact).expect("family artifact loads");
    let (r1, ev1, _) = serve_once(&mut reloaded.clone(), &eval, 1);
    let (r4, ev4, _) = serve_once(&mut reloaded, &eval, 4);
    assert_eq!(r1, r4, "thread count leaked into the reloaded family's report");
    assert_eq!(ev1, ev4, "thread count leaked into the reloaded family's timeline");
}

#[test]
fn family_artifact_is_byte_stable_across_processless_resaves() {
    let (family, _) = family_and_eval();
    let once = save_family(&family);
    let twice = save_family(&load_family(&once).expect("loads"));
    assert_eq!(once, twice, "save -> load -> save must be a fixed point");
}
