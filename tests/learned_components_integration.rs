//! Integration across the learned-database components: classic and learned
//! structures must agree on answers while differing (predictably) on cost.

use dl_data::{CorrelatedTable, KeyDistribution, RangePredicate, RangeWorkload};
use dl_learneddb::cardinality::q_error;
use dl_learneddb::{
    BTreeIndex, BloomFilter, HistogramEstimator, LearnedBloom, NeuralEstimator,
    RecursiveModelIndex, SamplingEstimator,
};
use dl_tensor::init;

#[test]
fn btree_and_rmi_agree_on_a_full_workload() {
    let keys = KeyDistribution::Lognormal.generate(50_000, 1);
    let workload = RangeWorkload::generate(&keys, 1000, 2);
    let bt = BTreeIndex::build_default(keys.clone());
    let rmi = RecursiveModelIndex::build(keys.clone(), 256);
    for &k in &workload.lookups {
        assert_eq!(bt.lookup(k).0, rmi.lookup(k).0, "positive lookup {k}");
        assert!(bt.lookup(k).0.is_some());
    }
    for &k in &workload.negative_lookups {
        assert_eq!(bt.lookup(k).0, None, "negative lookup {k}");
        assert_eq!(rmi.lookup(k).0, None, "negative lookup {k}");
    }
    for &(lo, hi) in &workload.ranges {
        let r = bt.range(lo, hi);
        assert!(!r.is_empty(), "range anchored at an existing key");
        // every key in the range really is in bounds
        assert!(bt.keys()[r].iter().all(|&k| k >= lo && k <= hi));
    }
}

#[test]
fn filters_guard_the_index_consistently() {
    // the classic pattern: a filter in front of the index must never veto
    // a key the index holds
    let keys: Vec<u64> = (0..10_000u64).map(|i| i * 3).collect();
    let mut bloom = BloomFilter::with_fpr(keys.len(), 0.01);
    for &k in &keys {
        bloom.insert(k);
    }
    let mut rng = init::rng(3);
    let negatives = dl_data::keys::absent_keys(&keys, 5_000, &mut rng);
    let mut learned = LearnedBloom::build(&keys, &negatives, 0.02, 4);
    let index = BTreeIndex::build_default(keys.clone());
    for &k in keys.iter().step_by(23) {
        assert!(bloom.contains(k), "classic filter vetoed a present key");
        assert!(learned.contains(k), "learned filter vetoed a present key");
        assert!(index.lookup(k).0.is_some());
    }
}

#[test]
fn estimators_rank_sanely_on_correlated_data() {
    let table = CorrelatedTable::generate(4000, 4, 0.9, 5);
    let hist = HistogramEstimator::build(&table, 32);
    let mut rng = init::rng(6);
    let sample = SamplingEstimator::build(&table, 400, &mut rng);
    let mut neural = NeuralEstimator::train(&table, 500, 3, 7);
    let mut qerrs = [Vec::new(), Vec::new(), Vec::new()];
    let mut qrng = init::rng(8);
    for _ in 0..40 {
        let p = RangePredicate::sample(4, 3, &mut qrng);
        let truth = table.true_selectivity(&p);
        qerrs[0].push(q_error(hist.estimate(&p), truth, table.rows()));
        qerrs[1].push(q_error(sample.estimate(&p), truth, table.rows()));
        qerrs[2].push(q_error(neural.estimate(&p), truth, table.rows()));
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let h = median(&mut qerrs[0]);
    let s = median(&mut qerrs[1]);
    let n = median(&mut qerrs[2]);
    // every estimator must be finite and sane; the learned one must beat
    // the independence assumption on this correlated 3-attribute workload
    for &m in &[h, s, n] {
        assert!(m.is_finite() && m >= 1.0);
    }
    assert!(n < h, "neural ({n}) must beat histogram ({h}) here");
}
