//! Integration across the distributed/memory/green crates: one model's
//! cost profile drives the cluster simulator, the rematerialization DP and
//! the carbon calculator, and the numbers must stay mutually consistent.

use dl_distributed::{
    data_parallel_cost, local_sgd, optimize_placement, resilient_local_sgd, Cluster, Device,
    FaultPlan, FaultProfile, GradCompressor, Link, LocalSgdConfig, Placement,
    PlacementSearchConfig, ResilientConfig, StorageProfile,
};
use dl_green::{energy::energy_for, CarbonReport, HardwareProfile, Region};
use dl_memsched::{optimal_schedule, sqrt_schedule, store_all};
use dl_tensor::init;

fn model() -> dl_nn::Network {
    dl_nn::Network::mlp(&[64, 256, 256, 128, 64, 8], &mut init::rng(0))
}

#[test]
fn one_cost_profile_drives_every_simulator() {
    let net = model();
    let costs = net.layer_costs(64);
    let profile = net.cost_profile(64);
    // consistency: layer costs sum to the profile
    let sum_fwd: u64 = costs.iter().map(|c| c.forward_flops).sum();
    assert_eq!(sum_fwd, profile.forward_flops);

    // placement search must never return something worse than round-robin
    let cluster = Cluster::homogeneous(4, Device::accelerator(), Link::nvlink());
    let rr = Placement::round_robin(costs.len(), 4).simulate(&cluster, &costs);
    let (_, best, _) = optimize_placement(&cluster, &costs, &PlacementSearchConfig::default());
    assert!(best.step_seconds <= rr.step_seconds + 1e-12);

    // rematerialization: optimal at sqrt's budget must not recompute more
    let sq = sqrt_schedule(&costs);
    let opt = optimal_schedule(&costs, sq.peak_bytes).expect("sqrt budget is feasible");
    assert!(opt.recompute_flops <= sq.recompute_flops);
    assert!(opt.peak_bytes <= sq.peak_bytes);
    assert!(store_all(&costs).peak_bytes >= sq.peak_bytes);

    // energy: a training campaign priced from the same FLOPs
    let flops = profile.train_step_flops() * 10_000;
    let energy = energy_for(&HardwareProfile::datacenter_gpu(), flops, 1.4);
    assert!(energy.total_kwh > 0.0);
    let hydro = CarbonReport::from_energy(&energy, Region::HydroNorth);
    let coal = CarbonReport::from_energy(&energy, Region::CoalBelt);
    assert!(coal.grams_co2e > hydro.grams_co2e * 10.0);
}

#[test]
fn local_sgd_and_compression_compose() {
    // data-parallel training under BOTH relaxed sync and compressed
    // gradients still learns the task
    let data = dl_data::blobs(200, 2, 4, 6.0, 0.4, 1);
    let eval = dl_data::blobs(80, 2, 4, 6.0, 0.4, 2);
    let cluster = Cluster::homogeneous(4, Device::accelerator(), Link::ethernet());
    let (_, local) = local_sgd(
        &cluster,
        &data,
        &eval,
        &[4, 16, 2],
        &LocalSgdConfig {
            sync_period: 8,
            steps: 120,
            ..LocalSgdConfig::default()
        },
    );
    assert!(local.accuracy > 0.85, "local sgd acc {}", local.accuracy);
    let (_, compressed) = dl_distributed::compressed_sgd(
        &cluster,
        &data,
        &eval,
        &[4, 16, 2],
        &GradCompressor::TopK { frac: 0.05 },
        150,
        16,
        0.05,
        3,
    );
    assert!(
        compressed.accuracy > 0.85,
        "compressed acc {}",
        compressed.accuracy
    );
    assert!(compressed.ratio() > 5.0);
}

#[test]
fn elastic_training_survives_generated_faults_and_still_learns() {
    // end to end: an MTBF/MTTR profile generates a crash/repair schedule,
    // the elastic driver checkpoints to simulated blob storage, rolls
    // back through the crashes, and the surviving model still learns —
    // all of it deterministic across reruns.
    let data = dl_data::blobs(200, 2, 4, 6.0, 0.4, 30);
    let eval = dl_data::blobs(80, 2, 4, 6.0, 0.4, 31);
    let cluster = Cluster::homogeneous(4, Device::accelerator(), Link::ethernet());
    let config = ResilientConfig {
        base: LocalSgdConfig {
            sync_period: 4,
            steps: 120,
            ..LocalSgdConfig::default()
        },
        checkpoint_interval: 16,
        storage: StorageProfile::blob_store(),
        ..ResilientConfig::default()
    };
    // pin worker 0 (drop its crash/rejoin events) so the run can always
    // make progress no matter how the schedule overlaps; scan seeds
    // deterministically until one schedules a crash on an unpinned worker
    let plan = (5u64..25)
        .map(|seed| {
            let generated = FaultPlan::from_profile(&FaultProfile::crashes(seed, 60.0, 20.0), 4, 120);
            FaultPlan::new(
                generated
                    .events()
                    .iter()
                    .filter(|e| {
                        !matches!(
                            e,
                            dl_distributed::FaultEvent::WorkerCrash { worker: 0, .. }
                                | dl_distributed::FaultEvent::WorkerRejoin { worker: 0, .. }
                        )
                    })
                    .copied()
                    .collect(),
            )
        })
        .find(|p| !p.is_empty())
        .expect("some seed in the scan must schedule a crash on workers 1..4");
    let (net_a, rep_a) = resilient_local_sgd(&cluster, &data, &eval, &[4, 16, 2], &config, &plan);
    let (net_b, rep_b) = resilient_local_sgd(&cluster, &data, &eval, &[4, 16, 2], &config, &plan);
    assert_eq!(rep_a, rep_b, "faulted runs must be deterministic");
    assert_eq!(net_a.flat_params(), net_b.flat_params());
    assert!(rep_a.crashes >= 1);
    assert!(rep_a.recovery_seconds > 0.0);
    assert!(rep_a.useful_samples <= rep_a.total_samples);
    assert!(
        rep_a.accuracy > 0.8,
        "elastic run should still learn: {}",
        rep_a.accuracy
    );

    // and with no faults, resilience adds no statistical cost: the model
    // is bit-identical to the plain Local SGD trajectory
    let mut clean_cfg = config.clone();
    clean_cfg.checkpoint_interval = 0;
    let (clean_net, _) = resilient_local_sgd(
        &cluster,
        &data,
        &eval,
        &[4, 16, 2],
        &clean_cfg,
        &FaultPlan::none(),
    );
    let (plain_net, _) = local_sgd(&cluster, &data, &eval, &[4, 16, 2], &clean_cfg.base);
    assert_eq!(clean_net.flat_params(), plain_net.flat_params());
}

#[test]
fn data_parallel_pricing_consistent_with_cluster_model() {
    let net = model();
    let costs = net.layer_costs(64);
    let grad_bytes: u64 = costs.iter().map(|c| c.params * 4).sum();
    let cluster = Cluster::homogeneous(8, Device::accelerator(), Link::ethernet());
    let dp = data_parallel_cost(&cluster, &costs);
    // the all-reduce term alone must lower-bound the step cost
    assert!(dp.step_seconds >= cluster.allreduce_time(grad_bytes));
    assert_eq!(dp.transfer_bytes, grad_bytes);
}
