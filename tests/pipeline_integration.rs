//! End-to-end integration: train -> compress -> audit -> explain -> store,
//! crossing every layer of the workspace in one flow.

use dl_compress::{magnitude_prune, quantize_network, QuantScheme};
use dl_core::{Category, Constraint, Metrics, Registry, Technique, TradeoffNavigator};
use dl_fairness::FairnessReport;
use dl_interpret::store::IntermediateKey;
use dl_interpret::{lime_explain, ActivationQuery, IntermediateStore, SurrogateTree};
use dl_nn::{Network, Optimizer, TrainConfig, Trainer};
use dl_tensor::init;

#[test]
fn train_compress_navigate() {
    // train on digits
    let data = dl_data::digits_dataset(400, 0.1, 1);
    let (train, test) = data.split(0.25, 2);
    let mut net = Network::mlp(&[144, 48, 10], &mut init::rng(3));
    let mut trainer = Trainer::new(
        TrainConfig {
            epochs: 15,
            ..TrainConfig::default()
        },
        Optimizer::adam(0.01),
    );
    trainer.fit(&mut net, &train);
    let base_acc = Trainer::evaluate(&mut net.clone(), &test);
    assert!(base_acc > 0.9, "baseline failed to train: {base_acc}");

    // compress two ways and register everything
    let mut registry = Registry::new();
    let reg = |name: &str, acc: f64, mem: u64| Technique {
        name: name.into(),
        category: Category::Compression,
        metrics: Metrics {
            accuracy: acc,
            train_flops: trainer.flops,
            inference_flops: net.cost_profile(1).forward_flops,
            memory_bytes: mem,
            energy_kwh: 0.0,
        },
        baseline: None,
    };
    registry
        .add(reg("fp32", base_acc, (net.param_count() * 4) as u64))
        .unwrap();
    let (mut q, qr) = quantize_network(&net, QuantScheme::Affine { bits: 8 });
    registry
        .add(reg(
            "int8",
            Trainer::evaluate(&mut q, &test),
            qr.compressed_bytes as u64,
        ))
        .unwrap();
    let mut p = net.clone();
    magnitude_prune(&mut p, 0.8);
    registry
        .add(reg(
            "prune80",
            Trainer::evaluate(&mut p, &test),
            (net.param_count() / 5 * 8) as u64,
        ))
        .unwrap();
    // the navigator must answer a constrained query
    let nav = TradeoffNavigator::new(&registry);
    let budget = (net.param_count() * 2) as u64; // half of fp32
    let pick = nav
        .recommend(&[Constraint::MaxMemoryBytes(budget)])
        .expect("compressed models fit");
    assert_ne!(pick.name, "fp32");
    assert!(pick.metrics.accuracy > 0.8);
}

#[test]
fn train_audit_explain() {
    // biased census -> audit -> LIME must implicate the proxy or a
    // legitimate feature, and a surrogate tree must be faithful
    let census = dl_data::CensusData::generate(dl_data::CensusConfig {
        n: 1500,
        bias: 0.5,
        seed: 4,
        ..dl_data::CensusConfig::default()
    });
    let data = census.to_dataset();
    let mut net = Network::mlp(&[6, 12, 2], &mut init::rng(5));
    let mut trainer = Trainer::new(
        TrainConfig {
            epochs: 12,
            ..TrainConfig::default()
        },
        Optimizer::adam(0.01),
    );
    trainer.fit(&mut net, &data);
    let preds = net.predict(&data.x);
    let audit = FairnessReport::new(&preds, &census.labels, &census.groups);
    assert!(
        audit.demographic_parity_diff() > 0.1,
        "bias must be measurable"
    );
    let xi = data.x.select_rows(&[0]);
    let exp = lime_explain(&mut net, &xi, 1, 200, 2.0, 6);
    assert_eq!(exp.weights.len(), 6);
    assert!(exp.r_squared.is_finite());
    let tree = SurrogateTree::distill(&mut net, &data.x, 4);
    assert!(tree.fidelity(&mut net, &data.x) > 0.8);
}

#[test]
fn train_store_query() {
    // activations stored across epochs remain queryable from the store
    let data = dl_data::blobs(150, 2, 4, 6.0, 0.4, 7);
    let mut net = Network::mlp(&[4, 16, 2], &mut init::rng(8));
    let mut store = IntermediateStore::new();
    let mut trainer = Trainer::new(
        TrainConfig {
            epochs: 1,
            ..TrainConfig::default()
        },
        Optimizer::adam(0.01),
    );
    for epoch in 0..5u32 {
        trainer.fit(&mut net, &data);
        let trace = net.forward_trace(&data.x, false);
        store.put(
            IntermediateKey {
                snapshot: epoch,
                layer: 2,
            },
            &trace[2],
        );
    }
    let stats = store.stats();
    assert_eq!(stats.matrices, 5);
    assert!(stats.ratio() > 2.0, "store ratio {}", stats.ratio());
    // query the final snapshot
    let (acts, _) = store
        .get(IntermediateKey {
            snapshot: 4,
            layer: 2,
        })
        .expect("stored");
    let q = ActivationQuery::CorrelatesWithClass { class: 1 }.run(&acts, &data.y);
    assert!(
        q.units[0].score.abs() > 0.4,
        "trained hidden units must track classes, best {}",
        q.units[0].score
    );
}
