//! End-to-end serving integration: build a small variant family from one
//! trained network, drive it with a seeded open-loop load through the
//! SLO-aware engine, and check the cross-crate contracts that E25 relies
//! on — tracing invisibility, real batching wins, and trace content.

use dl_obs::{EventKind, NullRecorder, TimelineRecorder};
use dl_serve::{
    build_family, open_loop, serve, AdmissionPolicy, BatchPolicy, DeviceModel, FamilyConfig,
    LoadConfig, ServeConfig,
};

fn family_and_eval() -> (dl_serve::VariantRegistry, dl_nn::Dataset) {
    let data = dl_data::blobs(160, 4, 10, 6.0, 0.6, 70);
    let eval = dl_data::blobs(80, 4, 10, 6.0, 0.6, 71);
    let family = build_family(
        &data,
        &eval,
        &FamilyConfig {
            teacher_dims: vec![10, 24, 4],
            student_hidden: vec![6],
            prune_sparsity: 0.7,
            morph_budget: 260,
            ensemble_members: 2,
            max_batch: 16,
            epochs: 10,
            seed: 77,
        },
    );
    (family, eval)
}

#[test]
fn traced_and_untraced_serving_agree_and_the_trace_is_complete() {
    let (mut family, eval) = family_and_eval();
    let device = DeviceModel::nominal();
    let cap1 = 1.0 / device.service_time(family.variants[0].cost_at(1));
    let load = open_loop(
        &LoadConfig {
            rate_rps: 4.0 * cap1,
            requests: 400,
            seed: 5,
        },
        eval.x.dims()[0],
    );
    let cfg = ServeConfig {
        batch: BatchPolicy::dynamic(16, 6e-6),
        admission: AdmissionPolicy::SloAware {
            p99_slo_s: 4e-5,
            headroom: 0.7,
            min_accuracy: 0.0,
        },
        primary: "fp32-base".into(),
        device,
    };

    let silent = serve(&mut family, &eval, &load, &cfg, &NullRecorder::new());
    let rec = TimelineRecorder::new();
    let traced = serve(&mut family, &eval, &load, &cfg, &rec);
    // Tracing must be invisible to the simulated outcome.
    assert_eq!(silent, traced, "recorder choice changed the serving outcome");
    assert_eq!(silent.offered, 400);
    assert_eq!(
        silent.served + silent.shed,
        silent.offered,
        "every request is either served or shed"
    );

    // The trace carries the run: one batch span per flush, a latency
    // histogram observation per served request, shed instants when the
    // controller rejects.
    let events = rec.events();
    let batch_spans = events
        .iter()
        .filter(|e| e.name == "serve.batch" && e.kind == EventKind::SpanStart)
        .count();
    let total_batches: usize = silent.per_variant.iter().map(|v| v.batches).sum();
    assert_eq!(batch_spans, total_batches, "one span per flushed batch");
    let hist = rec.histogram("serve.latency_s").expect("latency histogram");
    assert_eq!(hist.count, silent.served as u64);
    if silent.shed > 0 {
        assert!(
            events.iter().any(|e| e.name == "serve.shed"),
            "sheds must leave instants in the trace"
        );
    }
}

#[test]
fn dynamic_batching_beats_batch_one_end_to_end() {
    let (mut family, eval) = family_and_eval();
    let device = DeviceModel::nominal();
    let cap1 = 1.0 / device.service_time(family.variants[0].cost_at(1));
    let load = open_loop(
        &LoadConfig {
            rate_rps: 3.0 * cap1,
            requests: 400,
            seed: 6,
        },
        eval.x.dims()[0],
    );
    let mut run = |batch: BatchPolicy| {
        let cfg = ServeConfig {
            batch,
            admission: AdmissionPolicy::AcceptAll,
            primary: "fp32-base".into(),
            device: device.clone(),
        };
        serve(&mut family, &eval, &load, &cfg, &NullRecorder::new())
    };
    let single = run(BatchPolicy::no_batching());
    let dynamic = run(BatchPolicy::dynamic(16, 5e-6));
    assert!(
        dynamic.throughput_rps > 2.0 * single.throughput_rps,
        "dynamic {} rps should beat 2x batch=1 {} rps",
        dynamic.throughput_rps,
        single.throughput_rps
    );
    assert!(
        dynamic.p99_s < single.p99_s,
        "amortized service must also shrink the tail: {} vs {}",
        dynamic.p99_s,
        single.p99_s
    );
    assert!(dynamic.mean_batch > 1.5, "batches actually formed");
}
