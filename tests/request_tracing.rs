//! Cross-crate request-tracing integration: the dl-trace tap must be
//! invisible to the serving stack (bit-identical reports, histograms, and
//! timelines across every recorder path), and its reconstruction must
//! conserve — every request accounted for against the engine report, and
//! every waterfall's phases summing *exactly* to its end-to-end time.
//!
//! These pass unchanged under any `DL_THREADS` setting because simulated
//! time and answers never depend on the kernel pool width.

use dl_distributed::{FaultPlan, FaultProfile};
use dl_obs::{NullRecorder, TimelineRecorder};
use dl_serve::{
    build_family, open_loop, serve, serve_cluster, AdmissionPolicy, BatchPolicy, ClusterConfig,
    DeviceModel, FamilyConfig, LoadConfig, RetryPolicy, ServeConfig,
};
use dl_trace::{Outcome, TraceSet, Tracer};

fn family_and_eval() -> (dl_serve::VariantRegistry, dl_nn::Dataset) {
    let data = dl_data::blobs(160, 4, 10, 6.0, 0.6, 70);
    let eval = dl_data::blobs(80, 4, 10, 6.0, 0.6, 71);
    let family = build_family(
        &data,
        &eval,
        &FamilyConfig {
            teacher_dims: vec![10, 24, 4],
            student_hidden: vec![6],
            prune_sparsity: 0.7,
            morph_budget: 260,
            ensemble_members: 2,
            max_batch: 16,
            epochs: 10,
            seed: 77,
        },
    );
    (family, eval)
}

fn serve_cfg(device: DeviceModel) -> ServeConfig {
    ServeConfig {
        batch: BatchPolicy::dynamic(16, 6e-6),
        admission: AdmissionPolicy::SloAware {
            p99_slo_s: 4e-5,
            headroom: 0.7,
            min_accuracy: 0.0,
        },
        primary: "fp32-base".into(),
        device,
    }
}

#[test]
fn traced_one_replica_cluster_is_bit_identical_to_untraced_single_node() {
    let (mut family, eval) = family_and_eval();
    let device = DeviceModel::nominal();
    let cap1 = 1.0 / device.service_time(family.variants[0].cost_at(1));
    let load = open_loop(
        &LoadConfig {
            rate_rps: 4.0 * cap1,
            requests: 400,
            seed: 5,
        },
        eval.x.dims()[0],
    );
    let cfg = serve_cfg(device);

    // Reference: untraced single-node serving on a plain timeline.
    let single_rec = TimelineRecorder::new();
    let single = serve(&mut family, &eval, &load, &cfg, &single_rec);

    // Traced 1-replica cluster: the Tracer tap wraps the timeline.
    let cluster_rec = TimelineRecorder::new();
    let tracer = Tracer::new(&cluster_rec);
    let cluster = serve_cluster(
        &mut family,
        &eval,
        &load,
        &ClusterConfig::new(1, cfg.clone()),
        &tracer,
    );

    assert_eq!(cluster.serve, single, "tracing changed the serving outcome");
    assert_eq!(
        cluster_rec.histogram("serve.latency_s"),
        single_rec.histogram("serve.latency_s"),
        "latency histograms (including exemplar slots) must be bit-identical"
    );
    assert_eq!(
        cluster_rec.events(),
        single_rec.events(),
        "the inner timeline must not contain a single tracer-added event"
    );

    // The tap still captured a full trace while staying invisible.
    let traces = tracer.traces();
    traces
        .matches_report(single.served, single.shed, 0, 0)
        .expect("reconstruction must agree with the report");
    traces
        .verify_conservation()
        .expect("every waterfall must telescope exactly");
    assert_eq!(traces.requests.len(), single.offered);

    // Exemplar linking: the p99 bucket names a concrete served request.
    let hist = cluster_rec
        .histogram("serve.latency_s")
        .expect("latency histogram exists");
    let bucket = hist.quantile_bucket(0.99).expect("non-empty histogram");
    let exemplar = hist.exemplar(bucket).expect("tail bucket has an exemplar");
    let linked = traces
        .requests
        .iter()
        .find(|t| t.id == exemplar)
        .expect("exemplar id resolves to a traced request");
    assert!(
        matches!(linked.outcome, Outcome::Served { .. }),
        "latency exemplars come from served requests"
    );
}

#[test]
fn all_four_recorder_paths_agree_on_the_outcome() {
    let (mut family, eval) = family_and_eval();
    let device = DeviceModel::nominal();
    let cap1 = 1.0 / device.service_time(family.variants[0].cost_at(1));
    let load = open_loop(
        &LoadConfig {
            rate_rps: 3.0 * cap1,
            requests: 250,
            seed: 9,
        },
        eval.x.dims()[0],
    );
    let cfg = ClusterConfig::new(2, serve_cfg(device));

    let null = NullRecorder::new();
    let plain_null = serve_cluster(&mut family, &eval, &load, &cfg, &null);

    let timeline = TimelineRecorder::new();
    let plain_timeline = serve_cluster(&mut family, &eval, &load, &cfg, &timeline);

    let null_inner = NullRecorder::new();
    let traced_null = Tracer::new(&null_inner);
    let over_null = serve_cluster(&mut family, &eval, &load, &cfg, &traced_null);

    let timeline_inner = TimelineRecorder::new();
    let traced_timeline = Tracer::new(&timeline_inner);
    let over_timeline = serve_cluster(&mut family, &eval, &load, &cfg, &traced_timeline);

    assert_eq!(plain_null, plain_timeline, "timeline recording is invisible");
    assert_eq!(plain_null, over_null, "tracing over null is invisible");
    assert_eq!(plain_null, over_timeline, "tracing over timeline is invisible");
    assert_eq!(
        timeline.events(),
        timeline_inner.events(),
        "the tap forwards the timeline byte-for-byte"
    );
    assert_eq!(
        traced_null.events(),
        traced_timeline.events(),
        "the tap retains the same trace regardless of the inner recorder"
    );
    assert_eq!(traced_null.traces(), traced_timeline.traces());
}

#[test]
fn crash_storm_reconstruction_conserves_every_request() {
    let (mut family, eval) = family_and_eval();
    let device = DeviceModel::nominal();
    let cap1 = 1.0 / device.service_time(family.variants[0].cost_at(1));
    let load = open_loop(
        &LoadConfig {
            rate_rps: 6.0 * cap1,
            requests: 600,
            seed: 11,
        },
        eval.x.dims()[0],
    );
    let horizon_s = load.last().unwrap().arrival_s * 1.5;
    let faults = FaultPlan::from_profile(&FaultProfile::crashes(5, 12.0, 6.0), 3, 64);
    assert!(faults.crash_count() >= 2, "storm must schedule crashes");
    let cfg = ClusterConfig {
        retry: RetryPolicy::retries(2),
        faults,
        seconds_per_step: horizon_s / 64.0,
        warmup_s: horizon_s / 64.0,
        warmup_factor: 2.0,
        ..ClusterConfig::new(3, serve_cfg(device))
    };

    let rec = TimelineRecorder::new();
    let tracer = Tracer::new(&rec);
    let report = serve_cluster(&mut family, &eval, &load, &cfg, &tracer);
    assert!(report.crashes >= 2, "crashes must fire");

    let traces = tracer.traces();
    traces
        .matches_report(
            report.serve.served,
            report.serve.shed,
            report.lost,
            report.unavailable,
        )
        .expect("reconstruction must mirror the report under chaos");
    traces
        .verify_conservation()
        .expect("phase sums must stay exact under crashes and retries");

    // Retried-then-served requests must show their pre-branch wait.
    if report.retried > 0 && report.lost < report.serve.offered {
        let rerouted = traces
            .requests
            .iter()
            .filter(|t| {
                matches!(
                    t.outcome,
                    Outcome::Served {
                        via: dl_trace::DispatchKind::Retry,
                        ..
                    }
                )
            })
            .count();
        let lost = traces
            .requests
            .iter()
            .filter(|t| matches!(t.outcome, Outcome::Lost))
            .count();
        assert!(
            rerouted + lost > 0,
            "a crash storm with retries must leave visible retry branches"
        );
    }

    // The reconstruction is a pure function of the event stream: feeding
    // the full timeline (not just the tap's copy) gives the same answer.
    assert_eq!(traces, TraceSet::reconstruct(&rec.events()));
}
